"""Ablation D: division-engine comparison (related-work baselines).

Pits the paper's RAR substitution against the three prior Boolean
division routes its introduction surveys — espresso-with-don't-cares,
Stanion/Sechen BDD division, and Hsu/Shen coalgebraic division — plus
the plain algebraic resub, all with the same factored-literal
acceptance rule.
"""

import time

from conftest import write_result

from repro.baselines import (
    bdd_substitution,
    coalgebraic_substitution,
    espresso_substitution,
)
from repro.circuit.mapback import network_redundancy_removal
from repro.core.config import EXTENDED
from repro.core.substitution import substitute_network
from repro.network.factor import network_literals
from repro.network.resub import resub
from repro.network.verify import networks_equivalent

ENGINES = [
    ("algebraic", resub),
    ("coalgebraic", coalgebraic_substitution),
    ("espresso-dc", espresso_substitution),
    ("bdd-gcf", bdd_substitution),
    # Classical RAR cleanup alone (no divisor) — shows how much of the
    # win comes from the division framing vs plain redundancy removal.
    ("rar-cleanup", network_redundancy_removal),
    ("rar-ext", lambda net: substitute_network(net, EXTENDED)),
]


def run_engines(suite):
    rows = []
    for label, engine in ENGINES:
        total = 0
        start = time.perf_counter()
        for net in suite.values():
            working = net.copy()
            engine(working)
            assert networks_equivalent(net, working), label
            total += network_literals(working)
        rows.append((label, total, time.perf_counter() - start))
    return rows


def test_division_engine_comparison(benchmark, suite):
    rows = benchmark.pedantic(run_engines, args=(suite,), rounds=1, iterations=1)
    lines = ["== Ablation D: division engines =="]
    for label, total, cpu in rows:
        lines.append(f"{label:12s}  literals {total:5d}   cpu {cpu:6.2f}s")
    write_result("ablation_engines.txt", "\n".join(lines))
    by_label = {label: total for label, total, _ in rows}
    # The RAR method should at least match the algebraic baseline.
    assert by_label["rar-ext"] <= by_label["algebraic"]
