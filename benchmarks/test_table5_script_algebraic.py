"""Table V: the full script.algebraic flow with resub swapped per method.

The paper's anomaly is reproduced qualitatively: inside a long greedy
flow, ext-GDC may *underperform* plain ext on some circuits (locally
greedy first-positive-gain acceptance), while all RAR configurations
still beat the algebraic flow in total.
"""

from conftest import write_result

from repro.scripts.flows import run_script_algebraic_table
from repro.scripts.tables import format_table

METHODS = ["sis", "basic", "ext", "ext_gdc"]


def test_table5_script_algebraic(benchmark, suite):
    result = benchmark.pedantic(
        run_script_algebraic_table,
        args=(suite, METHODS),
        rounds=1,
        iterations=1,
    )
    write_result("table5_script_algebraic.txt", format_table(result))

    assert result.total_literals("basic") <= result.total_literals("sis")
    assert result.total_literals("ext") <= result.total_literals("sis")
    assert result.total_literals("ext_gdc") <= result.total_literals("sis")
