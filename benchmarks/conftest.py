"""Shared fixtures for the experiment benchmarks.

Each ``test_table*.py`` regenerates one of the paper's experiment
tables (II–V) on the benchmark suite, times it with pytest-benchmark,
writes the formatted table under ``benchmarks/results/``, and asserts
the qualitative *shape* the paper reports (see EXPERIMENTS.md).

Run with:  pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import pathlib
from typing import Dict

import pytest

from repro.bench.suite import benchmark_suite, build_benchmark
from repro.network.network import Network

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def suite() -> Dict[str, Network]:
    """The quick suite (fresh copies are taken per run by the harness)."""
    return {
        name: build_benchmark(name)
        for name in benchmark_suite(quick=True)
    }


@pytest.fixture(scope="session")
def full_suite() -> Dict[str, Network]:
    return {name: build_benchmark(name) for name in benchmark_suite()}


def write_result(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / name).write_text(text + "\n")
    print("\n" + text)
