"""Robustness sweep: the headline shape across fresh random circuits.

The fixed suite could in principle be cherry-picked; this sweep draws
12 fresh planted networks (6 SOP-structured, 6 POS-structured) from
seeds disjoint from the suite's, runs Script A + one substitution pass
per method, and checks the aggregate ordering:

    algebraic resub  <=  basic  <=  ext   (in literals saved)

plus reports per-seed win/tie/loss counts for RAR vs the baseline.
"""

from conftest import write_result

from repro.bench.generators import planted_network, planted_pos_network
from repro.core.config import BASIC, EXTENDED
from repro.core.substitution import substitute_network
from repro.network.factor import network_literals
from repro.network.resub import resub
from repro.network.verify import networks_equivalent
from repro.scripts.flows import script_a

SOP_SEEDS = [1009, 2003, 3001, 4001, 5003, 6007]
POS_SEEDS = [411, 523, 631, 741, 853, 967]


def run_sweep():
    rows = []
    for seed in SOP_SEEDS:
        rows.append(("sop", seed, planted_network(f"s{seed}", seed=seed)))
    for seed in POS_SEEDS:
        rows.append(
            ("pos", seed, planted_pos_network(f"p{seed}", seed=seed))
        )
    results = []
    for kind, seed, net in rows:
        reference = net.copy()
        script_a(net)
        initial = network_literals(net)
        row = {"kind": kind, "seed": seed, "initial": initial}
        for label, method in (
            ("sis", resub),
            ("basic", lambda n: substitute_network(n, BASIC)),
            ("ext", lambda n: substitute_network(n, EXTENDED)),
        ):
            working = net.copy()
            method(working)
            assert networks_equivalent(net, working), (label, seed)
            row[label] = network_literals(working)
        results.append(row)
    return results


def test_seed_sweep(benchmark):
    results = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    lines = ["== Seed sweep: fresh random circuits ==",
             "kind seed     init   sis  basic   ext"]
    totals = {"initial": 0, "sis": 0, "basic": 0, "ext": 0}
    wins = ties = losses = 0
    for row in results:
        lines.append(
            f"{row['kind']:4s} {row['seed']:5d}  {row['initial']:5d} "
            f"{row['sis']:5d} {row['basic']:6d} {row['ext']:5d}"
        )
        for key in totals:
            totals[key] += row[key if key != "initial" else "initial"]
        if row["basic"] < row["sis"]:
            wins += 1
        elif row["basic"] == row["sis"]:
            ties += 1
        else:
            losses += 1
    lines.append(
        f"totals      {totals['initial']:7d} {totals['sis']:5d} "
        f"{totals['basic']:6d} {totals['ext']:5d}"
    )
    lines.append(f"basic vs sis: {wins} wins, {ties} ties, {losses} losses")
    write_result("seed_sweep.txt", "\n".join(lines))

    # Aggregate shape: RAR saves at least as much as the baseline, and
    # wins strictly overall; per-seed losses (greedy path-dependence)
    # must stay a minority.
    assert totals["basic"] <= totals["sis"]
    assert totals["ext"] <= totals["sis"]
    assert wins > losses
