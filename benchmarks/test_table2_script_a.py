"""Table II: one substitution run after Script A (eliminate; simplify).

Shape reproduced from the paper: every RAR configuration ends with
fewer total literals than algebraic ``resub``, with roughly a 10%
improvement over the initial circuits, and the GDC configuration costs
the most CPU.
"""

from conftest import write_result

from repro.scripts.flows import run_script_table
from repro.scripts.tables import format_table

METHODS = ["sis", "basic", "ext", "ext_gdc"]


def test_table2_script_a(benchmark, suite):
    result = benchmark.pedantic(
        run_script_table,
        args=(suite, "A", METHODS),
        rounds=1,
        iterations=1,
    )
    write_result("table2_script_a.txt", format_table(result))

    sis = result.total_literals("sis")
    basic = result.total_literals("basic")
    ext = result.total_literals("ext")
    ext_gdc = result.total_literals("ext_gdc")

    # Who wins: all three RAR configurations beat the algebraic resub.
    assert basic <= sis
    assert ext <= sis
    assert ext_gdc <= sis
    # Extended subsumes basic division.
    assert ext <= basic
    # Rough factor: RAR improves over the initial circuits noticeably
    # more than the algebraic baseline does.
    assert result.improvement("ext") >= result.improvement("sis")
    # The GDC configuration pays in run time (the paper's "much more
    # time" observation, scaled to our sizes).
    assert result.total_cpu("ext_gdc") >= result.total_cpu("basic")
