"""Ablation C: implication effort ladder (the paper's Section III-B dial).

Region-only direct implications, region learning, global implications,
and global learning — more effort exposes more don't cares (never
fewer literals) for more run time.
"""

import time

from conftest import write_result

from repro.core.config import DivisionConfig
from repro.core.substitution import substitute_network
from repro.network.factor import network_literals

LADDER = [
    ("region/direct", DivisionConfig(mode="extended", learn_depth=0)),
    ("region/learn1", DivisionConfig(mode="extended", learn_depth=1)),
    (
        "global/direct",
        DivisionConfig(mode="extended", global_dc=True, learn_depth=0),
    ),
    (
        "global/learn1",
        DivisionConfig(mode="extended", global_dc=True, learn_depth=1),
    ),
    (
        "oracle-dc",
        DivisionConfig(
            mode="extended", global_dc=True, learn_depth=1, oracle_dc=True
        ),
    ),
]


def run_ladder(suite):
    rows = []
    for label, config in LADDER:
        total = 0
        start = time.perf_counter()
        for net in suite.values():
            working = net.copy()
            substitute_network(working, config)
            total += network_literals(working)
        rows.append((label, total, time.perf_counter() - start))
    return rows


def test_gdc_effort_ladder(benchmark, suite):
    rows = benchmark.pedantic(run_ladder, args=(suite,), rounds=1, iterations=1)
    lines = ["== Ablation C: implication effort ladder =="]
    for label, total, cpu in rows:
        lines.append(f"{label:14s}  literals {total:5d}   cpu {cpu:6.2f}s")
    write_result("ablation_gdc_depth.txt", "\n".join(lines))
    # Per division, more implication effort can only find more
    # conflicts -- but acceptance is greedy, so a stronger engine can
    # take an early rewrite that blocks a later, better one (the same
    # path-dependence behind the paper's Table V anomaly).  Totals may
    # therefore wobble by a literal or two; large regressions would
    # still indicate a bug.
    by_label = {label: total for label, total, _ in rows}
    assert by_label["region/learn1"] <= by_label["region/direct"] + 3
    assert by_label["global/learn1"] <= by_label["region/direct"] + 3
