"""Table III: one substitution run after Script B (…; gcx).

Same column structure and winner ordering as Table II, from circuits
prepared with common-cube extraction.
"""

from conftest import write_result

from repro.scripts.flows import run_script_table
from repro.scripts.tables import format_table

METHODS = ["sis", "basic", "ext", "ext_gdc"]


def test_table3_script_b(benchmark, suite):
    result = benchmark.pedantic(
        run_script_table,
        args=(suite, "B", METHODS),
        rounds=1,
        iterations=1,
    )
    write_result("table3_script_b.txt", format_table(result))

    assert result.total_literals("basic") <= result.total_literals("sis")
    assert result.total_literals("ext") <= result.total_literals("basic")
    assert result.total_literals("ext_gdc") <= result.total_literals("sis")
    assert result.improvement("ext") >= result.improvement("sis")
