"""Ablation B: exact maximum clique vs greedy clique in core selection.

The paper reduces core-divisor choice to a maximal-clique problem; this
ablation compares the exact solve (networkx max_weight_clique) against
the greedy degeneracy fallback used for large vote graphs.
"""

from conftest import write_result

from repro.core.config import DivisionConfig
from repro.core.substitution import substitute_network
from repro.network.factor import network_literals

EXACT = DivisionConfig(mode="extended", learn_depth=1, exact_clique_limit=30)
GREEDY = DivisionConfig(mode="extended", learn_depth=1, exact_clique_limit=0)


def run_variant(suite, config):
    totals = {}
    for name, net in suite.items():
        working = net.copy()
        substitute_network(working, config)
        totals[name] = network_literals(working)
    return totals


def test_exact_clique_at_least_as_good(benchmark, suite):
    exact = benchmark.pedantic(
        run_variant, args=(suite, EXACT), rounds=1, iterations=1
    )
    greedy = run_variant(suite, GREEDY)
    lines = ["== Ablation B: greedy vs exact maximum clique =="]
    for name in suite:
        lines.append(
            f"{name:8s}  greedy {greedy[name]:4d}   exact {exact[name]:4d}"
        )
    lines.append(
        f"total     greedy {sum(greedy.values()):4d}   "
        f"exact {sum(exact.values()):4d}"
    )
    write_result("ablation_clique.txt", "\n".join(lines))
    # Greedy is a heuristic; exact should not lose in total by much.
    assert sum(exact.values()) <= sum(greedy.values()) + 2
