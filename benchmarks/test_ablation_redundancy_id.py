"""Ablation E: how many true redundancies do the implications find?

The paper's whole approach rests on one-sided untestability checks: an
implication conflict proves a wire redundant, but silence proves
nothing.  This ablation quantifies the gap on decomposed suite
circuits by comparing against the complete miter-based ATPG of
`repro.atpg.dalg`:

* recall  = implication-identified redundant wires / truly redundant,
* soundness must be perfect (no false positives) — asserted.
"""

from conftest import write_result

from repro.atpg.dalg import prove_redundant
from repro.atpg.fault import all_wire_faults
from repro.atpg.redundancy import wire_is_redundant
from repro.bench.suite import build_benchmark
from repro.circuit.decompose import network_to_circuit

CIRCUITS = ["dec3", "mux3", "rnd3", "maj5"]


def run_comparison():
    rows = []
    for name in CIRCUITS:
        network = build_benchmark(name)
        circuit = network_to_circuit(network)
        observables = set(network.pos)
        exact = 0
        by_direct = 0
        by_learning = 0
        total = 0
        for fault in all_wire_faults(circuit):
            total += 1
            truly = prove_redundant(circuit, fault, observables)
            direct = wire_is_redundant(circuit, fault, observables, 0)
            learned = direct or wire_is_redundant(
                circuit, fault, observables, 1
            )
            # Soundness: implications may never contradict the oracle.
            if direct or learned:
                assert truly is True, (name, fault)
            if truly:
                exact += 1
                by_direct += int(direct)
                by_learning += int(learned)
        rows.append((name, total, exact, by_direct, by_learning))
    return rows


def test_redundancy_identification_recall(benchmark):
    rows = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    lines = [
        "== Ablation E: redundancy identification recall ==",
        "circuit   wires  redundant  direct  +learning",
    ]
    total_exact = total_learn = 0
    for name, total, exact, direct, learned in rows:
        lines.append(
            f"{name:8s} {total:6d} {exact:10d} {direct:7d} {learned:10d}"
        )
        total_exact += exact
        total_learn += learned
    write_result("ablation_redundancy_id.txt", "\n".join(lines))
    # The implications must find a sizeable fraction of the truth.
    if total_exact:
        assert total_learn / total_exact >= 0.5
