"""Before/after benchmark: signature-filtered vs unfiltered division.

For each quick-suite circuit plus the mid-size ``rnd8``, runs one
substitution pass with the simulation filter disabled and one with it
enabled, asserting exact literal parity (the filter is sound) and
reporting the ``boolean_divide``-invocation reduction and wall-clock
ratio.  Writes both a human-readable table and the machine-readable
``BENCH_sim_filter.json``.
"""

from conftest import RESULTS_DIR, write_result

from repro.bench.simbench import run_sim_filter_benchmark
from repro.bench.suite import benchmark_suite
from repro.core.config import BASIC


def test_sim_filter_before_after():
    names = list(benchmark_suite(quick=True))
    if "rnd8" not in names:
        names.append("rnd8")
    RESULTS_DIR.mkdir(exist_ok=True)
    report = run_sim_filter_benchmark(
        names, BASIC, RESULTS_DIR / "BENCH_sim_filter.json"
    )

    lines = [
        "Simulation-signature divisor filter: before/after (BASIC)",
        f"{'circuit':<10} {'lits':>6} {'divide calls':>18} "
        f"{'ratio':>6} {'speedup':>8} {'pruned d/v':>12}",
    ]
    for row in report["circuits"]:
        off, on = row["unfiltered"], row["filtered"]
        assert row["literal_parity"], row["circuit"]
        lines.append(
            f"{row['circuit']:<10} {on['literals_after']:>6} "
            f"{off['divide_calls']:>8} -> {on['divide_calls']:>6} "
            f"{row['divide_call_ratio']:>6.2f} {row['speedup']:>7.2f}x "
            f"{on['divisors_pruned']:>6}/{on['variants_pruned']}"
        )
    lines.append(
        f"mean divide-call ratio: {report['mean_divide_call_ratio']:.2f}"
    )
    write_result("sim_filter.txt", "\n".join(lines))

    assert report["all_literal_parity"]
    assert report["mean_divide_call_ratio"] >= 2.0
