"""Ablation A: value of the product-of-sums division path.

The paper argues operating on circuit structure makes POS-form
substitution as easy as SOP-form.  This ablation disables the POS and
complement attempts to measure what they contribute.
"""

from conftest import write_result

from repro.core.config import DivisionConfig
from repro.core.substitution import substitute_network
from repro.network.factor import network_literals

FULL = DivisionConfig(mode="basic", try_pos=True, try_complement=True)
SOP_ONLY = DivisionConfig(mode="basic", try_pos=False, try_complement=False)


def run_variant(suite, config):
    totals = {}
    for name, net in suite.items():
        working = net.copy()
        substitute_network(working, config)
        totals[name] = network_literals(working)
    return totals


def test_pos_and_complement_help(benchmark, suite):
    full = benchmark.pedantic(
        run_variant, args=(suite, FULL), rounds=1, iterations=1
    )
    sop_only = run_variant(suite, SOP_ONLY)
    lines = ["== Ablation A: SOP-only vs full (POS + complement) =="]
    for name in suite:
        lines.append(
            f"{name:8s}  sop-only {sop_only[name]:4d}   full {full[name]:4d}"
        )
    lines.append(
        f"total     sop-only {sum(sop_only.values()):4d}   "
        f"full {sum(full.values()):4d}"
    )
    write_result("ablation_pos.txt", "\n".join(lines))
    assert sum(full.values()) <= sum(sop_only.values())
