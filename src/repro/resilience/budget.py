"""Run budgets: deadline, divide-call, and ATPG-backtrack caps.

A :class:`RunBudget` is the one mutable ledger a run shares across the
substitution loop, the division engine, and the D-algorithm.  The
consumers check it at three granularities:

* **pass/pair** — :meth:`RunBudget.check` before every pass and every
  candidate (dividend, divisor) pair, so a tripped budget stops the run
  between pairs with the network in a committed, verified state;
* **removal loop** — :meth:`RunBudget.check_deadline` before every
  literal/cube redundancy test inside
  :class:`~repro.core.division._RegionRemover`, so a pathological
  implication blow-up inside *one* pair cannot overshoot a deadline by
  more than a single test;
* **D-alg** — :func:`repro.atpg.dalg.generate_test` clamps its
  per-call backtrack limit to what the run budget has left and charges
  the backtracks it actually spent.

Trips are reported by raising :class:`BudgetExhausted` (a control-flow
signal, not an error): callers unwind to a clean state, stop starting
new work, and fold :meth:`RunBudget.report` into the run statistics.
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Optional


class BudgetExhausted(Exception):
    """Control-flow signal: the run budget tripped; stop cleanly."""

    def __init__(self, reason: str):
        super().__init__(reason)
        self.reason = reason


@dataclasses.dataclass
class BudgetReport:
    """JSON-ready summary of a budget at the end of a run."""

    #: True when the budget stopped the run before its natural end.
    stopped: bool
    #: What tripped first ("deadline", "divide_calls", "backtracks"),
    #: or ``None`` when the run finished within budget.
    reason: Optional[str]
    elapsed_seconds: float
    divide_calls: int
    backtracks: int
    atpg_incomplete: int
    deadline_seconds: Optional[float]
    max_divide_calls: Optional[int]
    max_backtracks: Optional[int]


class RunBudget:
    """Mutable spend ledger against optional limits.

    All limits are optional; a limit of ``None`` never trips.  The
    *clock* is injectable so deadline behaviour is unit-testable
    without sleeping.
    """

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        max_divide_calls: Optional[int] = None,
        max_backtracks: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        self.deadline_seconds = deadline_seconds
        self.max_divide_calls = max_divide_calls
        self.max_backtracks = max_backtracks
        self._clock = clock
        self._start = clock()
        self.divide_calls = 0
        self.backtracks = 0
        self.atpg_incomplete = 0
        #: First trip reason; latched so the report names the original
        #: cause even if several limits are exceeded by the time the
        #: run unwinds.
        self.stop_reason: Optional[str] = None

    @classmethod
    def from_config(cls, config) -> Optional["RunBudget"]:
        """A budget for *config*'s limits, or ``None`` if it sets none."""
        if (
            config.deadline_seconds is None
            and config.max_divide_calls is None
            and config.max_run_backtracks is None
        ):
            return None
        return cls(
            deadline_seconds=config.deadline_seconds,
            max_divide_calls=config.max_divide_calls,
            max_backtracks=config.max_run_backtracks,
        )

    # ------------------------------------------------------------------
    # Spend
    # ------------------------------------------------------------------
    def elapsed(self) -> float:
        return self._clock() - self._start

    def charge_divide_calls(self, n: int) -> None:
        self.divide_calls += n

    def charge_backtracks(self, n: int) -> None:
        self.backtracks += n

    def note_atpg_incomplete(self) -> None:
        """A D-alg call ran out of budget (verdict must be conservative)."""
        self.atpg_incomplete += 1

    def backtracks_remaining(self) -> Optional[int]:
        """Backtracks left before the cap, ``None`` when uncapped."""
        if self.max_backtracks is None:
            return None
        return max(0, self.max_backtracks - self.backtracks)

    # ------------------------------------------------------------------
    # Checks
    # ------------------------------------------------------------------
    def deadline_passed(self) -> bool:
        return (
            self.deadline_seconds is not None
            and self.elapsed() >= self.deadline_seconds
        )

    def exhausted(self) -> bool:
        """True once any limit has tripped (latches the first reason)."""
        if self.stop_reason is not None:
            return True
        if self.deadline_passed():
            self.stop_reason = "deadline"
        elif (
            self.max_divide_calls is not None
            and self.divide_calls >= self.max_divide_calls
        ):
            self.stop_reason = "divide_calls"
        elif (
            self.max_backtracks is not None
            and self.backtracks >= self.max_backtracks
        ):
            self.stop_reason = "backtracks"
        return self.stop_reason is not None

    def check(self) -> None:
        """Raise :class:`BudgetExhausted` if any limit has tripped."""
        if self.exhausted():
            raise BudgetExhausted(self.stop_reason)

    def check_deadline(self) -> None:
        """Cheap inner-loop check: only the wall-clock deadline."""
        if self.deadline_passed():
            self.stop_reason = self.stop_reason or "deadline"
            raise BudgetExhausted("deadline")

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def report(self) -> BudgetReport:
        return BudgetReport(
            stopped=self.exhausted(),
            reason=self.stop_reason,
            elapsed_seconds=self.elapsed(),
            divide_calls=self.divide_calls,
            backtracks=self.backtracks,
            atpg_incomplete=self.atpg_incomplete,
            deadline_seconds=self.deadline_seconds,
            max_divide_calls=self.max_divide_calls,
            max_backtracks=self.max_backtracks,
        )
