"""Deterministic fault injection for the resilience test harness.

Used only by tests: an installed :class:`InjectionPlan` rides into the
speculative engine's worker payloads and fires on exact batch indices,
so every recovery path in :mod:`repro.parallel` — pool loss, worker
exceptions, slow workers, corrupted results, parent-side speculation
failures — is exercised deterministically in CI instead of waiting for
a real fault in production.

Hooks and where they fire:

* ``kill_on_batch`` — the worker process ``os._exit``\\ s while
  evaluating that batch (the pool breaks; the executor's redispatch
  ladder takes over).  Worker processes only.
* ``raise_on_batch`` — the worker raises ``RuntimeError`` (a
  per-future failure without losing the pool).  Worker processes only.
* ``sleep_on_batch`` — the worker stalls for ``sleep_seconds`` (slow
  shard; exercises deadline budgets against straggling workers, and —
  with ``stall_timeout_seconds`` armed — the executor's stall
  watchdog, which flags the silent shard and feeds it into the same
  containment ladder as a worker fault).  Worker processes only.
* ``corrupt_on_batch`` — the first profitable
  :class:`~repro.core.division.DivisionResult` in that batch has its
  substituted cover complemented: structurally valid, picklable, and
  functionally wrong, exactly what commit verification must catch.
  Fires in workers *and* in the in-process serial backend, so the
  rollback path is testable without process pools.
* ``raise_in_parent_on_batch`` — the evaluation raises in the *parent*
  process (serial backend or in-process fallback), exercising the
  engine-level containment that abandons speculation for the pass.

Destructive hooks (kill/raise/sleep) are gated on ``os.getpid() !=
parent_pid`` so a shard degraded to the in-process fallback can never
kill or wedge the parent.  ``persistent=False`` (the default) models a
transient fault: the executor disarms the plan when it rebuilds the
pool, so the redispatch succeeds.  ``persistent=True`` keeps firing,
forcing the shard down the degrade-to-serial rung of the ladder.
"""

from __future__ import annotations

import contextlib
import dataclasses
import os
import time
from typing import Iterator, List, Optional


@dataclasses.dataclass(frozen=True)
class InjectionPlan:
    """Picklable description of the faults to inject (see module doc)."""

    kill_on_batch: Optional[int] = None
    raise_on_batch: Optional[int] = None
    sleep_on_batch: Optional[int] = None
    sleep_seconds: float = 0.0
    corrupt_on_batch: Optional[int] = None
    raise_in_parent_on_batch: Optional[int] = None
    #: Transient faults (False) are disarmed when the executor rebuilds
    #: its pool; persistent ones keep firing on every retry.
    persistent: bool = False
    #: Pid of the process that installed the plan; destructive hooks
    #: refuse to fire there.
    parent_pid: int = 0


def plan(**kwargs) -> InjectionPlan:
    """An :class:`InjectionPlan` stamped with the caller's pid."""
    kwargs.setdefault("parent_pid", os.getpid())
    return InjectionPlan(**kwargs)


# ----------------------------------------------------------------------
# Installation (consulted by SpeculativeEngine.precompute)
# ----------------------------------------------------------------------
_ACTIVE: Optional[InjectionPlan] = None


def install(injection_plan: InjectionPlan) -> None:
    global _ACTIVE
    _ACTIVE = injection_plan


def clear() -> None:
    global _ACTIVE
    _ACTIVE = None


def active() -> Optional[InjectionPlan]:
    return _ACTIVE


@contextlib.contextmanager
def injected(injection_plan: InjectionPlan) -> Iterator[InjectionPlan]:
    """Install *injection_plan* for the duration of a with-block."""
    install(injection_plan)
    try:
        yield injection_plan
    finally:
        clear()


# ----------------------------------------------------------------------
# Firing (called from WorkerContext.evaluate)
# ----------------------------------------------------------------------
def fire_batch_hooks(
    injection_plan: Optional[InjectionPlan], batch_index: int
) -> None:
    """Apply the pre-evaluation hooks for *batch_index* (if any)."""
    if injection_plan is None:
        return
    in_worker = os.getpid() != injection_plan.parent_pid
    if not in_worker:
        if injection_plan.raise_in_parent_on_batch == batch_index:
            raise RuntimeError(
                f"injected parent-side fault on batch {batch_index}"
            )
        return
    if injection_plan.kill_on_batch == batch_index:
        os._exit(86)
    if injection_plan.raise_on_batch == batch_index:
        raise RuntimeError(
            f"injected worker fault on batch {batch_index}"
        )
    if (
        injection_plan.sleep_on_batch == batch_index
        and injection_plan.sleep_seconds > 0
    ):
        time.sleep(injection_plan.sleep_seconds)


def corrupt_outcomes(
    injection_plan: Optional[InjectionPlan],
    batch_index: int,
    outcomes: List,
) -> bool:
    """Complement the first profitable result's cover, in place.

    Returns True when a result was corrupted.  The corrupted
    :class:`DivisionResult` keeps its fanins and (positive) gain, so it
    sails through the commit path untouched — only functional
    verification can reject it.
    """
    if (
        injection_plan is None
        or injection_plan.corrupt_on_batch != batch_index
    ):
        return False
    from repro.twolevel.complement import complement

    for i, outcome in enumerate(outcomes):
        result = outcome.result
        if result is None:
            continue
        corrupted = dataclasses.replace(
            result, new_cover=complement(result.new_cover)
        )
        outcomes[i] = dataclasses.replace(outcome, result=corrupted)
        return True
    return False
