"""Run governance: budgets, fault containment, verified checkpoints.

Long substitution runs must degrade gracefully instead of crashing or
silently corrupting the network (the contract ABC-style resub engines
enforce with verify-after-optimize spot checks).  This package holds
the three pillars:

* :mod:`repro.resilience.budget` — :class:`RunBudget`: wall-clock
  deadline plus total divide-call and ATPG-backtrack caps, checked at
  pass/pair/D-alg granularity so any run stops cleanly with its
  best-so-far network and a :class:`BudgetReport` in the statistics.
* :mod:`repro.resilience.checkpoint` — :class:`CommitLedger`: opt-in
  transactional commits; every accepted substitution is spot-checked
  against the pre-optimization reference (full exact check every K
  commits), and a miscompare rolls the commit back and quarantines the
  (dividend, divisor) pair for the rest of the run.
* :mod:`repro.resilience.inject` — the deterministic fault-injection
  hooks (kill-worker, worker exception, slow worker, corrupt result)
  used only by the test harness, so every recovery path in
  :mod:`repro.parallel` is exercised in CI.
"""

from repro.resilience.budget import (
    BudgetExhausted,
    BudgetReport,
    RunBudget,
)
from repro.resilience.checkpoint import CommitLedger
from repro.resilience.inject import InjectionPlan

__all__ = [
    "BudgetExhausted",
    "BudgetReport",
    "RunBudget",
    "CommitLedger",
    "InjectionPlan",
]
