"""Verified checkpoints: transactional commits with rollback.

With ``DivisionConfig.verify_commits`` the substitution loop treats
every accepted rewrite as a transaction: the touched nodes are
snapshotted (the loop's existing undo buffer), the rewrite is applied,
and the :class:`CommitLedger` spot-checks the whole network against the
pre-optimization reference before the commit is kept.  The spot check
is the cheap maintained-signature / random-simulation screen
(:func:`~repro.network.verify.simulate_equivalent_prescreened`); every
``verify_full_every``-th commit is instead checked *exactly* (BDD
equivalence for networks with few inputs, a much wider random screen
otherwise).

A miscompare rolls the commit back, quarantines the (dividend,
divisor) pair for the rest of the run — the pair is never evaluated or
served from the speculative store again — and appends a structured
incident record (a JSON-ready dict) that surfaces through
``SubstitutionStats.incidents`` and the CLI's ``--stats-json``.
"""

from __future__ import annotations

import logging
from typing import Dict, List, Optional, Set, Tuple

from repro.network.network import Network
from repro.network.verify import (
    networks_equivalent,
    simulate_equivalent,
    simulate_equivalent_prescreened,
)

logger = logging.getLogger("repro.resilience")

Pair = Tuple[str, str]

#: With ``verify_backend="bdd"``: PI count up to which the periodic
#: full check builds exact BDDs; wider networks fall back to a
#: high-pattern random screen.  The "auto"/"sat" backends stay exact
#: at any width through the CNF miter instead (see
#: :func:`~repro.network.verify.exact_equivalent`).
_EXACT_PI_LIMIT = 24


class CommitLedger:
    """Commit verification, rollback bookkeeping, and quarantine.

    The ledger never mutates the network itself — the substitution
    loop owns the undo buffer and calls :meth:`quarantine` after it has
    restored the snapshot, so the ledger's counters always describe
    completed rollbacks.
    """

    def __init__(self, reference: Network, config, sim_filter=None):
        self.reference = reference
        self.config = config
        self.sim_filter = sim_filter
        self.quarantined: Set[Pair] = set()
        self.incidents: List[Dict[str, object]] = []
        #: Commits seen (drives the every-K full-check cadence).
        self.commits = 0
        #: Verification checks actually run.
        self.verified = 0
        #: Commits rolled back after a failed check.
        self.rolled_back = 0
        self._last_check = "none"
        #: SAT-backend work done by this ledger's full checks
        #: (absorbed into ``SubstitutionStats.sat_*`` at run end).
        self.sat_solves = 0
        self.sat_conflicts = 0
        self.sat_decisions = 0
        self.sat_propagations = 0
        self.sat_learned = 0

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def is_quarantined(self, f_name: str, d_name: str) -> bool:
        return (f_name, d_name) in self.quarantined

    # ------------------------------------------------------------------
    # Verification
    # ------------------------------------------------------------------
    def verify_commit(
        self, network: Network, f_name: str, d_name: str
    ) -> bool:
        """Check the just-applied commit; False means roll it back."""
        self.commits += 1
        self.verified += 1
        if self.commits % self.config.verify_full_every == 0:
            self._last_check = "exact"
            return self._full_check(network)
        self._last_check = "simulation"
        sim = self.sim_filter.sim if self.sim_filter is not None else None
        return simulate_equivalent_prescreened(
            self.reference, network, sim
        )

    def _full_check(self, network: Network) -> bool:
        backend = getattr(self.config, "verify_backend", "auto")
        n_pis = len(network.pis)
        if backend == "sat" or (
            backend == "auto"
            and n_pis > getattr(self.config, "sat_pi_threshold", 16)
        ):
            from repro.sat.check import (
                DEFAULT_CONFLICT_BUDGET,
                sat_equivalent,
            )

            verdict = sat_equivalent(
                self.reference,
                network,
                conflict_budget=getattr(
                    self.config, "sat_conflict_budget",
                    DEFAULT_CONFLICT_BUDGET,
                ),
            )
            self.sat_solves += 1
            self.sat_conflicts += verdict.conflicts
            self.sat_decisions += verdict.decisions
            self.sat_propagations += verdict.propagations
            self.sat_learned += verdict.learned
            if verdict.complete:
                return bool(verdict.verdict)
            # Exhausted conflict budget: degrade to the wide random
            # screen rather than rolling back a commit on an unknown.
        elif n_pis <= _EXACT_PI_LIMIT:
            return networks_equivalent(self.reference, network)
        return simulate_equivalent(self.reference, network, patterns=2048)

    # ------------------------------------------------------------------
    # Rollback bookkeeping
    # ------------------------------------------------------------------
    def quarantine(
        self, f_name: str, d_name: str, detail: Optional[str] = None
    ) -> None:
        """Record a completed rollback and bar the pair for the run."""
        self.rolled_back += 1
        self.quarantined.add((f_name, d_name))
        incident: Dict[str, object] = {
            "kind": "rolled_back_commit",
            "dividend": f_name,
            "divisor": d_name,
            "commit_index": self.commits,
            "check": self._last_check,
        }
        if detail:
            incident["detail"] = detail
        self.incidents.append(incident)
        logger.error(
            "commit verification failed (%s check): rolled back and "
            "quarantined dividend=%s divisor=%s",
            self._last_check,
            f_name,
            d_name,
        )
