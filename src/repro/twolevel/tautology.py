"""Tautology and containment checks via the unate recursive paradigm.

These are the workhorse semantic predicates of the two-level layer:

* :func:`is_tautology` — does a cover equal the constant 1?
* :func:`cover_contains_cube` — is a cube inside a cover?
* :func:`cover_contains_cover` — is a whole cover inside another?

The recursion follows the classical Espresso URP: split on the most
binate variable, with unate-cover and truth-table base cases.
"""

from __future__ import annotations

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover

# Covers whose support fits in this many variables are checked with a
# packed truth table instead of recursion; 2**12 bits is a cheap int.
_TRUTH_TABLE_LIMIT = 12


def is_tautology(cover: Cover) -> bool:
    """True iff the cover is the constant-1 function."""
    return _tautology(cover)


def _tautology(cover: Cover) -> bool:
    if any(cube.is_full() for cube in cover.cubes):
        return True
    if not cover.cubes:
        return False

    support = cover.support_vars()
    n = len(support)

    # Fast bound: a cover cannot be a tautology with too few minterms.
    # Each cube with k literals (within the support) covers 2^(n-k)
    # of the 2^n support-space minterms.
    total = 0
    full_space = 1 << n
    for cube in cover.cubes:
        total += 1 << (n - cube.num_literals())
        if total >= full_space:
            break
    if total < full_space:
        return False

    if n <= _TRUTH_TABLE_LIMIT:
        return _truth_table_tautology(cover, support)

    # Unate reduction: in a unate cover only the universal cube can make
    # it a tautology, and that was checked above.
    var = cover.most_binate_var()
    if var is None:
        return False
    pos, neg = cover.var_phase_counts(var)
    if pos == 0 or neg == 0:
        # Unate in the splitting variable: cubes with that literal
        # cannot help cover the opposite half-space, so drop them.
        reduced = Cover(
            cover.num_vars,
            [c for c in cover.cubes if c.phase(var) is None],
        )
        return _tautology(reduced)
    return _tautology(cover.cofactor(var, True)) and _tautology(
        cover.cofactor(var, False)
    )


def _truth_table_tautology(cover: Cover, support) -> bool:
    index = {var: i for i, var in enumerate(support)}
    n = len(support)
    full = (1 << (1 << n)) - 1
    mask = 0
    for cube in cover.cubes:
        compact = Cube.from_literals(
            [(index[v], phase) for v, phase in cube.literals()]
        )
        mask |= compact.truth_mask(n)
        if mask == full:
            return True
    return mask == full


def cover_contains_cube(cover: Cover, cube: Cube) -> bool:
    """True iff every minterm of *cube* is covered by *cover*.

    Classical reduction: ``cube <= cover`` iff the cofactor of the
    cover against the cube is a tautology.
    """
    return _tautology(cover.cofactor_cube(cube))


def cover_contains_cover(cover: Cover, other: Cover) -> bool:
    """True iff ``other <= cover`` semantically."""
    cover._check_compatible(other)
    return all(cover_contains_cube(cover, cube) for cube in other.cubes)
