"""Cover complementation via the unate recursive paradigm.

``complement(F)`` returns a cover of NOT F.  The recursion splits on
the most binate variable and merges the two half-space complements;
unate covers get the cheaper sharp-based treatment, and tiny supports
fall back to a truth table.
"""

from __future__ import annotations

import functools
from typing import List

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover

_TRUTH_TABLE_LIMIT = 10


def complement_cube(cube: Cube, num_vars: int) -> Cover:
    """De Morgan complement of a single cube (one cube per literal)."""
    cubes = [Cube.literal(var, not phase) for var, phase in cube.literals()]
    return Cover(num_vars, cubes)


@functools.lru_cache(maxsize=8192)
def _complement_cached(cover: Cover) -> Cover:
    return _complement(cover).single_cube_containment()


def complement(cover: Cover) -> Cover:
    """A cover of the complement of *cover* (same variable space).

    Memoized: covers are immutable and the division/substitution
    machinery re-complements the same node covers constantly.
    """
    return _complement_cached(cover)


def _complement(cover: Cover) -> Cover:
    if cover.is_zero():
        return Cover.one(cover.num_vars)
    if cover.is_one_cube():
        return Cover.zero(cover.num_vars)
    if len(cover.cubes) == 1:
        return complement_cube(cover.cubes[0], cover.num_vars)

    support = cover.support_vars()
    if len(support) <= _TRUTH_TABLE_LIMIT:
        return _truth_table_complement(cover, support)

    var = cover.most_binate_var()
    assert var is not None  # constants were handled above
    pos_comp = _complement(cover.cofactor(var, True))
    neg_comp = _complement(cover.cofactor(var, False))
    cubes: List[Cube] = []
    pos_lit = Cube.literal(var, True)
    neg_lit = Cube.literal(var, False)
    for cube in pos_comp.cubes:
        merged = cube.intersect(pos_lit)
        if merged is not None:
            cubes.append(merged)
    for cube in neg_comp.cubes:
        merged = cube.intersect(neg_lit)
        if merged is not None:
            cubes.append(merged)
    return Cover(cover.num_vars, cubes)


def _truth_table_complement(cover: Cover, support) -> Cover:
    """Exact complement over a small support, then a greedy cube cover."""
    index = {var: i for i, var in enumerate(support)}
    n = len(support)
    mask = 0
    for cube in cover.cubes:
        compact = Cube.from_literals(
            [(index[v], phase) for v, phase in cube.literals()]
        )
        mask |= compact.truth_mask(n)
    full = (1 << (1 << n)) - 1
    full_off = full & ~mask
    off = full_off
    cubes: List[Cube] = []
    while off:
        minterm = (off & -off).bit_length() - 1
        cube = _expand_minterm(minterm, full_off, n)
        cubes.append(_lift(cube, support))
        off &= ~cube.truth_mask(n)
    return Cover(cover.num_vars, cubes)


def _expand_minterm(minterm: int, off: int, n: int) -> Cube:
    """Grow a minterm into a prime of the off-set mask (greedy)."""
    cube = Cube.from_minterm(minterm, n)
    for var in range(n):
        candidate = cube.without_var(var)
        if candidate.truth_mask(n) & ~off == 0:
            cube = candidate
    return cube


def _lift(cube: Cube, support) -> Cube:
    return Cube.from_literals(
        [(support[v], phase) for v, phase in cube.literals()]
    )
