"""Cubes (product terms) in positional-cube notation.

A cube over variables ``x0 .. x(n-1)`` is a conjunction of literals.  It
is stored as two bit masks:

* ``pos`` — bit ``i`` set means the literal ``xi`` appears,
* ``neg`` — bit ``i`` set means the literal ``xi'`` appears.

A variable mentioned in neither mask is absent (don't care for this
cube).  A variable mentioned in both masks would make the cube empty;
:class:`Cube` never represents empty cubes — operations that would
produce one (e.g. :meth:`Cube.intersect`) return ``None`` instead.

Containment follows the paper's convention: cube ``a`` *contains* cube
``b`` when the on-set of ``a`` contains the on-set of ``b``, which for
cubes is exactly "the literals of ``a`` are a subset of the literals of
``b``" (e.g. ``b`` contains ``abc``).
"""

from __future__ import annotations

import functools
import sys
from typing import Iterable, Iterator, Optional, Sequence, Tuple

if sys.version_info >= (3, 10):

    def _popcount(x: int) -> int:
        return x.bit_count()

else:  # pragma: no cover — exercised only on older interpreters

    def _popcount(x: int) -> int:
        return bin(x).count("1")


@functools.lru_cache(maxsize=4096)
def _var_truth_mask(num_vars: int, var: int) -> int:
    """Truth-table mask of the literal ``x_var`` over *num_vars* vars.

    Bit ``m`` of the result is set iff minterm ``m`` has ``x_var = 1``
    — the classic "magic constant" of bit-parallel truth tables
    (e.g. ...0101 for x0, ...0011 for x1).
    """
    block = 1 << var  # run length of equal values in minterm order
    full = (1 << (1 << num_vars)) - 1
    unit = ((1 << block) - 1) << block
    repetitions = full // ((1 << (2 * block)) - 1)
    return unit * repetitions


class Cube:
    """An immutable, hashable product term."""

    __slots__ = ("pos", "neg")

    def __init__(self, pos: int = 0, neg: int = 0):
        if pos < 0 or neg < 0:
            raise ValueError("literal masks must be non-negative")
        if pos & neg:
            raise ValueError(
                "cube has a variable in both phases (empty cube); "
                "use intersect(), which signals emptiness with None"
            )
        self.pos = pos
        self.neg = neg

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def full() -> "Cube":
        """The universal cube (no literals; the constant-1 product)."""
        return Cube(0, 0)

    @staticmethod
    def literal(var: int, phase: bool) -> "Cube":
        """A single-literal cube: ``xvar`` if *phase* else ``xvar'``."""
        bit = 1 << var
        return Cube(bit, 0) if phase else Cube(0, bit)

    @staticmethod
    def from_literals(literals: Iterable[Tuple[int, bool]]) -> "Cube":
        """Build a cube from ``(var, phase)`` pairs.

        Raises ``ValueError`` if the same variable appears in both
        phases (that product is empty).
        """
        pos = neg = 0
        for var, phase in literals:
            bit = 1 << var
            if phase:
                pos |= bit
            else:
                neg |= bit
        return Cube(pos, neg)

    @staticmethod
    def from_minterm(minterm: int, num_vars: int) -> "Cube":
        """The full-dimension cube for a minterm (all variables bound)."""
        mask = (1 << num_vars) - 1
        pos = minterm & mask
        return Cube(pos, mask & ~pos)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def num_literals(self) -> int:
        return _popcount(self.pos | self.neg)

    def support(self) -> int:
        """Bit mask of variables mentioned by this cube."""
        return self.pos | self.neg

    def variables(self) -> Iterator[int]:
        """Indices of variables mentioned by this cube, ascending."""
        sup = self.pos | self.neg
        i = 0
        while sup:
            if sup & 1:
                yield i
            sup >>= 1
            i += 1

    def literals(self) -> Iterator[Tuple[int, bool]]:
        """``(var, phase)`` pairs, ascending by variable index."""
        for var in self.variables():
            yield var, bool(self.pos >> var & 1)

    def phase(self, var: int) -> Optional[bool]:
        """Phase of *var* in this cube, or ``None`` when absent."""
        bit = 1 << var
        if self.pos & bit:
            return True
        if self.neg & bit:
            return False
        return None

    def is_full(self) -> bool:
        return not (self.pos | self.neg)

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def contains(self, other: "Cube") -> bool:
        """On-set containment: every minterm of *other* is in *self*.

        Holds iff self's literals are a subset of other's literals.
        """
        return (self.pos & ~other.pos) == 0 and (self.neg & ~other.neg) == 0

    def intersect(self, other: "Cube") -> Optional["Cube"]:
        """Product of two cubes, or ``None`` when they are disjoint."""
        pos = self.pos | other.pos
        neg = self.neg | other.neg
        if pos & neg:
            return None
        return Cube(pos, neg)

    def distance(self, other: "Cube") -> int:
        """Number of variables in which the two cubes conflict.

        Distance 0 means the cubes intersect; distance 1 means they can
        be merged by the consensus operation.
        """
        return _popcount((self.pos & other.neg) | (self.neg & other.pos))

    def consensus(self, other: "Cube") -> Optional["Cube"]:
        """The consensus cube, defined only when distance is exactly 1."""
        conflict = (self.pos & other.neg) | (self.neg & other.pos)
        if _popcount(conflict) != 1:
            return None
        pos = (self.pos | other.pos) & ~conflict
        neg = (self.neg | other.neg) & ~conflict
        return Cube(pos, neg)

    def supercube(self, other: "Cube") -> "Cube":
        """Smallest cube containing both operands (literal intersection)."""
        return Cube(self.pos & other.pos, self.neg & other.neg)

    def cofactor(self, var: int, value: bool) -> Optional["Cube"]:
        """Shannon cofactor with respect to ``var = value``.

        Returns ``None`` when the cube vanishes under the assignment.
        """
        bit = 1 << var
        if value:
            if self.neg & bit:
                return None
            return Cube(self.pos & ~bit, self.neg)
        if self.pos & bit:
            return None
        return Cube(self.pos, self.neg & ~bit)

    def cofactor_cube(self, other: "Cube") -> Optional["Cube"]:
        """Cube cofactor (Espresso's cube-restriction), ``None`` if disjoint."""
        if self.distance(other) != 0:
            return None
        return Cube(self.pos & ~other.pos, self.neg & ~other.neg)

    def without_var(self, var: int) -> "Cube":
        """Drop any literal of *var* (existential abstraction for a cube)."""
        bit = 1 << var
        return Cube(self.pos & ~bit, self.neg & ~bit)

    def with_literal(self, var: int, phase: bool) -> Optional["Cube"]:
        """Add a literal; ``None`` if the opposite phase is present."""
        lit = Cube.literal(var, phase)
        return self.intersect(lit)

    # ------------------------------------------------------------------
    # Evaluation / enumeration
    # ------------------------------------------------------------------
    def evaluate(self, assignment: int) -> bool:
        """Evaluate under a complete assignment given as a bit vector."""
        if self.pos & ~assignment:
            return False
        if self.neg & assignment:
            return False
        return True

    def minterm_count(self, num_vars: int) -> int:
        """Number of minterms in the cube's on-set over *num_vars* vars."""
        free = num_vars - self.num_literals()
        if free < 0:
            raise ValueError("cube mentions variables beyond num_vars")
        return 1 << free

    def minterms(self, num_vars: int) -> Iterator[int]:
        """Enumerate the cube's minterms as integers (LSB = x0)."""
        free_vars = [v for v in range(num_vars) if not (self.support() >> v & 1)]
        base = self.pos
        for combo in range(1 << len(free_vars)):
            value = base
            for j, var in enumerate(free_vars):
                if combo >> j & 1:
                    value |= 1 << var
            yield value

    def truth_mask(self, num_vars: int) -> int:
        """On-set as a 2**num_vars-bit truth-table mask (small n only).

        Computed bit-parallel from per-variable magic masks rather than
        by enumerating minterms.
        """
        full = (1 << (1 << num_vars)) - 1
        mask = full
        sup = self.pos | self.neg
        if sup >> num_vars:
            raise ValueError("cube mentions variables beyond num_vars")
        for var, phase in self.literals():
            var_mask = _var_truth_mask(num_vars, var)
            mask &= var_mask if phase else full & ~var_mask
            if not mask:
                break
        return mask

    # ------------------------------------------------------------------
    # Text I/O
    # ------------------------------------------------------------------
    def to_str(self, names: Optional[Sequence[str]] = None) -> str:
        """Render as e.g. ``ab'c``; the full cube renders as ``1``."""
        if self.is_full():
            return "1"
        parts = []
        for var, phase in self.literals():
            name = names[var] if names is not None else f"x{var}"
            parts.append(name if phase else name + "'")
        return "".join(parts)

    @staticmethod
    def parse(text: str, names: Sequence[str]) -> "Cube":
        """Parse ``ab'c`` style text against a list of variable names.

        Longest-match-first so multi-character names work.  ``1`` parses
        to the full cube.
        """
        text = text.strip()
        if text == "1":
            return Cube.full()
        ordered = sorted(range(len(names)), key=lambda i: -len(names[i]))
        literals = []
        i = 0
        while i < len(text):
            if text[i].isspace():
                i += 1
                continue
            for idx in ordered:
                name = names[idx]
                if text.startswith(name, i):
                    i += len(name)
                    phase = True
                    if i < len(text) and text[i] == "'":
                        phase = False
                        i += 1
                    literals.append((idx, phase))
                    break
            else:
                raise ValueError(f"cannot parse literal at {text[i:]!r}")
        return Cube.from_literals(literals)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __getstate__(self) -> Tuple[int, int]:
        # Explicit state: ``__slots__`` classes are otherwise
        # unpicklable under protocols 0/1 (the worker-serialization
        # contract covers every protocol).
        return (self.pos, self.neg)

    def __setstate__(self, state: Tuple[int, int]) -> None:
        self.pos, self.neg = state

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cube)
            and self.pos == other.pos
            and self.neg == other.neg
        )

    def __hash__(self) -> int:
        return hash((self.pos, self.neg))

    def __repr__(self) -> str:
        return f"Cube({self.to_str()})"

    def __lt__(self, other: "Cube") -> bool:
        return (self.pos, self.neg) < (other.pos, other.neg)
