"""Espresso-lite: heuristic two-level minimization with don't cares.

Implements the classical EXPAND / IRREDUNDANT / REDUCE loop over the
positional-cube representation:

* :func:`expand` grows each cube into a prime against the off-set and
  drops cubes the grown prime covers,
* :func:`irredundant` removes cubes covered by the rest of the cover
  plus the don't-care set,
* :func:`reduce_cover` shrinks each cube to the smallest cube still
  covering its essential part, unlocking further expansion,
* :func:`espresso` iterates the three until the cost stops improving.

This is the minimizer behind the SIS-style ``simplify`` pass and the
"force a literal through a two-level optimizer" Boolean-division
baseline the paper's introduction describes.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.twolevel.tautology import cover_contains_cube


def _cost(cover: Cover) -> Tuple[int, int]:
    return cover.num_cubes(), cover.num_literals()


def expand(cover: Cover, off_set: Cover) -> Cover:
    """Grow every cube into a prime of ON+DC and drop covered cubes.

    A literal may be dropped from a cube iff the grown cube still does
    not intersect any off-set cube (i.e. stays inside ON+DC).
    """
    # Process large cubes first so small cubes get absorbed by them.
    order = sorted(
        range(len(cover.cubes)), key=lambda i: cover.cubes[i].num_literals()
    )
    cubes = list(cover.cubes)
    alive = [True] * len(cubes)
    for i in order:
        if not alive[i]:
            continue
        cube = cubes[i]
        cube = _expand_one(cube, off_set)
        cubes[i] = cube
        for j in range(len(cubes)):
            if j != i and alive[j] and cube.contains(cubes[j]):
                alive[j] = False
    return Cover(
        cover.num_vars, [c for c, keep in zip(cubes, alive) if keep]
    )


def _expand_one(cube: Cube, off_set: Cover) -> Cube:
    """Greedy single-cube expansion against the off-set.

    Literal remove order: try the literal whose removal conflicts with
    the fewest off-set cubes first (a cheap stand-in for Espresso's
    blocking-matrix heuristics).
    """
    literals = list(cube.literals())
    scored = []
    for var, phase in literals:
        candidate = cube.without_var(var)
        blockers = sum(
            1 for off in off_set.cubes if candidate.distance(off) == 0
        )
        scored.append((blockers, var, phase))
    scored.sort()
    current = cube
    for _, var, _ in scored:
        candidate = current.without_var(var)
        if all(candidate.distance(off) > 0 for off in off_set.cubes):
            current = candidate
    return current


def irredundant(cover: Cover, dc_set: Optional[Cover] = None) -> Cover:
    """Remove cubes covered by the remaining cover plus the DC set."""
    cubes = list(cover.cubes)
    # Try to drop big-literal (small) cubes first.
    order = sorted(
        range(len(cubes)), key=lambda i: -cubes[i].num_literals()
    )
    alive = [True] * len(cubes)
    for i in order:
        rest = [c for j, c in enumerate(cubes) if alive[j] and j != i]
        if dc_set is not None:
            rest.extend(dc_set.cubes)
        if cover_contains_cube(Cover(cover.num_vars, rest), cubes[i]):
            alive[i] = False
    return Cover(
        cover.num_vars, [c for c, keep in zip(cubes, alive) if keep]
    )


def reduce_cover(cover: Cover, dc_set: Optional[Cover] = None) -> Cover:
    """Shrink every cube to its essential part (maximally reduced).

    The classical rule: replace cube ``c`` with
    ``c AND supercube(complement((F \\ {c} + DC) cofactor c))`` — the
    smallest cube covering the minterms of ``c`` that no other cube
    (or don't care) covers.
    """
    cubes = list(cover.cubes)
    order = sorted(range(len(cubes)), key=lambda i: cubes[i].num_literals())
    for i in order:
        cube = cubes[i]
        rest = [c for j, c in enumerate(cubes) if j != i]
        if dc_set is not None:
            rest.extend(dc_set.cubes)
        rest_cof = Cover(cover.num_vars, rest).cofactor_cube(cube)
        uncovered = complement(rest_cof)
        if uncovered.is_zero():
            # Fully covered elsewhere; keep as-is, irredundant removes it.
            continue
        super_cube = uncovered.cubes[0]
        for extra in uncovered.cubes[1:]:
            super_cube = super_cube.supercube(extra)
        reduced = cube.intersect(super_cube)
        if reduced is not None:
            cubes[i] = reduced
    return Cover(cover.num_vars, cubes)


def espresso(
    on_set: Cover,
    dc_set: Optional[Cover] = None,
    max_iterations: int = 10,
) -> Cover:
    """Heuristic minimization of *on_set* given an optional DC set.

    Returns a cover F with ``on_set <= F <= on_set + dc_set`` that is
    prime and irredundant with (usually) fewer cubes/literals.
    """
    if dc_set is None:
        dc_set = Cover.zero(on_set.num_vars)
    on_set._check_compatible(dc_set)
    if on_set.is_zero():
        return on_set
    off_set = complement(on_set.union(dc_set))
    if off_set.is_zero():
        return Cover.one(on_set.num_vars)

    current = on_set.single_cube_containment()
    current = expand(current, off_set)
    current = irredundant(current, dc_set)
    best = current
    best_cost = _cost(best)
    for _ in range(max_iterations):
        current = reduce_cover(current, dc_set)
        current = expand(current, off_set)
        current = irredundant(current, dc_set)
        cost = _cost(current)
        if cost < best_cost:
            best, best_cost = current, cost
        else:
            break
    return best


def minimize_exact_small(on_set: Cover, dc_set: Optional[Cover] = None) -> Cover:
    """Exact minimum-cube cover for tiny supports (Quine–McCluskey).

    Used by tests as an oracle; limited to supports of ~8 variables.
    """
    support = sorted(
        set(on_set.support_vars())
        | (set(dc_set.support_vars()) if dc_set else set())
    )
    n = len(support)
    if n > 8:
        raise ValueError("exact minimization limited to 8 support variables")
    index = {var: i for i, var in enumerate(support)}

    def compact_mask(cover: Cover) -> int:
        mask = 0
        for cube in cover.cubes:
            c = Cube.from_literals(
                [(index[v], p) for v, p in cube.literals()]
            )
            mask |= c.truth_mask(n)
        return mask

    on_mask = compact_mask(on_set)
    dc_mask = compact_mask(dc_set) if dc_set else 0
    care_on = on_mask & ~dc_mask
    if on_mask == 0:
        return Cover.zero(on_set.num_vars)
    target = care_on if care_on else on_mask

    primes = _all_primes(on_mask | dc_mask, n)
    prime_masks = [(p, p.truth_mask(n)) for p in primes]
    chosen = _exact_cover(target, prime_masks)
    lifted = [
        Cube.from_literals([(support[v], p) for v, p in cube.literals()])
        for cube in chosen
    ]
    return Cover(on_set.num_vars, lifted)


def _exact_cover(
    target: int, prime_masks: List[Tuple[Cube, int]]
) -> List[Cube]:
    """Minimum-cardinality prime cover of *target*, by branch & bound.

    Branches on the uncovered minterm with the fewest covering primes
    (the most constrained point), which makes essential primes free.
    """
    best: List[List[Cube]] = [[pm[0] for pm in prime_masks]]

    def covering(minterm_bit: int) -> List[Tuple[Cube, int]]:
        return [pm for pm in prime_masks if pm[1] & minterm_bit]

    def search(remaining: int, chosen: List[Cube]) -> None:
        if len(chosen) >= len(best[0]):
            return  # cannot beat the incumbent
        if not remaining:
            best[0] = list(chosen)
            return
        # Most-constrained uncovered minterm.
        pivot_bit = 0
        pivot_options: Optional[List[Tuple[Cube, int]]] = None
        probe = remaining
        while probe:
            bit = probe & -probe
            probe &= probe - 1
            options = covering(bit)
            if pivot_options is None or len(options) < len(pivot_options):
                pivot_bit, pivot_options = bit, options
                if len(options) <= 1:
                    break
        if not pivot_options:
            return  # uncoverable (cannot happen for true primes)
        for cube, mask in pivot_options:
            chosen.append(cube)
            search(remaining & ~mask, chosen)
            chosen.pop()

    search(target, [])
    return best[0]


def _all_primes(care_mask: int, n: int) -> List[Cube]:
    """All prime implicants of the mask over *n* variables."""
    implicants = set()
    for m in range(1 << n):
        if care_mask >> m & 1:
            implicants.add(Cube.from_minterm(m, n))
    primes: List[Cube] = []
    current = implicants
    while current:
        merged = set()
        used = set()
        items = list(current)
        for i, a in enumerate(items):
            for b in items[i + 1 :]:
                c = a.consensus(b)
                if c is not None and a.supercube(b) == c:
                    merged.add(c)
                    used.add(a)
                    used.add(b)
        for cube in current:
            if cube not in used:
                primes.append(cube)
        current = merged
    # Deduplicate while keeping only maximal cubes.
    unique = []
    for cube in primes:
        if not any(o.contains(cube) and o != cube for o in primes):
            if cube not in unique:
                unique.append(cube)
    return unique
