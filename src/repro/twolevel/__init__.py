"""Two-level (sum-of-products) cube algebra.

This subpackage is the substrate that everything else in :mod:`repro`
builds on: cubes in positional-cube notation, covers (sets of cubes),
unate-recursive-paradigm tautology checking and complementation, and an
Espresso-style two-level minimizer ("espresso-lite").

The representation follows Espresso's positional cube notation, packed
into two Python integers per cube (a positive-literal mask and a
negative-literal mask), so containment / intersection / distance are
single bitwise operations.
"""

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.tautology import is_tautology, cover_contains_cube
from repro.twolevel.complement import complement, complement_cube
from repro.twolevel.minimize import espresso, expand, irredundant, reduce_cover
from repro.twolevel.pla import Pla, cover_to_pla, read_pla, to_pla_str, write_pla

__all__ = [
    "Cube",
    "Cover",
    "is_tautology",
    "cover_contains_cube",
    "complement",
    "complement_cube",
    "espresso",
    "expand",
    "irredundant",
    "reduce_cover",
    "Pla",
    "cover_to_pla",
    "read_pla",
    "to_pla_str",
    "write_pla",
]
