"""Espresso PLA format reader and writer for two-level functions.

Supports the single-output and multi-output subset used by classical
two-level benchmarks: ``.i``/``.o`` declarations, optional ``.ilb`` /
``.ob`` name lists, ``.p`` (ignored on input), cube rows with input
part over ``0/1/-`` and output part over ``0/1`` (``~`` and ``4`` are
not supported), and ``.e``/``.end``.

A multi-output PLA is returned as one :class:`~repro.twolevel.cover.
Cover` per output, all over the same input variables.
"""

from __future__ import annotations

import io
from typing import Dict, List, Optional, TextIO, Tuple, Union

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover


class Pla:
    """A parsed PLA: input/output names and one cover per output."""

    def __init__(
        self,
        input_names: List[str],
        output_names: List[str],
        covers: Dict[str, Cover],
    ):
        self.input_names = input_names
        self.output_names = output_names
        self.covers = covers

    def cover(self, output: Optional[str] = None) -> Cover:
        """The cover of *output* (default: the only/first output)."""
        if output is None:
            output = self.output_names[0]
        return self.covers[output]

    def __repr__(self) -> str:
        return (
            f"Pla(inputs={len(self.input_names)}, "
            f"outputs={len(self.output_names)})"
        )


def read_pla(source: Union[str, TextIO]) -> Pla:
    """Parse PLA text (string or file object)."""
    if not isinstance(source, str):
        source = source.read()

    num_inputs: Optional[int] = None
    num_outputs: Optional[int] = None
    input_names: Optional[List[str]] = None
    output_names: Optional[List[str]] = None
    rows: List[Tuple[str, str]] = []

    for raw in source.splitlines():
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        if line.startswith("."):
            tokens = line.split()
            keyword = tokens[0]
            if keyword == ".i":
                num_inputs = int(tokens[1])
            elif keyword == ".o":
                num_outputs = int(tokens[1])
            elif keyword == ".ilb":
                input_names = tokens[1:]
            elif keyword == ".ob":
                output_names = tokens[1:]
            elif keyword == ".p":
                continue  # product count: informational
            elif keyword in (".e", ".end"):
                break
            elif keyword == ".type":
                if tokens[1] != "f":
                    raise ValueError(
                        f"only .type f PLAs are supported, not {tokens[1]}"
                    )
            else:
                raise ValueError(f"unsupported PLA directive {keyword!r}")
            continue
        parts = line.split()
        if len(parts) == 2:
            rows.append((parts[0], parts[1]))
        elif len(parts) == 1 and num_outputs == 0:
            rows.append((parts[0], ""))
        else:
            # Allow "01-1 1" style with whitespace inside collapsed.
            raise ValueError(f"cannot parse PLA row {line!r}")

    if num_inputs is None or num_outputs is None:
        raise ValueError("PLA must declare .i and .o")
    if input_names is None:
        input_names = [f"x{i}" for i in range(num_inputs)]
    if output_names is None:
        output_names = [f"y{i}" for i in range(num_outputs)]
    if len(input_names) != num_inputs or len(output_names) != num_outputs:
        raise ValueError("name list lengths disagree with .i/.o")

    cubes_per_output: Dict[str, List[Cube]] = {
        name: [] for name in output_names
    }
    for input_part, output_part in rows:
        if len(input_part) != num_inputs:
            raise ValueError(
                f"input part {input_part!r} has wrong width"
            )
        if len(output_part) != num_outputs:
            raise ValueError(
                f"output part {output_part!r} has wrong width"
            )
        literals = []
        for i, ch in enumerate(input_part):
            if ch == "1":
                literals.append((i, True))
            elif ch == "0":
                literals.append((i, False))
            elif ch not in "-2":
                raise ValueError(f"bad input character {ch!r}")
        cube = Cube.from_literals(literals)
        for j, ch in enumerate(output_part):
            if ch == "1":
                cubes_per_output[output_names[j]].append(cube)
            elif ch not in "0~":
                raise ValueError(f"bad output character {ch!r}")

    covers = {
        name: Cover(num_inputs, cubes)
        for name, cubes in cubes_per_output.items()
    }
    return Pla(input_names, output_names, covers)


def write_pla(pla: Pla, stream: TextIO) -> None:
    """Write a PLA; shared cubes are merged into multi-output rows."""
    num_inputs = len(pla.input_names)
    num_outputs = len(pla.output_names)
    stream.write(f".i {num_inputs}\n")
    stream.write(f".o {num_outputs}\n")
    stream.write(".ilb " + " ".join(pla.input_names) + "\n")
    stream.write(".ob " + " ".join(pla.output_names) + "\n")

    # Group identical cubes across outputs.
    by_cube: Dict[Cube, List[int]] = {}
    for j, name in enumerate(pla.output_names):
        for cube in pla.covers[name].cubes:
            by_cube.setdefault(cube, []).append(j)
    stream.write(f".p {len(by_cube)}\n")
    for cube, outputs in by_cube.items():
        row = []
        for i in range(num_inputs):
            phase = cube.phase(i)
            row.append(
                "-" if phase is None else ("1" if phase else "0")
            )
        out = ["0"] * num_outputs
        for j in outputs:
            out[j] = "1"
        stream.write("".join(row) + " " + "".join(out) + "\n")
    stream.write(".e\n")


def cover_to_pla(
    cover: Cover, names: Optional[List[str]] = None, output: str = "f"
) -> Pla:
    """Wrap a single cover as a one-output PLA."""
    if names is None:
        names = [f"x{i}" for i in range(cover.num_vars)]
    return Pla(list(names), [output], {output: cover})


def to_pla_str(pla: Pla) -> str:
    """Render a PLA as text."""
    buffer = io.StringIO()
    write_pla(pla, buffer)
    return buffer.getvalue()
