"""Covers: ordered collections of cubes denoting a sum-of-products.

A :class:`Cover` is a function over ``num_vars`` variables given as the
OR of its cubes.  Covers are immutable; all operations return new
covers.  Cube order is preserved (and deterministic), which matters for
reproducible experiment tables.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.twolevel.cube import Cube


class Cover:
    """An immutable sum-of-products over ``num_vars`` variables."""

    __slots__ = ("num_vars", "cubes")

    def __init__(self, num_vars: int, cubes: Iterable[Cube] = ()):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        cubes = tuple(cubes)
        limit = (1 << num_vars) - 1
        for cube in cubes:
            if cube.support() & ~limit:
                raise ValueError(
                    f"cube {cube!r} mentions variables beyond num_vars={num_vars}"
                )
        self.cubes = cubes

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def zero(num_vars: int) -> "Cover":
        """The constant-0 cover (no cubes)."""
        return Cover(num_vars, ())

    @staticmethod
    def one(num_vars: int) -> "Cover":
        """The constant-1 cover (single universal cube)."""
        return Cover(num_vars, (Cube.full(),))

    @staticmethod
    def from_minterms(minterms: Iterable[int], num_vars: int) -> "Cover":
        return Cover(
            num_vars, (Cube.from_minterm(m, num_vars) for m in sorted(set(minterms)))
        )

    @staticmethod
    def parse(text: str, names: Sequence[str]) -> "Cover":
        """Parse ``ab' + cd + e`` style text.  ``0`` parses to zero."""
        text = text.strip()
        num_vars = len(names)
        if text in ("", "0"):
            return Cover.zero(num_vars)
        cubes = [Cube.parse(term, names) for term in text.split("+")]
        return Cover(num_vars, cubes)

    # ------------------------------------------------------------------
    # Basic queries
    # ------------------------------------------------------------------
    def is_zero(self) -> bool:
        return not self.cubes

    def is_one_cube(self) -> bool:
        return any(c.is_full() for c in self.cubes)

    def num_cubes(self) -> int:
        return len(self.cubes)

    def num_literals(self) -> int:
        """Literal count of the SOP form (not factored form)."""
        return sum(c.num_literals() for c in self.cubes)

    def support(self) -> int:
        sup = 0
        for cube in self.cubes:
            sup |= cube.support()
        return sup

    def support_vars(self) -> List[int]:
        sup = self.support()
        return [v for v in range(self.num_vars) if sup >> v & 1]

    def var_phase_counts(self, var: int) -> Tuple[int, int]:
        """``(positive, negative)`` occurrence counts of *var*."""
        bit = 1 << var
        pos = sum(1 for c in self.cubes if c.pos & bit)
        neg = sum(1 for c in self.cubes if c.neg & bit)
        return pos, neg

    def is_unate_in(self, var: int) -> bool:
        pos, neg = self.var_phase_counts(var)
        return pos == 0 or neg == 0

    def is_unate(self) -> bool:
        return all(self.is_unate_in(v) for v in self.support_vars())

    def most_binate_var(self) -> Optional[int]:
        """The splitting variable URP recursions use.

        Chooses the variable appearing in the most cubes among those
        that are binate; falls back to the most frequent variable when
        the cover is unate.  Returns ``None`` for constant covers.
        """
        best_var = None
        best_key = None
        for var in self.support_vars():
            pos, neg = self.var_phase_counts(var)
            binate = pos > 0 and neg > 0
            key = (binate, pos + neg, min(pos, neg))
            if best_key is None or key > best_key:
                best_key = key
                best_var = var
        return best_var

    # ------------------------------------------------------------------
    # Algebra
    # ------------------------------------------------------------------
    def union(self, other: "Cover") -> "Cover":
        self._check_compatible(other)
        return Cover(self.num_vars, self.cubes + other.cubes)

    def with_cube(self, cube: Cube) -> "Cover":
        return Cover(self.num_vars, self.cubes + (cube,))

    def without_index(self, index: int) -> "Cover":
        return Cover(
            self.num_vars, self.cubes[:index] + self.cubes[index + 1 :]
        )

    def intersect(self, other: "Cover") -> "Cover":
        """Pairwise cube products (may produce a non-minimal cover)."""
        self._check_compatible(other)
        cubes = []
        for a in self.cubes:
            for b in other.cubes:
                product = a.intersect(b)
                if product is not None:
                    cubes.append(product)
        return Cover(self.num_vars, cubes)

    def intersect_cube(self, cube: Cube) -> "Cover":
        cubes = []
        for c in self.cubes:
            product = c.intersect(cube)
            if product is not None:
                cubes.append(product)
        return Cover(self.num_vars, cubes)

    def cofactor(self, var: int, value: bool) -> "Cover":
        cubes = []
        for c in self.cubes:
            cf = c.cofactor(var, value)
            if cf is not None:
                cubes.append(cf)
        return Cover(self.num_vars, cubes)

    def cofactor_cube(self, cube: Cube) -> "Cover":
        """Cover cofactored against a cube (Espresso's generalized step)."""
        cubes = []
        for c in self.cubes:
            cf = c.cofactor_cube(cube)
            if cf is not None:
                cubes.append(cf)
        return Cover(self.num_vars, cubes)

    def sharp_cube(self, cube: Cube) -> "Cover":
        """The sharp product ``self # cube`` (self AND NOT cube)."""
        result: List[Cube] = []
        for c in self.cubes:
            if cube.contains(c):
                continue
            if c.distance(cube) > 0:
                result.append(c)
                continue
            # c intersects cube but is not contained: split per literal.
            pos, neg = c.pos, c.neg
            for var, phase in cube.literals():
                bit = 1 << var
                if (pos | neg) & bit:
                    continue
                piece = Cube(
                    pos | (0 if phase else bit), neg | (bit if phase else 0)
                )
                result.append(piece)
                # Remaining space agrees with the cube on this literal.
                if phase:
                    pos |= bit
                else:
                    neg |= bit
        return Cover(self.num_vars, result)

    def single_cube_containment(self) -> "Cover":
        """Drop cubes contained in another single cube of the cover."""
        kept: List[Cube] = []
        # Sort by literal count so big cubes are considered first.
        order = sorted(
            range(len(self.cubes)), key=lambda i: self.cubes[i].num_literals()
        )
        chosen: List[Cube] = []
        for i in order:
            cube = self.cubes[i]
            if any(other.contains(cube) for other in chosen):
                continue
            chosen.append(cube)
        chosen_set = set(chosen)
        for cube in self.cubes:  # preserve original ordering
            if cube in chosen_set:
                kept.append(cube)
                chosen_set.discard(cube)
        return Cover(self.num_vars, kept)

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: int) -> bool:
        return any(c.evaluate(assignment) for c in self.cubes)

    def truth_mask(self) -> int:
        """On-set as a 2**num_vars-bit mask.  Only for small num_vars."""
        if self.num_vars > 20:
            raise ValueError("truth_mask is only for small covers")
        mask = 0
        for cube in self.cubes:
            mask |= cube.truth_mask(self.num_vars)
        return mask

    def minterms(self) -> Iterator[int]:
        seen = set()
        for cube in self.cubes:
            for m in cube.minterms(self.num_vars):
                if m not in seen:
                    seen.add(m)
                    yield m

    def equivalent(self, other: "Cover") -> bool:
        """Semantic equivalence (uses URP containment both ways)."""
        from repro.twolevel.tautology import cover_contains_cover

        self._check_compatible(other)
        return cover_contains_cover(self, other) and cover_contains_cover(
            other, self
        )

    # ------------------------------------------------------------------
    # Variable plumbing
    # ------------------------------------------------------------------
    def remap(self, var_map: Sequence[int], new_num_vars: int) -> "Cover":
        """Rename variable ``i`` to ``var_map[i]``."""
        cubes = []
        for cube in self.cubes:
            literals = [(var_map[v], phase) for v, phase in cube.literals()]
            cubes.append(Cube.from_literals(literals))
        return Cover(new_num_vars, cubes)

    def extended(self, new_num_vars: int) -> "Cover":
        """Same cubes over a wider variable space."""
        if new_num_vars < self.num_vars:
            raise ValueError("cannot shrink the variable space")
        return Cover(new_num_vars, self.cubes)

    # ------------------------------------------------------------------
    # Text I/O
    # ------------------------------------------------------------------
    def to_str(self, names: Optional[Sequence[str]] = None) -> str:
        if self.is_zero():
            return "0"
        return " + ".join(c.to_str(names) for c in self.cubes)

    # ------------------------------------------------------------------
    # Dunder protocol
    # ------------------------------------------------------------------
    def __getstate__(self):
        # Explicit state so ``__slots__`` pickles under protocols 0/1
        # too (the worker-serialization contract).
        return (self.num_vars, self.cubes)

    def __setstate__(self, state) -> None:
        self.num_vars, self.cubes = state

    def __iter__(self) -> Iterator[Cube]:
        return iter(self.cubes)

    def __len__(self) -> int:
        return len(self.cubes)

    def __getitem__(self, index: int) -> Cube:
        return self.cubes[index]

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Cover)
            and self.num_vars == other.num_vars
            and self.cubes == other.cubes
        )

    def __hash__(self) -> int:
        return hash((self.num_vars, self.cubes))

    def __repr__(self) -> str:
        return f"Cover({self.num_vars}, {self.to_str()})"

    def _check_compatible(self, other: "Cover") -> None:
        if self.num_vars != other.num_vars:
            raise ValueError(
                f"covers have different variable counts: "
                f"{self.num_vars} vs {other.num_vars}"
            )
