"""repro — Boolean division and substitution via RAR.

A from-scratch Python reproduction of S.-C. Chang and D. I. Cheng,
"Efficient Boolean Division and Substitution Using Redundancy Addition
and Removing" (DAC 1998 / IEEE TCAD 18(8), 1999), together with every
substrate the paper depends on: a two-level cube algebra with an
espresso-style minimizer, a SIS-like multilevel Boolean network with
algebraic division/kernels/factoring, a gate-level circuit view with an
ATPG implication engine, a BDD package for verification, SIS-script
emulation, and a deterministic benchmark suite.

Quickstart::

    from repro import Network, BASIC, substitute_network

    net = Network("demo")
    for pi in "abcd":
        net.add_pi(pi)
    net.parse_node("g", "b + c", ["b", "c"])
    net.parse_node("f", "ab + ac + ad' + a'b'c'd", ["a", "b", "c", "d"])
    net.add_po("f"); net.add_po("g")
    stats = substitute_network(net, BASIC)
    print(net.nodes["f"].to_str(), stats.improvement())
"""

from repro.twolevel import Cube, Cover, espresso
from repro.network import (
    Network,
    Node,
    factored_literals,
    network_literals,
    networks_equivalent,
    simulate_equivalent,
)
from repro.core import (
    BASIC,
    EXTENDED,
    EXTENDED_GDC,
    SIMGUIDED,
    DivisionConfig,
    DivisionResult,
    boolean_divide,
    divide_node_pair,
    substitute_network,
    substitute_pass,
    SubstitutionStats,
)

__version__ = "0.1.0"

__all__ = [
    "Cube",
    "Cover",
    "espresso",
    "Network",
    "Node",
    "factored_literals",
    "network_literals",
    "networks_equivalent",
    "simulate_equivalent",
    "BASIC",
    "EXTENDED",
    "EXTENDED_GDC",
    "SIMGUIDED",
    "DivisionConfig",
    "DivisionResult",
    "boolean_divide",
    "divide_node_pair",
    "substitute_network",
    "substitute_pass",
    "SubstitutionStats",
    "__version__",
]
