"""Common-divisor extraction: ``gcx`` (cubes) and ``gkx`` (kernels).

Both follow SIS's greedy scheme: enumerate candidates across the whole
network, score each by the factored-literal saving it would give if
extracted as a new node, extract the best, substitute it everywhere,
and repeat until no candidate has positive value.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.algebraic import all_kernels, weak_division
from repro.network.network import Network


# ----------------------------------------------------------------------
# gcx: greedy common-cube extraction
# ----------------------------------------------------------------------
def _node_cube_in_name_space(
    node_fanins: List[str], cube: Cube
) -> Tuple[Tuple[str, bool], ...]:
    return tuple(
        sorted((node_fanins[v], p) for v, p in cube.literals())
    )


def _global_cube_candidates(
    network: Network,
) -> Dict[Tuple[Tuple[str, bool], ...], int]:
    """Count, for each candidate common cube (>=2 literals), how many
    cubes of the network it divides."""
    node_cubes: List[Tuple[Tuple[str, bool], ...]] = []
    for node in network.internal_nodes():
        if node.cover is None:
            continue
        for cube in node.cover.cubes:
            if cube.num_literals() >= 2:
                node_cubes.append(
                    _node_cube_in_name_space(node.fanins, cube)
                )
    candidates: Dict[Tuple[Tuple[str, bool], ...], set] = {}
    for i, a in enumerate(node_cubes):
        set_a = set(a)
        for j in range(i + 1, len(node_cubes)):
            common = tuple(sorted(set_a & set(node_cubes[j])))
            if len(common) >= 2:
                candidates.setdefault(common, set()).update((i, j))
    counts = {}
    for common, members in candidates.items():
        # Count all cubes the candidate divides, not just the seed pair.
        count = sum(
            1 for c in node_cubes if set(common) <= set(c)
        )
        counts[common] = count
    return counts


def _cube_value(literals: int, occurrences: int) -> int:
    """Literal saving of extracting a cube with *literals* literals
    used *occurrences* times: each use shrinks by (literals-1), and the
    new node costs *literals*."""
    return occurrences * (literals - 1) - literals


def extract_best_cube(network: Network) -> Optional[str]:
    """Extract the highest-value common cube as a new node.

    Returns the new node's name, or ``None`` when no candidate saves
    literals.
    """
    candidates = _global_cube_candidates(network)
    best = None
    for common, count in candidates.items():
        value = _cube_value(len(common), count)
        if value > 0 and (
            best is None
            or value > best[0]
            or (value == best[0] and common < best[1])
        ):
            best = (value, common)
    if best is None:
        return None
    _, common = best
    fanins = [name for name, _ in common]
    cube = Cube.from_literals(
        (i, phase) for i, (_, phase) in enumerate(common)
    )
    new_name = network.fresh_name("cx")
    network.add_node(new_name, fanins, Cover(len(fanins), [cube]))
    _substitute_cube_everywhere(network, new_name, dict(common))
    return new_name


def _substitute_cube_everywhere(
    network: Network, new_name: str, literal_map: Dict[str, bool]
) -> None:
    items = sorted(literal_map.items())
    for node in network.internal_nodes():
        if node.name == new_name or node.cover is None:
            continue
        index = {f: i for i, f in enumerate(node.fanins)}
        if any(name not in index for name, _ in items):
            continue
        matched = False
        new_fanins = list(node.fanins) + [new_name]
        y_var = len(node.fanins)
        cubes = []
        for cube in node.cover.cubes:
            hit = all(
                cube.phase(index[name]) == phase for name, phase in items
            )
            if hit:
                matched = True
                literals = [
                    (v, p)
                    for v, p in cube.literals()
                    if (node.fanins[v], p) not in items
                ] + [(y_var, True)]
                cubes.append(Cube.from_literals(literals))
            else:
                cubes.append(cube)
        if matched and new_name not in node.fanins:
            if network.nodes[new_name].is_pi or not _creates_cycle(
                network, node.name, new_name
            ):
                node.set_function(new_fanins, Cover(y_var + 1, cubes))
                node.prune_unused_fanins()


def _creates_cycle(network: Network, f_name: str, g_name: str) -> bool:
    return f_name in network.transitive_fanin(g_name) or f_name == g_name


def gcx(network: Network, max_rounds: int = 100) -> int:
    """Greedy common-cube extraction; returns nodes created."""
    created = 0
    for _ in range(max_rounds):
        if extract_best_cube(network) is None:
            break
        created += 1
    return created


# ----------------------------------------------------------------------
# gkx: greedy kernel extraction
# ----------------------------------------------------------------------
def _kernel_key(
    fanins: List[str], kernel: Cover
) -> Tuple[Tuple[Tuple[str, bool], ...], ...]:
    return tuple(
        sorted(
            _node_cube_in_name_space(fanins, cube)
            for cube in kernel.cubes
        )
    )


def _kernel_value(network: Network, key) -> Tuple[int, int]:
    """(value, uses) of extracting kernel *key* across the network."""
    kernel_lits = sum(len(cube) for cube in key)
    value = -kernel_lits
    uses = 0
    for node in network.internal_nodes():
        divisor = _kernel_in_node_space(node.fanins, key)
        if divisor is None:
            continue
        quotient, _ = weak_division(node.cover, divisor)
        if quotient.is_zero():
            continue
        uses += 1
        # Each quotient cube replaces |kernel| cubes carrying the
        # kernel literals with a single y literal.
        saved = quotient.num_cubes() * kernel_lits - quotient.num_cubes()
        value += saved
    return value, uses


def _kernel_in_node_space(fanins: List[str], key) -> Optional[Cover]:
    index = {f: i for i, f in enumerate(fanins)}
    cubes = []
    for cube_key in key:
        literals = []
        for name, phase in cube_key:
            if name not in index:
                return None
            literals.append((index[name], phase))
        cubes.append(Cube.from_literals(literals))
    return Cover(len(fanins), cubes)


def extract_best_kernel(network: Network, max_kernels_per_node: int = 30):
    """Extract the highest-value kernel as a new node (or ``None``)."""
    seen = {}
    for node in network.internal_nodes():
        if node.cover is None or node.num_cubes() < 2:
            continue
        kernels = all_kernels(node.cover)[:max_kernels_per_node]
        for kernel, _cokernel in kernels:
            if kernel.num_cubes() < 2:
                continue
            key = _kernel_key(node.fanins, kernel)
            if key not in seen:
                seen[key] = None
    best = None
    for key in seen:
        value, uses = _kernel_value(network, key)
        if uses >= 1 and value > 0:
            if best is None or value > best[0] or (
                value == best[0] and key < best[1]
            ):
                best = (value, key)
    if best is None:
        return None
    _, key = best
    names = sorted({name for cube_key in key for name, _ in cube_key})
    index = {name: i for i, name in enumerate(names)}
    cubes = [
        Cube.from_literals((index[name], phase) for name, phase in cube_key)
        for cube_key in key
    ]
    new_name = network.fresh_name("kx")
    network.add_node(new_name, names, Cover(len(names), cubes))
    _substitute_kernel_everywhere(network, new_name, key)
    return new_name


def _substitute_kernel_everywhere(network: Network, new_name: str, key) -> None:
    from repro.network.resub import _apply_substitution

    for node in list(network.internal_nodes()):
        if node.name == new_name or node.cover is None:
            continue
        if new_name in node.fanins:
            continue
        if _creates_cycle(network, node.name, new_name):
            continue
        divisor = _kernel_in_node_space(node.fanins, key)
        if divisor is None:
            continue
        quotient, remainder = weak_division(node.cover, divisor)
        if quotient.is_zero():
            continue
        _apply_substitution(
            network, node.name, new_name, False, quotient, remainder
        )


def gkx(network: Network, max_rounds: int = 100) -> int:
    """Greedy kernel extraction; returns nodes created."""
    created = 0
    for _ in range(max_rounds):
        if extract_best_kernel(network) is None:
            break
        created += 1
    return created
