"""Structural network operations: sweep and value-based eliminate."""

from __future__ import annotations

from typing import Dict, List

from repro.network.factor import factored_literals
from repro.network.network import Network


def sweep(network: Network) -> int:
    """Clean the network:

    * propagate constant nodes into their fanouts,
    * inline buffers and inverters,
    * remove dangling logic.

    Returns the number of nodes removed.
    """
    removed = 0
    changed = True
    while changed:
        changed = False
        for name in list(network.nodes):
            node = network.nodes.get(name)
            if node is None or node.is_pi or name in network.pos:
                continue
            if node.is_constant() or node.is_buffer() or node.is_inverter():
                fanouts = network.fanouts()[name]
                if not fanouts:
                    continue
                for fanout in fanouts:
                    network.substitute_function(fanout, name)
                if not network.fanouts()[name]:
                    network.remove_node(name)
                    removed += 1
                    changed = True
    removed += network.sweep_dangling()
    return removed


def node_value(network: Network, name: str) -> int:
    """SIS's eliminate *value*: the literal cost of keeping the node.

    Collapsing a node with factored-literal count ``L`` into fanouts
    that reference it ``k`` times replaces ``k`` literals with roughly
    ``k·L`` literals while deleting the node's own ``L`` literals, so
    the saving from keeping it is ``value = k·L − k − L``.  SIS
    eliminates nodes whose value is at most the threshold.
    """
    node = network.nodes[name]
    if node.is_pi:
        raise ValueError("primary inputs have no eliminate value")
    lits = factored_literals(node.cover)
    uses = 0
    for fanout_name in network.fanouts()[name]:
        pos, neg = network.nodes[fanout_name].literal_occurrences(name)
        uses += pos + neg
    return uses * lits - uses - lits


def eliminate(network: Network, threshold: int = 0, max_fanin: int = 64) -> int:
    """Collapse every internal node whose value is <= *threshold*.

    Primary outputs are kept.  ``eliminate 0`` (the paper's Script A
    first step) collapses single-fanout nodes into their fanout to
    build complex gates; negative thresholds are stricter, large ones
    approach full collapsing.  Returns the number of nodes eliminated.
    *max_fanin* guards against collapse blow-up on wide cones.
    """
    eliminated = 0
    changed = True
    while changed:
        changed = False
        for name in network.topo_order():
            node = network.nodes.get(name)
            if node is None or node.is_pi or name in network.pos:
                continue
            fanouts = network.fanouts()[name]
            if not fanouts:
                continue
            if node_value(network, name) > threshold:
                continue
            if _collapse_too_wide(network, name, fanouts, max_fanin):
                continue
            network.collapse_into_fanouts(name)
            eliminated += 1
            changed = True
    network.sweep_dangling()
    return eliminated


def _collapse_too_wide(
    network: Network, name: str, fanouts: List[str], max_fanin: int
) -> bool:
    node = network.nodes[name]
    for fanout_name in fanouts:
        fanout = network.nodes[fanout_name]
        merged = set(fanout.fanins) - {name} | set(node.fanins)
        if len(merged) > max_fanin:
            return True
        # Also bound the cube blow-up of substituting an SOP in.
        estimated = fanout.num_cubes() * max(node.num_cubes(), 1)
        if estimated > 4096:
            return True
    return False


def propagate_constants(network: Network) -> int:
    """Fold constant node values into fanouts (subset of sweep)."""
    folded = 0
    for name in network.topo_order():
        node = network.nodes.get(name)
        if node is None or node.is_pi:
            continue
        if node.cover is None:
            continue
        value = node.constant_value()
        if value is None:
            continue
        for fanout in network.fanouts()[name]:
            network.substitute_function(fanout, name)
            folded += 1
    network.sweep_dangling()
    return folded


def network_stats(network: Network) -> Dict[str, int]:
    """A metrics snapshot used by the experiment harness."""
    from repro.network.factor import network_literals

    return {
        "pis": len(network.pis),
        "pos": len(network.pos),
        "nodes": len(network.internal_nodes()),
        "cubes": network.num_cubes(),
        "sop_literals": network.sop_literals(),
        "literals": network_literals(network),
        "depth": network.depth(),
    }


def collapse_network(network: Network, max_pis: int = 20) -> int:
    """Collapse every PO cone to a single two-level node over the PIs.

    The SIS ``collapse`` command.  Intermediate nodes are inlined
    bottom-up; non-PO internal nodes disappear.  Returns the number of
    nodes eliminated.  Guarded by *max_pis* (two-level covers over
    many inputs explode).
    """
    if len(network.pis) > max_pis:
        raise ValueError(
            f"refusing to collapse a network with {len(network.pis)} PIs"
        )
    eliminated = 0
    changed = True
    while changed:
        changed = False
        for name in network.topo_order():
            node = network.nodes.get(name)
            if node is None or node.is_pi:
                continue
            if name in network.pos:
                continue
            fanouts = network.fanouts()[name]
            if not fanouts:
                continue
            network.collapse_into_fanouts(name)
            eliminated += 1
            changed = True
            break  # topo order is stale after a collapse
    network.sweep_dangling()
    # Inline any remaining internal-node references between POs.
    for po in list(network.pos):
        node = network.nodes[po]
        while any(
            not network.nodes[f].is_pi for f in node.fanins
        ):
            for fanin in list(node.fanins):
                if not network.nodes[fanin].is_pi:
                    network.substitute_function(po, fanin)
                    break
    network.sweep_dangling()
    return eliminated
