"""Functional verification of networks.

Three independent mechanisms:

* :func:`simulate_equivalent` — fast bit-parallel random simulation;
  used inside optimization passes as a cheap sanity screen.
* :func:`networks_equivalent` — exact equivalence by building ROBDDs of
  every primary-output cone over the primary inputs; used by the test
  suite as the oracle for every rewrite.
* :func:`exact_equivalent` — the backend dispatcher: BDDs for small
  input counts, the SAT miter (:mod:`repro.sat`) above
  :data:`SAT_PI_THRESHOLD`, selectable through
  ``DivisionConfig.verify_backend``.  This is what lifts the ~16-input
  wall on ``--verify-commits`` spot checks and final verification.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional

from repro.bdd import BddManager
from repro.network.network import Network


def network_output_bdds(
    network: Network,
    pi_order: Optional[List[str]] = None,
    manager: Optional[BddManager] = None,
) -> Dict[str, int]:
    """BDDs of each primary output over the primary inputs.

    *pi_order* fixes the manager's variable ordering; it must cover all
    PIs of the network (extra names are allowed so two networks with
    different PI sets can share an ordering).  Pass the same *manager*
    for two networks to make the returned node ids comparable —
    hash-consing only canonicalizes within one manager.
    """
    if pi_order is None:
        pi_order = sorted(network.pis)
    index = {name: i for i, name in enumerate(pi_order)}
    missing = [pi for pi in network.pis if pi not in index]
    if missing:
        raise ValueError(f"pi_order is missing inputs: {missing}")
    if manager is None:
        manager = BddManager(len(pi_order))
    elif manager.num_vars < len(pi_order):
        raise ValueError("shared manager has too few variables")

    values: Dict[str, int] = {}
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            values[name] = manager.var(index[name])
            continue
        fanin_bdds = [values[f] for f in node.fanins]
        cube_bdds = []
        for cube in node.cover.cubes:
            term = 1  # BDD_ONE
            for var, phase in cube.literals():
                operand = fanin_bdds[var]
                if not phase:
                    operand = manager.not_(operand)
                term = manager.and_(term, operand)
                if term == 0:
                    break
            cube_bdds.append(term)
        values[name] = manager.or_many(cube_bdds)
    return {po: values[po] for po in network.pos}


def networks_equivalent(a: Network, b: Network) -> bool:
    """Exact combinational equivalence (same PO names, same PI names)."""
    if sorted(a.pos) != sorted(b.pos):
        return False
    pi_order = sorted(set(a.pis) | set(b.pis))
    manager = BddManager(len(pi_order))
    bdds_a = network_output_bdds(a, pi_order, manager)
    bdds_b = network_output_bdds(b, pi_order, manager)
    return all(bdds_a[po] == bdds_b[po] for po in a.pos)


#: PI count above which ``backend="auto"`` stops building BDD cones
#: and hands the miter to the SAT engine instead.  Mirrors
#: ``DivisionConfig.sat_pi_threshold``; callers with a config pass its
#: value through.
SAT_PI_THRESHOLD = 16


def exact_equivalent(
    a: Network,
    b: Network,
    backend: str = "auto",
    sat_pi_threshold: int = SAT_PI_THRESHOLD,
    conflict_budget: Optional[int] = None,
    tracer=None,
) -> bool:
    """Exact combinational equivalence through the selected backend.

    ``backend="bdd"`` forces :func:`networks_equivalent`;
    ``backend="sat"`` forces the CNF miter; ``"auto"`` uses BDDs up to
    *sat_pi_threshold* primary inputs (where cones are cheap and the
    answer is instant) and SAT above.  A SAT solve that exhausts its
    conflict budget (``complete=False``) falls back to a wide random
    screen — the same degradation the pre-SAT code applied beyond 24
    inputs — so this function always terminates with a verdict; only
    an exhausted-budget path is probabilistic, and the span/counters
    record when that happened.
    """
    if backend not in ("auto", "bdd", "sat"):
        raise ValueError(f"unknown verify backend {backend!r}")
    n_pis = len(set(a.pis) | set(b.pis))
    if backend == "bdd" or (backend == "auto" and n_pis <= sat_pi_threshold):
        return networks_equivalent(a, b)
    from repro.sat.check import DEFAULT_CONFLICT_BUDGET, sat_equivalent

    if conflict_budget is None:
        conflict_budget = DEFAULT_CONFLICT_BUDGET
    verdict = sat_equivalent(
        a, b, conflict_budget=conflict_budget, tracer=tracer
    )
    if verdict.complete:
        return bool(verdict.verdict)
    return simulate_equivalent(a, b, patterns=2048)


def simulate_equivalent(
    a: Network,
    b: Network,
    patterns: int = 256,
    seed: int = 0,
    rng: Optional[random.Random] = None,
) -> bool:
    """Random-pattern screen: False proves inequivalence; True is only
    probabilistic evidence of equivalence."""
    if sorted(a.pos) != sorted(b.pos):
        return False
    if sorted(a.pis) != sorted(b.pis):
        return False
    if rng is None:
        rng = random.Random(seed)
    stimulus = {
        pi: rng.getrandbits(patterns) for pi in a.pis
    }
    values_a = a.simulate(stimulus, width=patterns)
    values_b = b.simulate(stimulus, width=patterns)
    return all(values_a[po] == values_b[po] for po in a.pos)


def simulate_equivalent_prescreened(
    reference: Network,
    network: Network,
    sim=None,
    patterns: int = 256,
    seed: int = 0,
) -> bool:
    """:func:`simulate_equivalent` with a maintained-signature pre-pass.

    *sim* is an up-to-date
    :class:`~repro.sim.signature.SignatureSimulator` over *network*
    (or ``None``).  Its primary-output signatures were baselined before
    optimization started, so a mismatch now is a *proof* that some
    rewrite changed the network's function on a sampled pattern — the
    expensive two-network re-simulation can be skipped.  Agreement
    proves nothing and falls through to the full screen.
    """
    if sim is not None and not sim.po_signatures_clean():
        return False
    return simulate_equivalent(
        reference, network, patterns=patterns, seed=seed
    )
