"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational subset used by MCNC-style benchmarks:
``.model``, ``.inputs``, ``.outputs``, ``.names`` with PLA-style cover
rows, and ``.end``.  Latches and subcircuits are out of scope (the
paper's experiments are combinational).
"""

from __future__ import annotations

import io
from typing import Iterable, Iterator, List, Optional, TextIO, Tuple, Union

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.network import Network


class BlifParseError(ValueError):
    """Malformed BLIF, located at a file and line.

    Subclasses :class:`ValueError` so existing ``except ValueError``
    handlers keep working; the message is prefixed ``path:line:`` (the
    line is the *physical* line where the offending construct starts,
    accounting for ``\\`` continuations) and the raw ``path``/``line``
    ride along as attributes for programmatic use.
    """

    def __init__(
        self,
        message: str,
        path: Optional[str] = None,
        line: Optional[int] = None,
    ):
        location = path or "<blif>"
        if line is not None:
            location = f"{location}:{line}"
        super().__init__(f"{location}: {message}")
        self.path = path
        self.line = line


def _logical_lines(
    stream: Iterable[str], path: Optional[str]
) -> Iterator[Tuple[int, str]]:
    """Strip comments, join ``\\`` continuations, number the lines.

    Yields ``(lineno, text)`` where *lineno* is the physical line the
    logical line starts on.  A file ending inside a continuation is
    truncated input and raises :class:`BlifParseError`.
    """
    pending = ""
    start = 0
    lineno = 0
    for lineno, raw in enumerate(stream, start=1):
        line = raw.split("#", 1)[0].rstrip("\n")
        if line.endswith("\\"):
            if not pending:
                start = lineno
            pending += line[:-1] + " "
            continue
        if pending:
            line = (pending + line).strip()
            yield_at = start
        else:
            line = line.strip()
            yield_at = lineno
        pending = ""
        if line:
            yield yield_at, line
    if pending:
        raise BlifParseError(
            "file truncated inside a '\\' line continuation",
            path,
            start,
        )


def read_blif(
    source: Union[str, TextIO], path: Optional[str] = None
) -> Network:
    """Parse BLIF text (a string or a file object) into a Network.

    Malformed input raises :class:`BlifParseError` naming the file
    (*path*, defaulting to the stream's ``name`` when it has one) and
    the line of the offending construct.
    """
    if isinstance(source, str):
        source = io.StringIO(source)
    if path is None:
        path = getattr(source, "name", None)

    network = Network()
    outputs: List[Tuple[int, str]] = []
    pending_names: List[str] = []
    names_line = 0
    pending_rows: List[Tuple[int, str]] = []

    def fail(message: str, line: int) -> None:
        raise BlifParseError(message, path, line)

    def flush_names() -> None:
        if not pending_names:
            return
        *fanins, target = pending_names
        cubes = []
        is_one = False
        for row_line, row in pending_rows:
            parts = row.split()
            if len(parts) == 1:
                # Constant row: output value only.
                if fanins:
                    fail(
                        f"constant row {parts[0]!r} in a .names with "
                        f"{len(fanins)} input(s) (expected "
                        "'<pattern> <value>')",
                        row_line,
                    )
                if parts[0] == "1":
                    is_one = True
                elif parts[0] != "0":
                    fail(
                        f"bad constant row {parts[0]!r} "
                        "(expected '0' or '1')",
                        row_line,
                    )
                continue
            if len(parts) != 2:
                fail(
                    f"malformed .names row {row!r} (expected "
                    "'<pattern> <value>')",
                    row_line,
                )
            pattern, value = parts
            if value == "0":
                fail(
                    "off-set .names rows (output 0) are not supported",
                    row_line,
                )
            if value != "1":
                fail(
                    f"bad .names row output {value!r} "
                    "(expected '0' or '1')",
                    row_line,
                )
            if len(pattern) != len(fanins):
                fail(
                    f"cover row {pattern!r} has {len(pattern)} "
                    f"column(s) for {len(fanins)} input(s)",
                    row_line,
                )
            literals = []
            for i, ch in enumerate(pattern):
                if ch == "1":
                    literals.append((i, True))
                elif ch == "0":
                    literals.append((i, False))
                elif ch != "-":
                    fail(f"bad cover character {ch!r}", row_line)
            cubes.append(Cube.from_literals(literals))
        if is_one:
            cover = Cover.one(len(fanins))
        else:
            cover = Cover(len(fanins), cubes)
        for name in fanins:
            if name not in network.nodes:
                fail(
                    f".names uses {name!r} before it is defined "
                    "(forward references are not supported)",
                    names_line,
                )
        try:
            network.add_node(target, fanins, cover)
        except ValueError as exc:
            fail(str(exc), names_line)
        pending_names.clear()
        pending_rows.clear()

    for lineno, line in _logical_lines(source, path):
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            network.name = tokens[1] if len(tokens) > 1 else "model"
        elif keyword == ".inputs":
            flush_names()
            for name in tokens[1:]:
                try:
                    network.add_pi(name)
                except ValueError as exc:
                    fail(str(exc), lineno)
        elif keyword == ".outputs":
            flush_names()
            outputs.extend((lineno, name) for name in tokens[1:])
        elif keyword == ".names":
            flush_names()
            if len(tokens) < 2:
                fail(".names with no output signal", lineno)
            pending_names.extend(tokens[1:])
            names_line = lineno
        elif keyword == ".end":
            flush_names()
            break
        elif keyword.startswith("."):
            fail(f"unsupported BLIF construct {keyword!r}", lineno)
        else:
            if not pending_names:
                fail(
                    f"cover row {line!r} outside any .names block",
                    lineno,
                )
            pending_rows.append((lineno, line))
    flush_names()

    for lineno, name in outputs:
        if name not in network.nodes:
            fail(f"output {name!r} was never defined", lineno)
        network.add_po(name)
    return network


def write_blif(network: Network, stream: TextIO) -> None:
    """Write the network as BLIF."""
    stream.write(f".model {network.name}\n")
    stream.write(".inputs " + " ".join(network.pis) + "\n")
    stream.write(".outputs " + " ".join(network.pos) + "\n")
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            continue
        stream.write(".names " + " ".join(node.fanins + [name]) + "\n")
        if node.cover.is_zero():
            continue  # no rows means constant 0
        if not node.fanins:
            stream.write("1\n")
            continue
        for cube in node.cover.cubes:
            row = []
            for i in range(len(node.fanins)):
                phase = cube.phase(i)
                row.append("-" if phase is None else ("1" if phase else "0"))
            stream.write("".join(row) + " 1\n")
    stream.write(".end\n")


def to_blif_str(network: Network) -> str:
    """Render the network as a BLIF string."""
    buffer = io.StringIO()
    write_blif(network, buffer)
    return buffer.getvalue()
