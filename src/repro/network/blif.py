"""BLIF (Berkeley Logic Interchange Format) reader and writer.

Supports the combinational subset used by MCNC-style benchmarks:
``.model``, ``.inputs``, ``.outputs``, ``.names`` with PLA-style cover
rows, and ``.end``.  Latches and subcircuits are out of scope (the
paper's experiments are combinational).
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO, Union

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.network import Network


def _logical_lines(stream: Iterable[str]) -> Iterable[str]:
    """Strip comments and join ``\\`` continuations."""
    pending = ""
    for raw in stream:
        line = raw.split("#", 1)[0].rstrip("\n")
        if line.endswith("\\"):
            pending += line[:-1] + " "
            continue
        line = (pending + line).strip()
        pending = ""
        if line:
            yield line
    if pending.strip():
        yield pending.strip()


def read_blif(source: Union[str, TextIO]) -> Network:
    """Parse BLIF text (a string or a file object) into a Network."""
    if isinstance(source, str):
        source = io.StringIO(source)

    network = Network()
    outputs: List[str] = []
    pending_names: List[str] = []
    pending_rows: List[str] = []
    declared_inputs: List[str] = []

    def flush_names() -> None:
        if not pending_names:
            return
        *fanins, target = pending_names
        cubes = []
        is_one = False
        for row in pending_rows:
            parts = row.split()
            if len(parts) == 1:
                # Constant row: output value only.
                if parts[0] == "1":
                    is_one = True
                continue
            pattern, value = parts
            if value != "1":
                raise ValueError(
                    "off-set .names rows (output 0) are not supported"
                )
            literals = []
            for i, ch in enumerate(pattern):
                if ch == "1":
                    literals.append((i, True))
                elif ch == "0":
                    literals.append((i, False))
                elif ch != "-":
                    raise ValueError(f"bad cover character {ch!r}")
            cubes.append(Cube.from_literals(literals))
        if is_one:
            cover = Cover.one(len(fanins))
        else:
            cover = Cover(len(fanins), cubes)
        _ensure_declared(network, fanins)
        network.add_node(target, fanins, cover)
        pending_names.clear()
        pending_rows.clear()

    for line in _logical_lines(source):
        tokens = line.split()
        keyword = tokens[0]
        if keyword == ".model":
            network.name = tokens[1] if len(tokens) > 1 else "model"
        elif keyword == ".inputs":
            flush_names()
            for name in tokens[1:]:
                declared_inputs.append(name)
                network.add_pi(name)
        elif keyword == ".outputs":
            flush_names()
            outputs.extend(tokens[1:])
        elif keyword == ".names":
            flush_names()
            pending_names.extend(tokens[1:])
        elif keyword == ".end":
            flush_names()
            break
        elif keyword.startswith("."):
            raise ValueError(f"unsupported BLIF construct {keyword!r}")
        else:
            pending_rows.append(line)
    flush_names()

    for name in outputs:
        if name not in network.nodes:
            raise ValueError(f"output {name!r} was never defined")
        network.add_po(name)
    return network


def _ensure_declared(network: Network, names: List[str]) -> None:
    for name in names:
        if name not in network.nodes:
            raise ValueError(
                f".names uses {name!r} before it is defined "
                "(forward references are not supported)"
            )


def write_blif(network: Network, stream: TextIO) -> None:
    """Write the network as BLIF."""
    stream.write(f".model {network.name}\n")
    stream.write(".inputs " + " ".join(network.pis) + "\n")
    stream.write(".outputs " + " ".join(network.pos) + "\n")
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            continue
        stream.write(".names " + " ".join(node.fanins + [name]) + "\n")
        if node.cover.is_zero():
            continue  # no rows means constant 0
        if not node.fanins:
            stream.write("1\n")
            continue
        for cube in node.cover.cubes:
            row = []
            for i in range(len(node.fanins)):
                phase = cube.phase(i)
                row.append("-" if phase is None else ("1" if phase else "0"))
            stream.write("".join(row) + " 1\n")
    stream.write(".end\n")


def to_blif_str(network: Network) -> str:
    """Render the network as a BLIF string."""
    buffer = io.StringIO()
    write_blif(network, buffer)
    return buffer.getvalue()
