"""Algebraic resubstitution — the SIS ``resub`` baseline.

For every node pair ``(f, g)`` with compatible supports and no cycle
risk, try to weak-divide ``f`` by ``g``'s cover (and optionally by its
complement, matching SIS's ``resub -d`` behaviour of considering the
divisor in both phases).  Accept the rewrite when the factored-form
literal count of ``f`` drops.

This is intentionally *algebraic*: it is the comparison point the
paper's Tables II–V measure against.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.network.algebraic import weak_division
from repro.network.factor import factored_literals
from repro.network.network import Network


def _divisor_cover_in_f_space(
    network: Network, f_name: str, g_name: str, negate: bool
) -> Optional[Cover]:
    """Express g's cover over f's fanin variables, or None if g uses a
    variable that is not a fanin of f (algebraic division would fail)."""
    f = network.nodes[f_name]
    g = network.nodes[g_name]
    if g.cover is None:
        return None
    fanin_index = {name: i for i, name in enumerate(f.fanins)}
    if any(h not in fanin_index for h in g.fanins):
        return None
    cover = complement(g.cover) if negate else g.cover
    var_map = [fanin_index[h] for h in g.fanins]
    return cover.remap(var_map, len(f.fanins))


def try_resub_pair(
    network: Network, f_name: str, g_name: str, use_complement: bool = True
) -> bool:
    """Try substituting node *g* into node *f*.  Returns True if done."""
    f = network.nodes[f_name]
    if f.is_pi or f.cover is None or f_name == g_name:
        return False
    g = network.nodes[g_name]
    if g.is_pi or g.cover is None or g.is_constant():
        return False
    if g_name in f.fanins:
        return False
    if f_name in network.transitive_fanin(g_name):
        return False

    before = factored_literals(f.cover)
    best: Optional[Tuple[int, bool, Cover, Cover]] = None
    phases = (False, True) if use_complement else (False,)
    for negate in phases:
        divisor = _divisor_cover_in_f_space(network, f_name, g_name, negate)
        if divisor is None or divisor.is_zero():
            continue
        quotient, remainder = weak_division(f.cover, divisor)
        if quotient.is_zero():
            continue
        cost = _substituted_cost(quotient, remainder)
        if cost < before and (best is None or cost < best[0]):
            best = (cost, negate, quotient, remainder)
    if best is None:
        return False

    _, negate, quotient, remainder = best
    _apply_substitution(network, f_name, g_name, negate, quotient, remainder)
    return True


def _substituted_cost(quotient: Cover, remainder: Cover) -> int:
    """Factored literals of ``y·Q + R`` with ``y`` the new input."""
    # One literal for y per quotient use after factoring: Q is factored
    # once and multiplied by y, so the cost is 1 + lits(Q) + lits(R)
    # unless Q is the constant 1 (then just 1 + lits(R)).
    q_lits = factored_literals(quotient)
    r_lits = factored_literals(remainder)
    if quotient.is_one_cube():
        return 1 + r_lits
    return 1 + q_lits + r_lits


def _apply_substitution(
    network: Network,
    f_name: str,
    g_name: str,
    negate: bool,
    quotient: Cover,
    remainder: Cover,
) -> None:
    f = network.nodes[f_name]
    new_fanins = list(f.fanins) + [g_name]
    n = len(new_fanins)
    y = Cube.literal(n - 1, not negate)
    cubes: List[Cube] = []
    for q in quotient.cubes:
        merged = q.intersect(y)
        assert merged is not None  # y is a fresh variable
        cubes.append(merged)
    cubes.extend(remainder.cubes)
    cover = Cover(n, cubes).single_cube_containment()
    f.set_function(new_fanins, cover)
    f.prune_unused_fanins()


def resub(
    network: Network,
    use_complement: bool = True,
    max_passes: int = 4,
) -> int:
    """Algebraic resubstitution over all node pairs (SIS ``resub -d``).

    Iterates to a fixpoint (bounded by *max_passes*); returns the
    number of accepted substitutions.
    """
    accepted = 0
    for _ in range(max_passes):
        changed = False
        names = [n.name for n in network.internal_nodes()]
        for f_name in names:
            if f_name not in network.nodes:
                continue
            for g_name in names:
                if g_name == f_name or g_name not in network.nodes:
                    continue
                if f_name not in network.nodes:
                    break
                if try_resub_pair(network, f_name, g_name, use_complement):
                    accepted += 1
                    changed = True
        if not changed:
            break
    return accepted
