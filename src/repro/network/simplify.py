"""Per-node two-level simplification (SIS ``simplify``).

Runs espresso-lite on every internal node.  Optionally computes a
restricted satisfiability don't-care set from fanin pairs that share
support (the cheap subset SIS's ``simplify -m nocomp`` style flows
exploit), which is enough to mimic the quality of the scripts the
paper uses to prepare initial circuits.
"""

from __future__ import annotations

from typing import List, Optional

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.twolevel.minimize import espresso
from repro.network.network import Network


def simplify_node(
    network: Network, name: str, use_fanin_dc: bool = False
) -> bool:
    """Minimize one node's cover; returns True when it improved."""
    node = network.nodes[name]
    if node.is_pi or node.is_constant():
        return False
    dc = _fanin_dc(network, name) if use_fanin_dc else None
    minimized = espresso(node.cover, dc)
    before = (node.cover.num_cubes(), node.cover.num_literals())
    after = (minimized.num_cubes(), minimized.num_literals())
    if after < before:
        node.set_function(list(node.fanins), minimized)
        node.prune_unused_fanins()
        return True
    return False


def simplify(network: Network, use_fanin_dc: bool = False) -> int:
    """Simplify every internal node; returns how many improved."""
    improved = 0
    for name in network.topo_order():
        if not network.nodes[name].is_pi:
            if simplify_node(network, name, use_fanin_dc):
                improved += 1
    return improved


def _fanin_dc(network: Network, name: str) -> Optional[Cover]:
    """Satisfiability don't cares among fanins that are functions of
    other fanins of the same node (a cheap, safe SDC subset).

    If fanin ``g`` of node ``f`` computes ``G`` over variables that are
    themselves all fanins of ``f``, then the combinations where ``g``
    disagrees with ``G`` can never appear at ``f``'s inputs:
    ``g XOR G(other fanins)`` is a don't care for ``f``.
    """
    node = network.nodes[name]
    fanin_index = {f: i for i, f in enumerate(node.fanins)}
    n = len(node.fanins)
    dc_cubes: List[Cube] = []
    for g_name in node.fanins:
        g = network.nodes[g_name]
        if g.is_pi or g.cover is None:
            continue
        if not all(h in fanin_index for h in g.fanins):
            continue
        var_map = [fanin_index[h] for h in g.fanins]
        g_cover = g.cover.remap(var_map, n)
        g_not = complement(g.cover).remap(var_map, n)
        g_var = fanin_index[g_name]
        g_lit = Cube.literal(g_var, True)
        g_nlit = Cube.literal(g_var, False)
        # g=0 while G=1, and g=1 while G=0, are both unreachable.
        for cube in g_cover.cubes:
            merged = cube.intersect(g_nlit)
            if merged is not None:
                dc_cubes.append(merged)
        for cube in g_not.cubes:
            merged = cube.intersect(g_lit)
            if merged is not None:
                dc_cubes.append(merged)
    if not dc_cubes:
        return None
    return Cover(n, dc_cubes).single_cube_containment()
