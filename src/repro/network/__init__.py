"""Multilevel Boolean network, modelled on SIS.

A network is a DAG of named nodes, each carrying a sum-of-products
cover over its immediate fanins, plus primary inputs and outputs.  The
subpackage provides the classical technology-independent operations the
paper's experiments rely on:

* :mod:`repro.network.ops` — ``sweep`` and value-based ``eliminate``,
* :mod:`repro.network.simplify` — per-node espresso simplification,
* :mod:`repro.network.algebraic` — kernels and weak division,
* :mod:`repro.network.resub` — the SIS ``resub`` algebraic baseline,
* :mod:`repro.network.extract` — ``gcx``/``gkx`` extraction,
* :mod:`repro.network.factor` — factored-form literal counting,
* :mod:`repro.network.blif` — BLIF reader/writer,
* :mod:`repro.network.verify` — simulation and BDD equivalence.
"""

from repro.network.node import Node
from repro.network.network import Network
from repro.network.factor import factored_literals, network_literals, factor
from repro.network.verify import (
    networks_equivalent,
    simulate_equivalent,
    network_output_bdds,
)

__all__ = [
    "Node",
    "Network",
    "factored_literals",
    "network_literals",
    "factor",
    "networks_equivalent",
    "simulate_equivalent",
    "network_output_bdds",
]
