"""Network nodes: a name, an ordered fanin list, and a SOP cover.

Variable ``i`` of a node's cover refers to ``fanins[i]``.  Primary
inputs are represented by nodes with ``cover is None``.  Constant nodes
have an empty fanin list and either the zero cover or the one cover.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover


class Node:
    """One node of a Boolean network."""

    __slots__ = ("name", "fanins", "cover")

    def __init__(
        self,
        name: str,
        fanins: Sequence[str] = (),
        cover: Optional[Cover] = None,
    ):
        self.name = name
        self.fanins: List[str] = list(fanins)
        if cover is not None and cover.num_vars != len(self.fanins):
            raise ValueError(
                f"node {name}: cover over {cover.num_vars} variables but "
                f"{len(self.fanins)} fanins"
            )
        self.cover = cover

    # ------------------------------------------------------------------
    @property
    def is_pi(self) -> bool:
        return self.cover is None

    def is_constant(self) -> bool:
        return self.cover is not None and not self.fanins

    def constant_value(self) -> Optional[bool]:
        """0/1 for constant nodes, ``None`` otherwise."""
        if self.cover is None or self.fanins:
            return None
        return not self.cover.is_zero()

    def is_buffer(self) -> bool:
        """A single positive literal of a single fanin."""
        return (
            self.cover is not None
            and len(self.fanins) == 1
            and self.cover.cubes == (Cube.literal(0, True),)
        )

    def is_inverter(self) -> bool:
        return (
            self.cover is not None
            and len(self.fanins) == 1
            and self.cover.cubes == (Cube.literal(0, False),)
        )

    def num_cubes(self) -> int:
        return 0 if self.cover is None else self.cover.num_cubes()

    def sop_literals(self) -> int:
        return 0 if self.cover is None else self.cover.num_literals()

    def fanin_index(self, name: str) -> int:
        return self.fanins.index(name)

    def depends_on(self, name: str) -> bool:
        """True if *name* is a fanin actually used by the cover."""
        if self.cover is None or name not in self.fanins:
            return False
        bit = 1 << self.fanins.index(name)
        return bool(self.cover.support() & bit)

    # ------------------------------------------------------------------
    def set_function(self, fanins: Sequence[str], cover: Cover) -> None:
        """Replace the node's function in place."""
        if cover.num_vars != len(fanins):
            raise ValueError(
                f"node {self.name}: cover over {cover.num_vars} variables "
                f"but {len(fanins)} fanins"
            )
        self.fanins = list(fanins)
        self.cover = cover

    def prune_unused_fanins(self) -> None:
        """Drop fanins the cover does not mention (keeps order)."""
        if self.cover is None:
            return
        support = self.cover.support()
        keep = [i for i in range(len(self.fanins)) if support >> i & 1]
        if len(keep) == len(self.fanins):
            return
        var_map = [0] * len(self.fanins)
        for new_index, old_index in enumerate(keep):
            var_map[old_index] = new_index
        self.cover = self.cover.remap(var_map, len(keep))
        self.fanins = [self.fanins[i] for i in keep]

    def substitute_fanin_name(self, old: str, new: str) -> None:
        """Rename a fanin reference (the function is unchanged)."""
        if new in self.fanins and old in self.fanins:
            # Merge the two variables: remap old's variable onto new's.
            old_index = self.fanins.index(old)
            new_index = self.fanins.index(new)
            var_map = list(range(len(self.fanins)))
            var_map[old_index] = new_index
            n = len(self.fanins)
            cubes = []
            for cube in self.cover.cubes:
                literals = {}
                conflict = False
                for var, phase in cube.literals():
                    target = var_map[var]
                    if target in literals and literals[target] != phase:
                        conflict = True
                        break
                    literals[target] = phase
                if not conflict:
                    cubes.append(Cube.from_literals(literals.items()))
            self.cover = Cover(n, cubes)
            self.prune_unused_fanins()
            return
        self.fanins = [new if f == old else f for f in self.fanins]

    # ------------------------------------------------------------------
    def literal_occurrences(self, fanin: str) -> Tuple[int, int]:
        """``(positive, negative)`` literal counts of a fanin."""
        if self.cover is None or fanin not in self.fanins:
            return (0, 0)
        return self.cover.var_phase_counts(self.fanins.index(fanin))

    def to_str(self) -> str:
        if self.cover is None:
            return f"{self.name} = <primary input>"
        return f"{self.name} = {self.cover.to_str(self.fanins)}"

    def copy(self) -> "Node":
        return Node(self.name, list(self.fanins), self.cover)

    def __getstate__(self):
        # Explicit state so ``__slots__`` pickles under protocols 0/1
        # too (the worker-serialization contract).
        return (self.name, self.fanins, self.cover)

    def __setstate__(self, state) -> None:
        self.name, self.fanins, self.cover = state

    def __repr__(self) -> str:
        return f"Node({self.to_str()})"
