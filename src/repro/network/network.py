"""The multilevel Boolean network DAG."""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.network.node import Node


def eval_cube_packed(cube: Cube, fanin_values: Sequence[int], mask: int) -> int:
    """Bit-parallel evaluation of one cube over packed fanin values.

    *fanin_values* holds one integer per cover variable whose bit ``k``
    is that variable's value in pattern ``k``; *mask* has one bit per
    packed pattern.  The result has bit ``k`` set iff the cube is 1
    under pattern ``k``.
    """
    term = mask
    for var, phase in cube.literals():
        value = fanin_values[var]
        term &= value if phase else (mask & ~value)
        if not term:
            break
    return term


def eval_cover_packed(cover: Cover, fanin_values: Sequence[int], mask: int) -> int:
    """Bit-parallel evaluation of a SOP cover (OR of its cubes)."""
    acc = 0
    for cube in cover.cubes:
        acc |= eval_cube_packed(cube, fanin_values, mask)
        if acc == mask:
            break
    return acc


class Network:
    """A DAG of :class:`Node` objects with primary inputs and outputs.

    Nodes are stored in insertion order; all traversals are
    deterministic so experiment tables reproduce exactly.
    """

    def __init__(self, name: str = "network"):
        self.name = name
        self.nodes: Dict[str, Node] = {}
        self.pos: List[str] = []
        self._name_counter = 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_pi(self, name: str) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        node = Node(name)
        self.nodes[name] = node
        return node

    def add_node(
        self, name: str, fanins: Sequence[str], cover: Cover
    ) -> Node:
        if name in self.nodes:
            raise ValueError(f"duplicate node name {name!r}")
        for fanin in fanins:
            if fanin not in self.nodes:
                raise ValueError(
                    f"node {name!r} references unknown fanin {fanin!r}"
                )
        node = Node(name, fanins, cover)
        self.nodes[name] = node
        if self._would_cycle(node):
            del self.nodes[name]
            raise ValueError(f"adding node {name!r} would create a cycle")
        return node

    def add_po(self, name: str) -> None:
        if name not in self.nodes:
            raise ValueError(f"primary output {name!r} is not a node")
        if name not in self.pos:
            self.pos.append(name)

    def fresh_name(self, prefix: str = "n") -> str:
        while True:
            name = f"{prefix}{self._name_counter}"
            self._name_counter += 1
            if name not in self.nodes:
                return name

    def parse_node(self, name: str, expression: str, fanins: Sequence[str]) -> Node:
        """Convenience: add a node from ``a b' + c`` style text."""
        cover = Cover.parse(expression, list(fanins))
        return self.add_node(name, fanins, cover)

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def pis(self) -> List[str]:
        return [n.name for n in self.nodes.values() if n.is_pi]

    def internal_nodes(self) -> List[Node]:
        return [n for n in self.nodes.values() if not n.is_pi]

    def fanouts(self) -> Dict[str, List[str]]:
        """Map node name -> names of nodes that list it as a fanin."""
        result: Dict[str, List[str]] = {name: [] for name in self.nodes}
        for node in self.nodes.values():
            for fanin in node.fanins:
                result[fanin].append(node.name)
        return result

    def topo_order(self) -> List[str]:
        """PIs first, then internal nodes in dependency order."""
        state: Dict[str, int] = {}
        order: List[str] = []

        def visit(name: str) -> None:
            stack = [(name, iter(self.nodes[name].fanins))]
            state[name] = 1
            while stack:
                current, it = stack[-1]
                advanced = False
                for fanin in it:
                    mark = state.get(fanin, 0)
                    if mark == 1:
                        raise ValueError(
                            f"cycle through {fanin!r} in network {self.name!r}"
                        )
                    if mark == 0:
                        state[fanin] = 1
                        stack.append(
                            (fanin, iter(self.nodes[fanin].fanins))
                        )
                        advanced = True
                        break
                if not advanced:
                    state[current] = 2
                    order.append(current)
                    stack.pop()

        for name in self.nodes:
            if state.get(name, 0) == 0:
                visit(name)
        return order

    def _would_cycle(self, node: Node) -> bool:
        """Does *node* reach itself through its fanins?"""
        target = node.name
        stack = list(node.fanins)
        seen: Set[str] = set()
        while stack:
            current = stack.pop()
            if current == target:
                return True
            if current in seen:
                continue
            seen.add(current)
            stack.extend(self.nodes[current].fanins)
        return False

    def transitive_fanin(self, name: str) -> Set[str]:
        """All node names feeding *name* (not including it)."""
        result: Set[str] = set()
        stack = list(self.nodes[name].fanins)
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(self.nodes[current].fanins)
        return result

    def transitive_fanout(self, name: str) -> Set[str]:
        fanouts = self.fanouts()
        result: Set[str] = set()
        stack = list(fanouts[name])
        while stack:
            current = stack.pop()
            if current in result:
                continue
            result.add(current)
            stack.extend(fanouts[current])
        return result

    def depth(self) -> int:
        """Longest PI-to-PO path length in nodes."""
        level: Dict[str, int] = {}
        for name in self.topo_order():
            node = self.nodes[name]
            if node.is_pi:
                level[name] = 0
            else:
                level[name] = 1 + max(
                    (level[f] for f in node.fanins), default=0
                )
        return max((level[po] for po in self.pos), default=0)

    # ------------------------------------------------------------------
    # Metrics
    # ------------------------------------------------------------------
    def sop_literals(self) -> int:
        return sum(n.sop_literals() for n in self.internal_nodes())

    def num_cubes(self) -> int:
        return sum(n.num_cubes() for n in self.internal_nodes())

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Dict[str, bool]) -> Dict[str, bool]:
        """Evaluate every node under a PI assignment."""
        values: Dict[str, bool] = {}
        for name in self.topo_order():
            node = self.nodes[name]
            if node.is_pi:
                values[name] = bool(assignment[name])
            else:
                packed = 0
                for i, fanin in enumerate(node.fanins):
                    if values[fanin]:
                        packed |= 1 << i
                values[name] = node.cover.evaluate(packed)
        return values

    def simulate(
        self, patterns: Dict[str, int], width: Optional[int] = None
    ) -> Dict[str, int]:
        """Bit-parallel simulation.

        *patterns* maps each PI name to an integer whose bit ``k`` is
        the PI's value in pattern ``k``.  *width* is the number of
        packed patterns; when omitted it is inferred from the longest
        pattern (pass it explicitly if high bits may be all zero).
        Returns the packed values of every node.
        """
        if width is None:
            width = max(
                (p.bit_length() for p in patterns.values()), default=1
            )
        mask = (1 << max(width, 1)) - 1
        values: Dict[str, int] = {}
        for name in self.topo_order():
            node = self.nodes[name]
            if node.is_pi:
                values[name] = patterns[name]
                continue
            fanin_values = [values[f] for f in node.fanins]
            values[name] = eval_cover_packed(node.cover, fanin_values, mask)
        return values

    # ------------------------------------------------------------------
    # Structural edits
    # ------------------------------------------------------------------
    def remove_node(self, name: str) -> None:
        node = self.nodes[name]
        if name in self.pos:
            raise ValueError(f"cannot remove primary output {name!r}")
        fanouts = self.fanouts()[name]
        if fanouts:
            raise ValueError(
                f"cannot remove {name!r}: it drives {fanouts}"
            )
        del self.nodes[name]

    def sweep_dangling(self) -> int:
        """Remove nodes with no path to a PO.  Returns removal count."""
        useful: Set[str] = set()
        stack = list(self.pos)
        while stack:
            current = stack.pop()
            if current in useful:
                continue
            useful.add(current)
            stack.extend(self.nodes[current].fanins)
        removed = 0
        for name in list(self.nodes):
            if name not in useful and not self.nodes[name].is_pi:
                del self.nodes[name]
                removed += 1
        return removed

    def collapse_into_fanouts(self, name: str) -> None:
        """Eliminate *name* by substituting its function into fanouts."""
        node = self.nodes[name]
        if node.is_pi:
            raise ValueError("cannot collapse a primary input")
        if name in self.pos:
            raise ValueError(f"cannot collapse primary output {name!r}")
        for fanout_name in self.fanouts()[name]:
            self.substitute_function(fanout_name, name)
        self.remove_node(name)

    def substitute_function(self, target_name: str, fanin_name: str) -> None:
        """Inline *fanin_name*'s cover into *target_name*'s cover."""
        target = self.nodes[target_name]
        source = self.nodes[fanin_name]
        if source.cover is None:
            raise ValueError("cannot inline a primary input")
        if fanin_name not in target.fanins:
            return

        var = target.fanins.index(fanin_name)
        new_fanins = [f for f in target.fanins if f != fanin_name]
        for f in source.fanins:
            if f not in new_fanins:
                new_fanins.append(f)
        index = {f: i for i, f in enumerate(new_fanins)}
        n = len(new_fanins)

        # Remap the source cover and its complement into the new space.
        source_map = [index[f] for f in source.fanins]
        g = source.cover.remap(source_map, n)
        g_not = complement(source.cover).remap(source_map, n)

        old_map = [index.get(f, -1) for f in target.fanins]
        cubes: List[Cube] = []
        for cube in target.cover.cubes:
            phase = cube.phase(var)
            rest_literals = [
                (old_map[v], p)
                for v, p in cube.literals()
                if v != var
            ]
            rest = Cube.from_literals(rest_literals)
            if phase is None:
                cubes.append(rest)
                continue
            expansion = g if phase else g_not
            for g_cube in expansion.cubes:
                merged = rest.intersect(g_cube)
                if merged is not None:
                    cubes.append(merged)
        new_cover = Cover(n, cubes).single_cube_containment()
        target.set_function(new_fanins, new_cover)
        target.prune_unused_fanins()

    def replace_with_constant(self, name: str, value: bool) -> None:
        """Turn a node into a constant (fanins dropped)."""
        node = self.nodes[name]
        cover = Cover.one(0) if value else Cover.zero(0)
        node.set_function([], cover)

    # ------------------------------------------------------------------
    # Copying / rendering
    # ------------------------------------------------------------------
    def copy(self, name: Optional[str] = None) -> "Network":
        duplicate = Network(name or self.name)
        for node in self.nodes.values():
            duplicate.nodes[node.name] = node.copy()
        duplicate.pos = list(self.pos)
        # Keep fresh-name generation ahead of anything already present.
        # Reading the counter must not advance it: taking a copy (e.g.
        # the verification reference) would otherwise shift every name
        # generated afterwards in the source network.
        duplicate._name_counter = self._name_counter
        return duplicate

    def to_str(self) -> str:
        lines = [f"# network {self.name}"]
        lines.append("inputs: " + " ".join(self.pis))
        lines.append("outputs: " + " ".join(self.pos))
        for name in self.topo_order():
            node = self.nodes[name]
            if not node.is_pi:
                lines.append(node.to_str())
        return "\n".join(lines)

    def __repr__(self) -> str:
        return (
            f"Network({self.name!r}, pis={len(self.pis)}, "
            f"nodes={len(self.nodes) - len(self.pis)}, pos={len(self.pos)})"
        )
