"""SIS-style equation (.eqn) reader and writer.

The equation format prints each node as a Boolean expression —
naturally in *factored form*, which is also the paper's metric — e.g.::

    INORDER = a b c d;
    OUTORDER = f g;
    g = b + c;
    f = a * (g + !d) + !a * d * !g;

Supported operators: ``*`` / juxtaposition (AND), ``+`` (OR), ``!`` or
a trailing ``'`` (NOT), parentheses, and the constants ``0``/``1``.
The reader builds each node's SOP cover by expanding the expression
(fine at node granularity); the writer emits the factored form.
"""

from __future__ import annotations

import io
import re
from typing import List, TextIO, Tuple, Union

from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.network.factor import factored_str
from repro.network.network import Network

_TOKEN = re.compile(
    r"\s*(?:(?P<name>[A-Za-z_][A-Za-z_0-9\.\[\]]*)|(?P<op>[()!*+01;=])|(?P<post>'))"
)


def _tokenize(text: str) -> List[str]:
    tokens: List[str] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN.match(text, pos)
        if match is None:
            if text[pos:].strip():
                raise ValueError(
                    f"cannot tokenize equation at {text[pos:pos + 20]!r}"
                )
            break
        pos = match.end()
        tokens.append(match.group(0).strip())
    return [t for t in tokens if t]


class _Parser:
    """Recursive-descent parser producing covers over a name list.

    Grammar:  expr := term ('+' term)* ;
              term := factor (('*' | juxtaposition) factor)* ;
              factor := '!' factor | atom "'"* ;
              atom := name | '0' | '1' | '(' expr ')'
    """

    def __init__(self, tokens: List[str], names: List[str]):
        self.tokens = tokens
        self.position = 0
        self.names = names
        self.index = {name: i for i, name in enumerate(names)}

    def peek(self) -> Union[str, None]:
        if self.position < len(self.tokens):
            return self.tokens[self.position]
        return None

    def take(self) -> str:
        token = self.peek()
        if token is None:
            raise ValueError("unexpected end of equation")
        self.position += 1
        return token

    def parse(self) -> Cover:
        cover = self.expr()
        if self.peek() is not None:
            raise ValueError(f"trailing tokens: {self.tokens[self.position:]}")
        return cover

    def expr(self) -> Cover:
        cover = self.term()
        while self.peek() == "+":
            self.take()
            cover = cover.union(self.term()).single_cube_containment()
        return cover

    def term(self) -> Cover:
        cover = self.factor()
        while True:
            token = self.peek()
            if token == "*":
                self.take()
                cover = cover.intersect(self.factor())
            elif token is not None and token not in ("+", ")", ";", "="):
                # Juxtaposition: ab means a AND b.
                cover = cover.intersect(self.factor())
            else:
                break
            cover = cover.single_cube_containment()
        return cover

    def factor(self) -> Cover:
        token = self.peek()
        if token == "!":
            self.take()
            return complement(self.factor())
        cover = self.atom()
        while self.peek() == "'":
            self.take()
            cover = complement(cover)
        return cover

    def atom(self) -> Cover:
        token = self.take()
        n = len(self.names)
        if token == "(":
            cover = self.expr()
            closing = self.take()
            if closing != ")":
                raise ValueError(f"expected ')', found {closing!r}")
            return cover
        if token == "0":
            return Cover.zero(n)
        if token == "1":
            return Cover.one(n)
        if token in self.index:
            return Cover.parse(self.names[self.index[token]], self.names)
        raise ValueError(f"unknown signal {token!r} in equation")


def parse_expression(text: str, names: List[str]) -> Cover:
    """Parse one equation right-hand side into a cover over *names*."""
    return _Parser(_tokenize(text), names).parse()


def read_eqn(source: Union[str, TextIO]) -> Network:
    """Parse an .eqn description into a network."""
    if not isinstance(source, str):
        source = source.read()
    # Strip comments (# to end of line) and join statements.
    lines = [line.split("#", 1)[0] for line in source.splitlines()]
    statements = [
        s.strip() for s in " ".join(lines).split(";") if s.strip()
    ]
    network = Network()
    outputs: List[str] = []
    for statement in statements:
        if "=" not in statement:
            raise ValueError(f"not an assignment: {statement!r}")
        left, right = statement.split("=", 1)
        left = left.strip()
        if left == "INORDER":
            for name in right.split():
                network.add_pi(name)
            continue
        if left == "OUTORDER":
            outputs.extend(right.split())
            continue
        names = list(network.nodes)
        cover = parse_expression(right, names)
        node = network.add_node(left, names, cover)
        node.prune_unused_fanins()
    for name in outputs:
        network.add_po(name)
    return network


def write_eqn(network: Network, stream: TextIO) -> None:
    """Write the network in equation format (factored forms)."""
    stream.write("INORDER = " + " ".join(network.pis) + ";\n")
    stream.write("OUTORDER = " + " ".join(network.pos) + ";\n")
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            continue
        text = factored_str(node.cover, node.fanins)
        text = _to_eqn_operators(text)
        stream.write(f"{name} = {text};\n")


def _to_eqn_operators(text: str) -> str:
    """Convert factored-form rendering to eqn operators.

    ``a b'`` becomes ``a * !b``: postfix complements become prefix
    ``!`` and juxtaposition becomes explicit ``*``.
    """
    tokens: List[str] = []
    for raw in text.replace("(", " ( ").replace(")", " ) ").split():
        if raw == "+" or raw in "()":
            tokens.append(raw)
        elif raw.endswith("'"):
            tokens.append("!" + raw[:-1])
        else:
            tokens.append(raw)
    out: List[str] = []
    for i, token in enumerate(tokens):
        if (
            i > 0
            and token not in ("+", ")")
            and tokens[i - 1] not in ("+", "(")
        ):
            out.append("*")
        out.append(token)
    return " ".join(out)


def to_eqn_str(network: Network) -> str:
    """Render the network as an .eqn string."""
    buffer = io.StringIO()
    write_eqn(network, buffer)
    return buffer.getvalue()
