"""Structural don't-care computation (SDC/ODC) and full_simplify.

The paper's GDC configuration exploits internal don't cares through
implications; this module computes the same information *explicitly*
with BDDs, which serves three purposes:

* an independent oracle for testing the implication-based machinery
  (anything the implications deduce must be inside these sets),
* SIS's ``full_simplify``: per-node espresso against the node's
  complete local don't-care set,
* documentation of what "satisfiability" and "observability" don't
  cares mean operationally.

For a node ``n`` with fanins ``y1..yk``:

* the **satisfiability don't cares** (SDCs) are the fanin patterns
  that can never appear: ``NOT ∃x . ∧ (yi == Yi(x))``,
* the **observability don't cares** (ODCs) are the fanin patterns
  under which flipping ``n`` changes no primary output.

Both are returned as covers over the node's fanin variables.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.bdd import BDD_ONE, BDD_ZERO, BddManager
from repro.twolevel.cover import Cover
from repro.twolevel.minimize import espresso
from repro.network.network import Network


def _node_global_bdds(
    network: Network, manager: BddManager, pi_index: Dict[str, int]
) -> Dict[str, int]:
    """Global (PI-space) BDDs of every node."""
    values: Dict[str, int] = {}
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            values[name] = manager.var(pi_index[name])
            continue
        fanin_bdds = [values[f] for f in node.fanins]
        acc = BDD_ZERO
        for cube in node.cover.cubes:
            term = BDD_ONE
            for var, phase in cube.literals():
                operand = fanin_bdds[var]
                if not phase:
                    operand = manager.not_(operand)
                term = manager.and_(term, operand)
                if term == BDD_ZERO:
                    break
            acc = manager.or_(acc, term)
        values[name] = acc
    return values


class DontCareComputer:
    """Computes local don't-care sets for nodes of one network.

    The network must not change between calls; build a new computer
    after rewrites.  Intended for small/medium networks (everything
    is expressed in PI space).
    """

    def __init__(self, network: Network, max_pis: int = 24):
        if len(network.pis) > max_pis:
            raise ValueError(
                f"network has {len(network.pis)} PIs; "
                f"don't-care computation is capped at {max_pis}"
            )
        self.network = network
        pis = sorted(network.pis)
        # Layout: PI variables first, then one variable per possible
        # fanin (allocated lazily per query via composition instead —
        # we keep it simple: a dedicated manager per query space).
        self._pis = pis
        self._pi_index = {name: i for i, name in enumerate(pis)}
        self._manager = BddManager(len(pis))
        self._global = _node_global_bdds(
            network, self._manager, self._pi_index
        )

    # ------------------------------------------------------------------
    def satisfiability_dc(self, name: str) -> Cover:
        """SDC cover of node *name* over its fanin variables.

        A fanin minterm ``m`` is a don't care iff no PI assignment
        produces exactly that combination of fanin values.
        """
        node = self.network.nodes[name]
        if node.cover is None:
            raise ValueError("primary inputs have no don't cares")
        fanins = node.fanins
        manager = self._manager
        reachable_minterms: List[int] = []
        for m in range(1 << len(fanins)):
            condition = BDD_ONE
            for i, fanin in enumerate(fanins):
                g = self._global[fanin]
                if not (m >> i) & 1:
                    g = manager.not_(g)
                condition = manager.and_(condition, g)
                if condition == BDD_ZERO:
                    break
            if condition != BDD_ZERO:
                reachable_minterms.append(m)
        unreachable = [
            m
            for m in range(1 << len(fanins))
            if m not in set(reachable_minterms)
        ]
        return Cover.from_minterms(unreachable, len(fanins))

    # ------------------------------------------------------------------
    def observability_dc(self, name: str) -> Cover:
        """ODC cover of node *name* over its fanin variables.

        A fanin minterm is observability-don't-care iff, for every PI
        assignment producing it, forcing the node to 0 or to 1 yields
        identical primary outputs.
        """
        node = self.network.nodes[name]
        if node.cover is None:
            raise ValueError("primary inputs have no don't cares")
        manager = self._manager

        # Sensitivity: OR over POs of (PO with n=1) XOR (PO with n=0),
        # computed by re-evaluating the downstream cone with the node
        # replaced by a constant.
        outputs_high = self._outputs_with_node_forced(name, True)
        outputs_low = self._outputs_with_node_forced(name, False)
        sensitive = BDD_ZERO
        for po in self.network.pos:
            sensitive = manager.or_(
                sensitive,
                manager.xor(outputs_high[po], outputs_low[po]),
            )
        insensitive = manager.not_(sensitive)

        fanins = node.fanins
        odc_minterms = []
        for m in range(1 << len(fanins)):
            condition = BDD_ONE
            for i, fanin in enumerate(fanins):
                g = self._global[fanin]
                if not (m >> i) & 1:
                    g = manager.not_(g)
                condition = manager.and_(condition, g)
                if condition == BDD_ZERO:
                    break
            if condition == BDD_ZERO:
                continue  # unreachable: belongs to the SDC set instead
            if manager.implies(condition, insensitive):
                odc_minterms.append(m)
        return Cover.from_minterms(odc_minterms, len(fanins))

    def _outputs_with_node_forced(
        self, name: str, value: bool
    ) -> Dict[str, int]:
        manager = self._manager
        forced: Dict[str, int] = dict(self._global)
        forced[name] = BDD_ONE if value else BDD_ZERO
        for other in self.network.topo_order():
            node = self.network.nodes[other]
            if node.is_pi or other == name:
                continue
            if name not in self.network.transitive_fanin(other):
                continue
            fanin_bdds = [forced[f] for f in node.fanins]
            acc = BDD_ZERO
            for cube in node.cover.cubes:
                term = BDD_ONE
                for var, phase in cube.literals():
                    operand = fanin_bdds[var]
                    if not phase:
                        operand = manager.not_(operand)
                    term = manager.and_(term, operand)
                    if term == BDD_ZERO:
                        break
                acc = manager.or_(acc, term)
            forced[other] = acc
        return {po: forced[po] for po in self.network.pos}

    # ------------------------------------------------------------------
    def local_dc(self, name: str) -> Cover:
        """Full local don't-care set: SDC + ODC."""
        sdc = self.satisfiability_dc(name)
        odc = self.observability_dc(name)
        return sdc.union(odc).single_cube_containment()


def full_simplify(
    network: Network, max_fanins: int = 10, max_pis: int = 24
) -> int:
    """SIS-style ``full_simplify``: espresso each node against its
    complete local don't-care set.  Returns nodes improved."""
    if len(network.pis) > max_pis:
        return 0
    improved = 0
    for name in [n.name for n in network.internal_nodes()]:
        node = network.nodes.get(name)
        if node is None or node.cover is None or node.is_constant():
            continue
        if len(node.fanins) > max_fanins:
            continue
        computer = DontCareComputer(network, max_pis=max_pis)
        dc = computer.local_dc(name)
        minimized = espresso(node.cover, dc)
        before = (node.cover.num_cubes(), node.cover.num_literals())
        after = (minimized.num_cubes(), minimized.num_literals())
        if after < before:
            node.set_function(list(node.fanins), minimized)
            node.prune_unused_fanins()
            improved += 1
    network.sweep_dangling()
    return improved
