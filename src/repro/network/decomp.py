"""Node decomposition: factored-form, AND–OR, and bounded-fanin trees.

Counterparts of SIS's ``decomp`` and ``tech_decomp``:

* :func:`and_or_decompose` — replace every node by one node per cube
  plus a disjunction node.  This is the paper's first step ("decompose
  each node's internal sum-of-product form into two-level AND and OR
  gates") expressed as a network rewrite, after which the network has
  alternating AND/OR levels.
* :func:`factored_decompose` — turn each node's algebraic factored
  form into a tree of AND/OR nodes (SIS ``decomp -q``).
* :func:`tech_decompose` — bound every node's fanin by splitting wide
  conjunctions/disjunctions into balanced trees (SIS ``tech_decomp``).

All rewrites preserve functionality; primary-output nodes keep their
names so the network interface is unchanged.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.factor import (
    FactorConst,
    FactorLeaf,
    FactorNode,
    FactorTree,
    factor,
)
from repro.network.network import Network


def _and_cover(width: int, phases: Sequence[bool]) -> Cover:
    cube = Cube.from_literals(
        (i, phase) for i, phase in enumerate(phases)
    )
    return Cover(width, [cube])


def _or_cover(width: int, phases: Sequence[bool]) -> Cover:
    cubes = [Cube.literal(i, phase) for i, phase in enumerate(phases)]
    return Cover(width, cubes)


def and_or_decompose(network: Network) -> int:
    """Two-level AND–OR decomposition of every multi-cube node.

    Returns the number of cube nodes created.
    """
    created = 0
    for name in [n.name for n in network.internal_nodes()]:
        node = network.nodes[name]
        cover = node.cover
        if cover is None or cover.num_cubes() < 2:
            continue
        or_fanins: List[str] = []
        or_phases: List[bool] = []
        for i, cube in enumerate(cover.cubes):
            literals = list(cube.literals())
            if len(literals) == 1:
                var, phase = literals[0]
                or_fanins.append(node.fanins[var])
                or_phases.append(phase)
                continue
            cube_name = network.fresh_name(f"{name}_c")
            fanins = [node.fanins[v] for v, _ in literals]
            phases = [p for _, p in literals]
            network.add_node(
                cube_name, fanins, _and_cover(len(fanins), phases)
            )
            created += 1
            or_fanins.append(cube_name)
            or_phases.append(True)
        node.set_function(
            or_fanins, _or_cover(len(or_fanins), or_phases)
        )
    return created


def _emit_tree(
    network: Network, tree: FactorTree, fanins: Sequence[str], prefix: str
) -> Tuple[str, bool]:
    """Create nodes for a factor tree; returns (signal, phase)."""
    if isinstance(tree, FactorLeaf):
        return fanins[tree.var], tree.phase
    if isinstance(tree, FactorConst):
        name = network.fresh_name(f"{prefix}_k")
        network.add_node(
            name, [], Cover.one(0) if tree.value else Cover.zero(0)
        )
        return name, True
    child_edges = [
        _emit_tree(network, child, fanins, prefix)
        for child in tree.children
    ]
    node_name = network.fresh_name(
        f"{prefix}_{'a' if tree.kind == 'and' else 'o'}"
    )
    child_names = [s for s, _ in child_edges]
    phases = [p for _, p in child_edges]
    if tree.kind == "and":
        cover = _and_cover(len(child_names), phases)
    else:
        cover = _or_cover(len(child_names), phases)
    network.add_node(node_name, child_names, cover)
    return node_name, True


def factored_decompose(network: Network, min_literals: int = 5) -> int:
    """Rewrite each big node as the tree of its factored form.

    Nodes whose factored form has fewer than *min_literals* literals
    are left alone (decomposing them would just add buffers).
    Returns the number of nodes rewritten.
    """
    rewritten = 0
    for name in [n.name for n in network.internal_nodes()]:
        node = network.nodes[name]
        cover = node.cover
        if cover is None or node.is_constant():
            continue
        tree = factor(cover)
        if tree.literal_count() < min_literals:
            continue
        if isinstance(tree, (FactorLeaf, FactorConst)):
            continue
        fanins = list(node.fanins)
        child_edges = [
            _emit_tree(network, child, fanins, name)
            for child in tree.children
        ]
        child_names = [s for s, _ in child_edges]
        phases = [p for _, p in child_edges]
        if tree.kind == "and":
            cover = _and_cover(len(child_names), phases)
        else:
            cover = _or_cover(len(child_names), phases)
        node.set_function(child_names, cover)
        rewritten += 1
    network.sweep_dangling()
    return rewritten


def tech_decompose(network: Network, max_fanin: int = 4) -> int:
    """Bound node fanin by splitting wide AND/OR nodes into trees.

    Only pure conjunction (single-cube) and pure disjunction
    (all-single-literal-cubes) nodes are split; general nodes are
    first taken apart by :func:`and_or_decompose`.  Returns the number
    of splits performed.
    """
    if max_fanin < 2:
        raise ValueError("max_fanin must be at least 2")
    and_or_decompose(network)
    splits = 0
    work = [n.name for n in network.internal_nodes()]
    while work:
        name = work.pop()
        node = network.nodes.get(name)
        if node is None or node.cover is None:
            continue
        node.prune_unused_fanins()
        if len(node.fanins) <= max_fanin:
            continue
        kind = _gate_kind(node.cover)
        if kind is None:
            continue
        # Split off the first max_fanin inputs into a helper node.
        phases = _phases(node.cover, kind)
        head = list(zip(node.fanins, phases))[:max_fanin]
        tail = list(zip(node.fanins, phases))[max_fanin:]
        helper = network.fresh_name(f"{name}_t")
        head_names = [s for s, _ in head]
        head_phases = [p for _, p in head]
        if kind == "and":
            network.add_node(
                helper, head_names, _and_cover(len(head), head_phases)
            )
        else:
            network.add_node(
                helper, head_names, _or_cover(len(head), head_phases)
            )
        new_edges = [(helper, True)] + tail
        names = [s for s, _ in new_edges]
        new_phases = [p for _, p in new_edges]
        if kind == "and":
            node.set_function(names, _and_cover(len(names), new_phases))
        else:
            node.set_function(names, _or_cover(len(names), new_phases))
        splits += 1
        work.append(name)  # may still be too wide
    return splits


def _gate_kind(cover: Cover) -> str:
    """'and' / 'or' for pure gate covers, None otherwise.

    A pure gate must mention every variable exactly once so that the
    phase list below lines up with the fanin list positionally.
    """
    n = cover.num_vars
    if cover.num_cubes() == 1:
        cube = cover.cubes[0]
        if cube.num_literals() == n and n >= 2:
            return "and"
        return None
    if cover.num_cubes() == n and n >= 2:
        seen = set()
        for cube in cover.cubes:
            if cube.num_literals() != 1:
                return None
            (var, _), = cube.literals()
            seen.add(var)
        if len(seen) == n:
            return "or"
    return None


def _phases(cover: Cover, kind: str) -> List[bool]:
    """Phase of each variable, indexed by fanin position."""
    phases: List[bool] = [True] * cover.num_vars
    if kind == "and":
        for var, phase in cover.cubes[0].literals():
            phases[var] = phase
        return phases
    for cube in cover.cubes:
        (var, phase), = cube.literals()
        phases[var] = phase
    return phases
