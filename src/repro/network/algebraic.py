"""Algebraic (weak) division and kernel machinery.

This is the classical polynomial view of logic the paper contrasts
with: products are algebraic only when supports are disjoint, so
identities like ``a·a = a`` are invisible.  These routines power the
SIS baseline (``resub``), factoring, and kernel extraction (``gkx``).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover


def common_cube(cover: Cover) -> Cube:
    """The largest cube dividing every cube of the cover."""
    if not cover.cubes:
        return Cube.full()
    pos = neg = ~0
    for cube in cover.cubes:
        pos &= cube.pos
        neg &= cube.neg
    # Masks were intersected starting from all-ones; trim to support.
    limit = (1 << cover.num_vars) - 1
    return Cube(pos & limit, neg & limit)


def is_cube_free(cover: Cover) -> bool:
    """No literal divides every cube (and the cover is not one cube)."""
    if len(cover.cubes) <= 1:
        return False
    return common_cube(cover).is_full()


def make_cube_free(cover: Cover) -> Cover:
    """Divide out the common cube."""
    cube = common_cube(cover)
    if cube.is_full():
        return cover
    return Cover(
        cover.num_vars,
        [c.cofactor_cube(cube) for c in cover.cubes],
    )


def divide_by_literal(cover: Cover, var: int, phase: bool) -> Cover:
    """Algebraic quotient by a single literal."""
    bit = 1 << var
    cubes = []
    for cube in cover.cubes:
        mask = cube.pos if phase else cube.neg
        if mask & bit:
            cubes.append(cube.without_var(var))
    return Cover(cover.num_vars, cubes)


def weak_division(
    cover: Cover, divisor: Cover
) -> Tuple[Cover, Cover]:
    """Algebraic division: ``cover = divisor·quotient + remainder``.

    Returns ``(quotient, remainder)``; the quotient is empty when the
    division fails.  The product is kept algebraic: quotient cubes may
    not mention any variable in the divisor's support.
    """
    if divisor.is_zero():
        raise ZeroDivisionError("algebraic division by the zero cover")
    divisor_support = divisor.support()

    quotient_cubes: Optional[set] = None
    for d in divisor.cubes:
        partial = set()
        for c in cover.cubes:
            if d.contains(c):
                q = c.cofactor_cube(d)
                if q is not None and not (q.support() & divisor_support):
                    partial.add(q)
        if quotient_cubes is None:
            quotient_cubes = partial
        else:
            quotient_cubes &= partial
        if not quotient_cubes:
            break

    if not quotient_cubes:
        return Cover.zero(cover.num_vars), cover

    ordered = sorted(quotient_cubes)
    products = set()
    for q in ordered:
        for d in divisor.cubes:
            product = q.intersect(d)
            if product is not None:
                products.add(product)
    remainder = Cover(
        cover.num_vars, [c for c in cover.cubes if c not in products]
    )
    return Cover(cover.num_vars, ordered), remainder


def literal_counts(cover: Cover) -> List[Tuple[int, bool, int]]:
    """``(var, phase, occurrence_count)`` for all present literals."""
    counts = []
    for var in cover.support_vars():
        pos, neg = cover.var_phase_counts(var)
        if pos:
            counts.append((var, True, pos))
        if neg:
            counts.append((var, False, neg))
    return counts


def all_kernels(cover: Cover) -> List[Tuple[Cover, Cube]]:
    """All kernels with one co-kernel each.

    A kernel is a cube-free quotient of the cover by a cube.  The
    cover itself (made cube-free) is included when it is cube-free.
    Follows the classical recursive enumeration with literal-index
    pruning to avoid duplicate visits.
    """
    kernels: List[Tuple[Cover, Cube]] = []
    seen = set()

    literals = [
        (var, phase)
        for var in range(cover.num_vars)
        for phase in (True, False)
    ]

    def record(kernel: Cover, cokernel: Cube) -> None:
        key = frozenset(kernel.cubes)
        if key not in seen:
            seen.add(key)
            kernels.append((kernel, cokernel))

    def recurse(current: Cover, start: int, cokernel: Cube) -> None:
        for i in range(start, len(literals)):
            var, phase = literals[i]
            bit = 1 << var
            count = sum(
                1
                for c in current.cubes
                if (c.pos if phase else c.neg) & bit
            )
            if count < 2:
                continue
            quotient = divide_by_literal(current, var, phase)
            extra = common_cube(quotient)
            # Pruning: if the common cube holds a literal with smaller
            # index, this kernel was found on an earlier branch.
            skip = False
            for e_var, e_phase in extra.literals():
                if literals.index((e_var, e_phase)) < i:
                    skip = True
                    break
            if skip:
                continue
            kernel = make_cube_free(quotient)
            new_cokernel = cokernel.intersect(
                Cube.literal(var, phase)
            )
            if new_cokernel is None:
                continue
            merged = new_cokernel.intersect(extra)
            if merged is None:
                continue
            record(kernel, merged)
            recurse(kernel, i + 1, merged)

    base = make_cube_free(cover)
    if is_cube_free(base):
        record(base, common_cube(cover))
    recurse(base, 0, common_cube(cover))
    return kernels


def level0_kernels(cover: Cover) -> List[Tuple[Cover, Cube]]:
    """Kernels that themselves contain no further kernels."""
    result = []
    for kernel, cokernel in all_kernels(cover):
        inner = all_kernels(kernel)
        nontrivial = [
            k for k, _ in inner if frozenset(k.cubes) != frozenset(kernel.cubes)
        ]
        if not nontrivial:
            result.append((kernel, cokernel))
    return result


def quick_divisor(cover: Cover) -> Optional[Cover]:
    """One level-0 kernel, found greedily (SIS's QUICK_DIVISOR).

    Returns ``None`` when the cover has no kernel other than itself
    (i.e. no literal appears in two or more cubes).
    """
    current = make_cube_free(cover)
    found = False
    while True:
        best = None
        for var, phase, count in literal_counts(current):
            if count >= 2 and (best is None or count > best[2]):
                best = (var, phase, count)
        if best is None:
            return current if found else None
        var, phase, _ = best
        current = make_cube_free(divide_by_literal(current, var, phase))
        found = True
        if len(current.cubes) <= 1:
            # Degenerate: dividing left a single cube; no kernel here.
            return None
