"""Algebraic factoring and factored-form literal counting.

The paper (like SIS) reports results as *factored-form* literal counts,
so a factoring algorithm is part of the measurement substrate.  The
implementation follows QUICK_FACTOR: pull out the common cube, find a
level-0 kernel as divisor, weak-divide, and recurse on divisor,
quotient, and remainder.
"""

from __future__ import annotations

import functools
from typing import List, Optional, Sequence, Union

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.algebraic import (
    common_cube,
    make_cube_free,
    quick_divisor,
    weak_division,
)


class FactorLeaf:
    """A literal in a factored form."""

    __slots__ = ("var", "phase")

    def __init__(self, var: int, phase: bool):
        self.var = var
        self.phase = phase

    def literal_count(self) -> int:
        return 1

    def to_str(self, names: Optional[Sequence[str]] = None) -> str:
        name = names[self.var] if names is not None else f"x{self.var}"
        return name if self.phase else name + "'"


class FactorNode:
    """An AND or OR node in a factored form."""

    __slots__ = ("kind", "children")

    def __init__(self, kind: str, children: List["FactorTree"]):
        if kind not in ("and", "or"):
            raise ValueError("kind must be 'and' or 'or'")
        self.kind = kind
        self.children = children

    def literal_count(self) -> int:
        return sum(child.literal_count() for child in self.children)

    def to_str(self, names: Optional[Sequence[str]] = None) -> str:
        if self.kind == "and":
            parts = []
            for child in self.children:
                text = child.to_str(names)
                if isinstance(child, FactorNode) and child.kind == "or":
                    text = f"({text})"
                parts.append(text)
            return " ".join(parts)
        return " + ".join(child.to_str(names) for child in self.children)


class FactorConst:
    """Constant 0 or 1."""

    __slots__ = ("value",)

    def __init__(self, value: bool):
        self.value = value

    def literal_count(self) -> int:
        return 0

    def to_str(self, names: Optional[Sequence[str]] = None) -> str:
        return "1" if self.value else "0"


FactorTree = Union[FactorLeaf, FactorNode, FactorConst]


def _cube_tree(cube: Cube) -> FactorTree:
    literals = [FactorLeaf(v, p) for v, p in cube.literals()]
    if not literals:
        return FactorConst(True)
    if len(literals) == 1:
        return literals[0]
    return FactorNode("and", literals)


def _sum_of_cubes(cover: Cover) -> FactorTree:
    if not cover.cubes:
        return FactorConst(False)
    trees = [_cube_tree(c) for c in cover.cubes]
    if len(trees) == 1:
        return trees[0]
    return FactorNode("or", trees)


def factor(cover: Cover, _depth: int = 0) -> FactorTree:
    """QUICK_FACTOR-style factored form of a cover."""
    if cover.is_zero():
        return FactorConst(False)
    if cover.is_one_cube():
        return FactorConst(True)
    if _depth > 100:
        return _sum_of_cubes(cover)

    cube = common_cube(cover)
    if not cube.is_full():
        rest = factor(make_cube_free(cover), _depth + 1)
        parts: List[FactorTree] = [
            FactorLeaf(v, p) for v, p in cube.literals()
        ]
        if isinstance(rest, FactorConst):
            if not rest.value:
                return FactorConst(False)
        else:
            if isinstance(rest, FactorNode) and rest.kind == "and":
                parts.extend(rest.children)
            else:
                parts.append(rest)
        if len(parts) == 1:
            return parts[0]
        return FactorNode("and", parts)

    if len(cover.cubes) == 1:
        return _cube_tree(cover.cubes[0])

    divisor = quick_divisor(cover)
    if divisor is None:
        return _sum_of_cubes(cover)
    quotient, remainder = weak_division(cover, divisor)
    if quotient.is_zero() or quotient.num_cubes() == cover.num_cubes():
        return _sum_of_cubes(cover)

    product = FactorNode(
        "and",
        [factor(divisor, _depth + 1), factor(quotient, _depth + 1)],
    )
    if remainder.is_zero():
        return product
    rest = factor(remainder, _depth + 1)
    if isinstance(rest, FactorNode) and rest.kind == "or":
        return FactorNode("or", [product] + rest.children)
    return FactorNode("or", [product, rest])


@functools.lru_cache(maxsize=65536)
def _factored_literals_cached(cover: Cover) -> int:
    return factor(cover).literal_count()


def factored_literals(cover: Cover) -> int:
    """Factored-form literal count of a cover (0 for constants).

    Memoized: covers are immutable and hashable, and the greedy
    acceptance rule of every substitution pass recomputes this
    constantly for unchanged nodes.
    """
    return _factored_literals_cached(cover)


def network_literals(network) -> int:
    """Factored-form literal count of a whole network.

    This is the metric every experimental table in the paper reports
    ("All literal counts are in factor form").
    """
    total = 0
    for node in network.internal_nodes():
        total += factored_literals(node.cover)
    return total


def factored_str(cover: Cover, names: Optional[Sequence[str]] = None) -> str:
    """Human-readable factored form."""
    return factor(cover).to_str(names)
