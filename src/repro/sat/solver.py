"""A small CDCL SAT solver (zero-dependency, deterministic).

MiniSat's architecture reduced to what the verification backend needs:

* two-watched-literal unit propagation,
* first-UIP conflict analysis with clause learning,
* VSIDS-style variable activities (bump on conflict, geometric decay)
  with phase saving,
* geometric restarts,
* an injectable **conflict budget**: a search that exhausts it returns
  ``complete=False`` — the same three-valued contract as the D-alg's
  backtrack budget, so consumers apply the same conservative mapping
  (an unknown is never treated as a proof).

Everything is deterministic for a fixed clause list: ties in the
activity order break on variable index, and there is no randomness
anywhere, so the ``sat.*`` counters (conflicts, decisions,
propagations, learned clauses) are exact-equality regression-gate
material like ``divide_calls``.

Literals are DIMACS-style signed integers (see :mod:`repro.sat.cnf`).
"""

from __future__ import annotations

import dataclasses
import heapq
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

_ACTIVITY_DECAY = 1.0 / 0.95
_ACTIVITY_RESCALE = 1e100
_RESTART_FIRST = 100
_RESTART_GROWTH = 1.5


@dataclasses.dataclass(frozen=True)
class SolveResult:
    """Outcome of one :func:`solve_cnf` call.

    ``satisfiable`` is three-valued: ``True`` with a *model*, ``False``
    for a completed refutation, ``None`` when the conflict budget ran
    out first (then ``complete`` is False and consumers must treat the
    verdict conservatively).
    """

    satisfiable: Optional[bool]
    complete: bool
    model: Optional[Dict[int, bool]]
    conflicts: int
    decisions: int
    propagations: int
    learned: int
    restarts: int


class CdclSolver:
    """One solve over a fixed clause set; build, call :meth:`solve`."""

    def __init__(self, num_vars: int, clauses: Iterable[Sequence[int]]):
        self.num_vars = num_vars
        n = num_vars + 1
        #: 0 = unassigned, +1 = true, -1 = false (indexed by variable).
        self._assign = [0] * n
        self._level = [0] * n
        self._reason: List[Optional[List[int]]] = [None] * n
        self._saved_phase = [False] * n
        self._activity = [0.0] * n
        self._activity_inc = 1.0
        self._order: List[Tuple[float, int]] = []  # lazy max-heap
        self._trail: List[int] = []
        self._trail_lim: List[int] = []
        self._qhead = 0
        #: literal -> clauses currently watching it.
        self._watches: Dict[int, List[List[int]]] = {}
        self._unsat = False

        self.conflicts = 0
        self.decisions = 0
        self.propagations = 0
        self.learned = 0
        self.restarts = 0

        for var in range(1, n):
            heapq.heappush(self._order, (0.0, var))
        for clause in clauses:
            self._add_input_clause(clause)

    # ------------------------------------------------------------------
    # Setup
    # ------------------------------------------------------------------
    def _add_input_clause(self, literals: Sequence[int]) -> None:
        if self._unsat:
            return
        seen = set()
        clause: List[int] = []
        for lit in literals:
            if -lit in seen:
                return  # tautology: always satisfied, drop it
            if lit not in seen:
                seen.add(lit)
                clause.append(lit)
        if not clause:
            self._unsat = True
            return
        if len(clause) == 1:
            lit = clause[0]
            value = self._value(lit)
            if value < 0:
                self._unsat = True
            elif value == 0:
                self._enqueue(lit, None)
            return
        self._attach(clause)

    def _attach(self, clause: List[int]) -> None:
        for lit in clause[:2]:
            self._watches.setdefault(-lit, []).append(clause)

    # ------------------------------------------------------------------
    # Assignment primitives
    # ------------------------------------------------------------------
    def _value(self, lit: int) -> int:
        value = self._assign[abs(lit)]
        return value if lit > 0 else -value

    def _enqueue(self, lit: int, reason: Optional[List[int]]) -> None:
        var = abs(lit)
        self._assign[var] = 1 if lit > 0 else -1
        self._level[var] = len(self._trail_lim)
        self._reason[var] = reason
        self._trail.append(lit)

    def _decision_level(self) -> int:
        return len(self._trail_lim)

    def _cancel_until(self, level: int) -> None:
        if self._decision_level() <= level:
            return
        mark = self._trail_lim[level]
        for lit in reversed(self._trail[mark:]):
            var = abs(lit)
            self._saved_phase[var] = lit > 0
            self._assign[var] = 0
            self._reason[var] = None
            heapq.heappush(
                self._order, (-self._activity[var], var)
            )
        del self._trail[mark:]
        del self._trail_lim[level:]
        self._qhead = len(self._trail)

    # ------------------------------------------------------------------
    # Propagation
    # ------------------------------------------------------------------
    def _propagate(self) -> Optional[List[int]]:
        """Exhaust unit propagation; a falsified clause or ``None``."""
        while self._qhead < len(self._trail):
            lit = self._trail[self._qhead]
            self._qhead += 1
            self.propagations += 1
            watchers = self._watches.get(lit)
            if not watchers:
                continue
            kept: List[List[int]] = []
            i = 0
            try:
                while i < len(watchers):
                    clause = watchers[i]
                    i += 1
                    # Normalize: the falsified literal at position 1.
                    if clause[0] == -lit:
                        clause[0], clause[1] = clause[1], clause[0]
                    first = clause[0]
                    if self._value(first) > 0:
                        kept.append(clause)
                        continue
                    for k in range(2, len(clause)):
                        if self._value(clause[k]) >= 0:
                            clause[1], clause[k] = clause[k], clause[1]
                            self._watches.setdefault(
                                -clause[1], []
                            ).append(clause)
                            break
                    else:
                        kept.append(clause)
                        if self._value(first) < 0:
                            kept.extend(watchers[i:])
                            return clause
                        self._enqueue(first, clause)
            finally:
                self._watches[lit] = kept
        return None

    # ------------------------------------------------------------------
    # Conflict analysis (first UIP)
    # ------------------------------------------------------------------
    def _bump(self, var: int) -> None:
        self._activity[var] += self._activity_inc
        if self._activity[var] > _ACTIVITY_RESCALE:
            for v in range(1, self.num_vars + 1):
                self._activity[v] *= 1.0 / _ACTIVITY_RESCALE
            self._activity_inc *= 1.0 / _ACTIVITY_RESCALE

    def _analyze(self, conflict: List[int]) -> Tuple[List[int], int]:
        """Learn a first-UIP clause; returns (clause, backjump level).

        The asserting literal ends up at position 0 and a literal from
        the backjump level at position 1 (the two watch positions).
        """
        learnt: List[int] = []
        seen = [False] * (self.num_vars + 1)
        counter = 0
        p: Optional[int] = None
        index = len(self._trail) - 1
        current = self._decision_level()
        reason: Sequence[int] = conflict
        while True:
            start = 0 if p is None else 1
            for lit in reason[start:]:
                var = abs(lit)
                if seen[var] or self._level[var] == 0:
                    continue
                seen[var] = True
                self._bump(var)
                if self._level[var] >= current:
                    counter += 1
                else:
                    learnt.append(lit)
            while not seen[abs(self._trail[index])]:
                index -= 1
            p = self._trail[index]
            var = abs(p)
            seen[var] = False
            counter -= 1
            index -= 1
            if counter == 0:
                break
            reason = self._reason[var] or ()
        learnt.insert(0, -p)
        if len(learnt) == 1:
            return learnt, 0
        # Second watch: the deepest literal below the conflict level.
        best = max(
            range(1, len(learnt)), key=lambda i: self._level[abs(learnt[i])]
        )
        learnt[1], learnt[best] = learnt[best], learnt[1]
        return learnt, self._level[abs(learnt[1])]

    # ------------------------------------------------------------------
    # Decisions
    # ------------------------------------------------------------------
    def _decide(self) -> Optional[int]:
        while self._order:
            negact, var = heapq.heappop(self._order)
            if self._assign[var] != 0:
                continue
            if -negact != self._activity[var]:
                # Stale heap entry; re-queue at the current activity.
                heapq.heappush(
                    self._order, (-self._activity[var], var)
                )
                continue
            return var if self._saved_phase[var] else -var
        for var in range(1, self.num_vars + 1):
            if self._assign[var] == 0:
                return var if self._saved_phase[var] else -var
        return None

    # ------------------------------------------------------------------
    # Main loop
    # ------------------------------------------------------------------
    def solve(
        self, conflict_budget: Optional[int] = None
    ) -> SolveResult:
        if self._unsat:
            return self._result(False, complete=True)
        if self._propagate() is not None:
            return self._result(False, complete=True)
        restart_limit = _RESTART_FIRST
        while True:
            conflict = self._propagate()
            if conflict is not None:
                self.conflicts += 1
                if self._decision_level() == 0:
                    return self._result(False, complete=True)
                learnt, backjump = self._analyze(conflict)
                self._cancel_until(backjump)
                if len(learnt) > 1:
                    self._attach(learnt)
                    self.learned += 1
                self._enqueue(
                    learnt[0], learnt if len(learnt) > 1 else None
                )
                self._activity_inc *= _ACTIVITY_DECAY
                if (
                    conflict_budget is not None
                    and self.conflicts >= conflict_budget
                ):
                    return self._result(None, complete=False)
                if self.conflicts >= restart_limit:
                    restart_limit = int(
                        restart_limit * _RESTART_GROWTH
                    ) + self.conflicts
                    self.restarts += 1
                    self._cancel_until(0)
                continue
            lit = self._decide()
            if lit is None:
                return self._result(True, complete=True)
            self.decisions += 1
            self._trail_lim.append(len(self._trail))
            self._enqueue(lit, None)

    def _result(
        self, satisfiable: Optional[bool], complete: bool
    ) -> SolveResult:
        model = None
        if satisfiable:
            model = {
                var: self._assign[var] > 0
                for var in range(1, self.num_vars + 1)
            }
        return SolveResult(
            satisfiable=satisfiable,
            complete=complete,
            model=model,
            conflicts=self.conflicts,
            decisions=self.decisions,
            propagations=self.propagations,
            learned=self.learned,
            restarts=self.restarts,
        )


def solve_cnf(cnf, conflict_budget: Optional[int] = None) -> SolveResult:
    """Solve a :class:`~repro.sat.cnf.Cnf` (or anything with
    ``num_vars`` and ``clauses``) under an optional conflict budget."""
    solver = CdclSolver(cnf.num_vars, cnf.clauses)
    return solver.solve(conflict_budget=conflict_budget)
