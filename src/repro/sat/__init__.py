"""SAT backend: Tseitin CNF encoding and a small CDCL solver.

The exact-reasoning storey above the BDD and exhaustive-simulation
oracles: equivalence checking and stuck-at untestability that scale
past the ~16-input wall (see DESIGN.md §12).  Zero dependencies, like
the rest of the repo.
"""

from repro.sat.cnf import (
    Cnf,
    CnfStats,
    Miter,
    build_miter,
    encode_circuit,
    encode_network,
)
from repro.sat.solver import CdclSolver, SolveResult, solve_cnf
from repro.sat.check import (
    DEFAULT_CONFLICT_BUDGET,
    SatVerdict,
    sat_equivalent,
    sat_wire_redundant_exact,
    sat_wire_untestable,
)

__all__ = [
    "Cnf",
    "CnfStats",
    "Miter",
    "build_miter",
    "encode_circuit",
    "encode_network",
    "CdclSolver",
    "SolveResult",
    "solve_cnf",
    "DEFAULT_CONFLICT_BUDGET",
    "SatVerdict",
    "sat_equivalent",
    "sat_wire_redundant_exact",
    "sat_wire_untestable",
]
