"""SAT-backed equivalence and untestability checks.

The two user-facing oracles of the SAT subsystem:

* :func:`sat_equivalent` — combinational equivalence of two
  :class:`~repro.network.network.Network` objects through a CNF miter
  (UNSAT proves equivalence; SAT yields a counterexample input
  assignment).
* :func:`sat_wire_untestable` — stuck-at-fault untestability through
  the same miter the D-algorithm searches
  (:func:`repro.atpg.dalg.build_miter`), Tseitin-encoded and handed to
  CDCL instead of branch-and-propagate.

Both return a :class:`SatVerdict` whose ``verdict`` is three-valued:
``True`` / ``False`` when the solve completed, ``None`` when the
conflict budget ran out — mirroring
:func:`repro.atpg.dalg.prove_redundant`, and carrying the same
conservative-consumer contract (an exhausted proof is *never* treated
as a proof; see :func:`sat_wire_redundant_exact`).

An enabled tracer records each call as one ``sat_solve`` span with the
CNF size and the solver counters, so ``repro trace report`` and the
profile rollup see the backend.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set

from repro.network.network import Network
from repro.sat.cnf import Cnf, CnfStats, build_miter, encode_circuit
from repro.sat.solver import SolveResult, solve_cnf

#: Default conflict budget for one equivalence/untestability solve.
#: Far above what the corpus needs (typical miters close in tens of
#: conflicts); the point is to bound pathological instances, report
#: ``complete=False``, and let the caller fall back conservatively.
DEFAULT_CONFLICT_BUDGET = 100_000


@dataclasses.dataclass(frozen=True)
class SatVerdict:
    """One SAT-backed check: three-valued verdict plus evidence.

    ``verdict`` answers the caller's question (*equivalent?* /
    *untestable?*); ``counterexample`` is a primary-input assignment
    witnessing a ``False`` verdict (a distinguishing input for
    equivalence, a test vector for untestability).  The solver
    counters and CNF stats ride along for spans, metrics, and the
    regression gate.
    """

    verdict: Optional[bool]
    complete: bool
    counterexample: Optional[Dict[str, bool]]
    cnf: CnfStats
    conflicts: int
    decisions: int
    propagations: int
    learned: int
    restarts: int

    @staticmethod
    def _from_solve(
        question_answer: Optional[bool],
        result: SolveResult,
        stats: CnfStats,
        counterexample: Optional[Dict[str, bool]],
    ) -> "SatVerdict":
        return SatVerdict(
            verdict=question_answer,
            complete=result.complete,
            counterexample=counterexample,
            cnf=stats,
            conflicts=result.conflicts,
            decisions=result.decisions,
            propagations=result.propagations,
            learned=result.learned,
            restarts=result.restarts,
        )


def _solve_span(tracer, check: str, cnf: Cnf, solve, **attrs):
    """Run *solve* under one ``sat_solve`` span; returns its result."""
    from repro.obs.tracer import as_tracer

    stats = cnf.stats()
    with as_tracer(tracer).span(
        "sat_solve",
        check=check,
        vars=stats.variables,
        clauses=stats.clauses,
        **attrs,
    ) as span:
        result = solve()
        span.annotate(
            sat=result.satisfiable,
            complete=result.complete,
            conflicts=result.conflicts,
            decisions=result.decisions,
            propagations=result.propagations,
            learned=result.learned,
        )
    return result, stats


def sat_equivalent(
    a: Network,
    b: Network,
    conflict_budget: Optional[int] = DEFAULT_CONFLICT_BUDGET,
    tracer=None,
) -> SatVerdict:
    """Exact combinational equivalence through a CNF miter.

    ``verdict=True`` (UNSAT miter) proves the networks agree on every
    input; ``verdict=False`` carries a counterexample assignment over
    the shared PI union; ``verdict=None`` means the conflict budget
    ran out (``complete=False``) and the caller must fall back.
    Networks with different PO name sets are trivially inequivalent
    (same convention as the BDD oracle), without a counterexample.
    """
    if sorted(a.pos) != sorted(b.pos):
        return SatVerdict(
            verdict=False,
            complete=True,
            counterexample=None,
            cnf=CnfStats(0, 0, 0),
            conflicts=0,
            decisions=0,
            propagations=0,
            learned=0,
            restarts=0,
        )
    miter = build_miter(a, b)
    result, stats = _solve_span(
        tracer,
        "equivalence",
        miter.cnf,
        lambda: solve_cnf(miter.cnf, conflict_budget=conflict_budget),
        pis=len(miter.pi_vars),
        pos=len(miter.diff_vars),
    )
    if not result.complete:
        return SatVerdict._from_solve(None, result, stats, None)
    if result.satisfiable:
        model = result.model or {}
        counterexample = {
            pi: model.get(var, False)
            for pi, var in miter.pi_vars.items()
        }
        return SatVerdict._from_solve(False, result, stats, counterexample)
    return SatVerdict._from_solve(True, result, stats, None)


def sat_wire_untestable(
    circuit,
    fault,
    observables: Optional[Set[str]] = None,
    conflict_budget: Optional[int] = DEFAULT_CONFLICT_BUDGET,
    tracer=None,
) -> SatVerdict:
    """Stuck-at-fault untestability via a CNF-encoded fault miter.

    Builds the exact miter the D-algorithm searches (good circuit,
    faulty copy, XOR/OR comparator over the observables), asserts its
    difference output, and asks CDCL: UNSAT means no input ever
    exposes the fault (``verdict=True``, the wire is untestable /
    redundant); SAT returns the test vector as the counterexample;
    an exhausted budget returns ``verdict=None``.
    """
    from repro.atpg.dalg import build_miter as build_fault_miter
    from repro.atpg.dalg import miter_output

    miter_circuit = build_fault_miter(circuit, fault, observables)
    cnf = Cnf()
    values = encode_circuit(cnf, miter_circuit)
    cnf.add_clause((values[miter_output()],))
    result, stats = _solve_span(
        tracer,
        "untestable",
        cnf,
        lambda: solve_cnf(cnf, conflict_budget=conflict_budget),
        gate=fault.gate,
        input=fault.input_index,
        stuck=fault.stuck_value,
    )
    if not result.complete:
        return SatVerdict._from_solve(None, result, stats, None)
    if result.satisfiable:
        model = result.model or {}
        test = {
            pi: model.get(values[pi], False)
            for pi in miter_circuit.pis()
        }
        return SatVerdict._from_solve(False, result, stats, test)
    return SatVerdict._from_solve(True, result, stats, None)


def sat_wire_redundant_exact(
    circuit,
    fault,
    observables: Optional[Set[str]] = None,
    conflict_budget: Optional[int] = DEFAULT_CONFLICT_BUDGET,
    tracer=None,
) -> bool:
    """Boolean convenience mirroring
    :func:`repro.atpg.redundancy.wire_is_redundant_exact`: an
    out-of-budget ``None`` verdict maps to False, so redundancy
    removal never deletes a wire on an exhausted proof."""
    verdict = sat_wire_untestable(
        circuit,
        fault,
        observables,
        conflict_budget=conflict_budget,
        tracer=tracer,
    )
    return verdict.verdict is True
