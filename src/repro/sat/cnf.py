"""Tseitin CNF encoding of networks, circuits, and equivalence miters.

The SAT backend reasons about the same two object kinds the rest of
the engine manipulates:

* :class:`~repro.network.network.Network` nodes carry SOP covers; each
  cover is encoded cube by cube (one definition variable per
  multi-literal cube, then the node variable is the OR of its cube
  variables) so the encoding is linear in the cover's literal count.
* :class:`~repro.circuit.circuit.Circuit` gates are plain AND/OR with
  phased input edges — the structural view ATPG works on — and encode
  directly.

Both encoders produce *equivalence* (two-sided) Tseitin definitions:
an assignment satisfies the clauses iff every defined variable equals
the function of its fanins.  That is what the round-trip tests assert,
and it is what makes the miter construction sound in both directions
(SAT ⇒ true counterexample, UNSAT ⇒ equivalence).

Literals are DIMACS-style signed integers: variable ``v`` is the
positive literal ``v``, its negation ``-v``.  Variable 0 is never
used.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional, Tuple

from repro.network.network import Network


@dataclasses.dataclass(frozen=True)
class CnfStats:
    """Size of one CNF formula (what the spans/counters report)."""

    variables: int
    clauses: int
    literals: int


class Cnf:
    """A growing CNF formula: a variable counter and a clause list."""

    def __init__(self) -> None:
        self.num_vars = 0
        self.clauses: List[Tuple[int, ...]] = []

    def new_var(self) -> int:
        self.num_vars += 1
        return self.num_vars

    def add_clause(self, literals: Iterable[int]) -> None:
        clause = tuple(literals)
        for lit in clause:
            if lit == 0 or abs(lit) > self.num_vars:
                raise ValueError(f"literal {lit} out of range")
        self.clauses.append(clause)

    def stats(self) -> CnfStats:
        return CnfStats(
            variables=self.num_vars,
            clauses=len(self.clauses),
            literals=sum(len(c) for c in self.clauses),
        )


# ----------------------------------------------------------------------
# Network (SOP cover) encoding
# ----------------------------------------------------------------------
def _define_and(cnf: Cnf, out: int, literals: List[int]) -> None:
    """Clauses for ``out <-> AND(literals)`` (empty AND is constant 1)."""
    if not literals:
        cnf.add_clause((out,))
        return
    for lit in literals:
        cnf.add_clause((-out, lit))
    cnf.add_clause((out,) + tuple(-lit for lit in literals))


def _define_or(cnf: Cnf, out: int, literals: List[int]) -> None:
    """Clauses for ``out <-> OR(literals)`` (empty OR is constant 0)."""
    if not literals:
        cnf.add_clause((-out,))
        return
    for lit in literals:
        cnf.add_clause((out, -lit))
    cnf.add_clause((-out,) + tuple(literals))


def encode_network(
    cnf: Cnf,
    network: Network,
    var_map: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Tseitin-encode every node of *network* into *cnf*.

    Returns a map from node name to its CNF variable.  Pass a
    *var_map* pre-seeded with PI variables to share inputs between two
    encodings (the miter construction); missing entries are allocated.
    Encoding walks the topological order, so the map covers every node
    of the network on return.
    """
    values: Dict[str, int] = {} if var_map is None else var_map
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            if name not in values:
                values[name] = cnf.new_var()
            continue
        fanin_vars = [values[f] for f in node.fanins]
        out = values.get(name)
        if out is None:
            out = values[name] = cnf.new_var()
        cube_lits: List[int] = []
        constant_one = False
        for cube in node.cover.cubes:
            signed = [
                fanin_vars[var] if phase else -fanin_vars[var]
                for var, phase in cube.literals()
            ]
            if not signed:
                # The full cube: the whole cover is constant 1.
                constant_one = True
                break
            if len(signed) == 1:
                # A one-literal cube needs no definition variable.
                cube_lits.append(signed[0])
                continue
            t = cnf.new_var()
            _define_and(cnf, t, signed)
            cube_lits.append(t)
        if constant_one:
            cnf.add_clause((out,))
        else:
            _define_or(cnf, out, cube_lits)
    return values


# ----------------------------------------------------------------------
# Circuit (structural gate) encoding
# ----------------------------------------------------------------------
def encode_circuit(
    cnf: Cnf,
    circuit,
    var_map: Optional[Dict[str, int]] = None,
) -> Dict[str, int]:
    """Tseitin-encode a :class:`~repro.circuit.circuit.Circuit`.

    Input-edge phases fold into literal signs; CONST0/CONST1 gates
    become unit clauses.  Same sharing contract as
    :func:`encode_network`.
    """
    from repro.circuit.gate import GateKind

    values: Dict[str, int] = {} if var_map is None else var_map
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        out = values.get(name)
        if out is None:
            out = values[name] = cnf.new_var()
        if gate.kind == GateKind.PI:
            continue
        if gate.kind == GateKind.CONST0:
            cnf.add_clause((-out,))
            continue
        if gate.kind == GateKind.CONST1:
            cnf.add_clause((out,))
            continue
        signed = [
            values[signal] if phase else -values[signal]
            for signal, phase in gate.inputs
        ]
        if gate.kind == GateKind.AND:
            _define_and(cnf, out, signed)
        else:
            _define_or(cnf, out, signed)
    return values


# ----------------------------------------------------------------------
# Equivalence miter
# ----------------------------------------------------------------------
@dataclasses.dataclass
class Miter:
    """A network-equivalence miter: SAT exactly on differing inputs."""

    cnf: Cnf
    #: Shared primary-input variables (union of both PI sets).
    pi_vars: Dict[str, int]
    #: Per-PO difference variables (``po -> var``); the formula
    #: asserts their disjunction.
    diff_vars: Dict[str, int]


def build_miter(a: Network, b: Network) -> Miter:
    """XOR paired primary outputs of two networks over shared PIs.

    The caller guarantees ``sorted(a.pos) == sorted(b.pos)``.  PIs are
    matched by name (the union is allocated first, in sorted order, so
    variable numbering is deterministic); a PI one network lacks is a
    free input to the other.  The returned formula is satisfiable iff
    some input assignment makes at least one paired output differ —
    i.e. UNSAT proves equivalence.
    """
    if sorted(a.pos) != sorted(b.pos):
        raise ValueError("miter requires identical primary-output names")
    cnf = Cnf()
    pi_vars: Dict[str, int] = {}
    for pi in sorted(set(a.pis) | set(b.pis)):
        pi_vars[pi] = cnf.new_var()
    values_a = encode_network(cnf, a, dict(pi_vars))
    values_b = encode_network(cnf, b, dict(pi_vars))
    diff_vars: Dict[str, int] = {}
    for po in sorted(a.pos):
        va, vb = values_a[po], values_b[po]
        x = cnf.new_var()
        # x <-> (va XOR vb)
        cnf.add_clause((-x, va, vb))
        cnf.add_clause((-x, -va, -vb))
        cnf.add_clause((x, -va, vb))
        cnf.add_clause((x, va, -vb))
        diff_vars[po] = x
    cnf.add_clause(tuple(diff_vars[po] for po in sorted(diff_vars)))
    return Miter(cnf=cnf, pi_vars=pi_vars, diff_vars=diff_vars)
