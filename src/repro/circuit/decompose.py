"""Decomposition of network nodes into two-level AND–OR gate regions.

This realizes the paper's first step: "decompose each node's internal
sum-of-product form into two-level AND and OR gates".  The circuit then
has alternating levels of ANDs and ORs, which is what lets the same
machinery run substitution in both SOP and POS flavours.

Gate naming convention for node ``f``:

* ``f`` — the node's output gate (an OR over its cube gates),
* ``f.c0``, ``f.c1``, … — one AND gate per multi-literal cube.

Single-literal cubes feed the OR directly (no AND gate); single-cube
nodes become one AND gate named ``f`` itself.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.twolevel.cover import Cover
from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind
from repro.network.network import Network
from repro.network.node import Node


def cube_gate_inputs(node: Node, cube) -> List[Tuple[str, bool]]:
    """The phased input edges of a cube's AND gate."""
    return [(node.fanins[v], phase) for v, phase in cube.literals()]


def node_region_gates(node: Node, prefix: str = "") -> List[Gate]:
    """Two-level gates computing *node* from its fanin signals.

    *prefix* lets callers namespace the gates (used when the same node
    appears in several analysis circuits).  The output gate is always
    named ``prefix + node.name``.
    """
    if node.cover is None:
        raise ValueError("primary inputs have no gate region")
    out_name = prefix + node.name
    cover = node.cover
    if cover.is_zero():
        return [Gate(out_name, GateKind.CONST0)]
    if cover.is_one_cube():
        return [Gate(out_name, GateKind.CONST1)]

    gates: List[Gate] = []
    if cover.num_cubes() == 1:
        gates.append(
            Gate(out_name, GateKind.AND, cube_gate_inputs(node, cover[0]))
        )
        return gates

    or_inputs: List[Tuple[str, bool]] = []
    for i, cube in enumerate(cover.cubes):
        literals = cube_gate_inputs(node, cube)
        if len(literals) == 1:
            or_inputs.append(literals[0])
        else:
            cube_name = f"{out_name}.c{i}"
            gates.append(Gate(cube_name, GateKind.AND, literals))
            or_inputs.append((cube_name, True))
    gates.append(Gate(out_name, GateKind.OR, or_inputs))
    return gates


def network_to_circuit(network: Network) -> Circuit:
    """Decompose the whole network into a two-level-per-node circuit."""
    circuit = Circuit(network.name)
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            circuit.add_pi(name)
        else:
            for gate in node_region_gates(node):
                circuit.add_gate(gate)
    return circuit


def circuit_node_values(
    circuit: Circuit, assignment: Dict[str, bool], names: List[str]
) -> Dict[str, bool]:
    """Evaluate the circuit and project the values of chosen signals."""
    values = circuit.evaluate(assignment)
    return {name: values[name] for name in names}
