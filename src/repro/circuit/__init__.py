"""Gate-level structural circuit view.

The paper's algorithm "operates on circuit structure directly": every
node's SOP is decomposed into a two-level AND–OR gate region, and
redundancy addition/removal reasons over wires of those gates.  This
subpackage provides the structural representation (:class:`Gate`,
:class:`Circuit`) and the network-to-circuit decomposition.

Inverters and buffers are folded into edge phases: every gate input is
a ``(signal, phase)`` pair, so a "wire" in the paper's sense (a literal
feeding an AND, or a cube feeding an OR) is exactly one input edge.
"""

from repro.circuit.gate import Gate, GateKind
from repro.circuit.circuit import Circuit
from repro.circuit.decompose import network_to_circuit, node_region_gates
from repro.circuit.mapback import (
    network_redundancy_removal,
    node_cover_from_gates,
    update_network_from_circuit,
)

__all__ = [
    "Gate",
    "GateKind",
    "Circuit",
    "network_to_circuit",
    "node_region_gates",
    "network_redundancy_removal",
    "node_cover_from_gates",
    "update_network_from_circuit",
]
