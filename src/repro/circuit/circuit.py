"""The structural circuit: a DAG of :class:`Gate` objects."""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.circuit.gate import Gate, GateKind


class Circuit:
    """A named collection of gates with fanout bookkeeping.

    Signals and gates are identified by the same names: the gate named
    ``s`` drives signal ``s``.
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self.gates: Dict[str, Gate] = {}
        self._fanouts: Optional[Dict[str, List[str]]] = None

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_gate(self, gate: Gate) -> Gate:
        if gate.name in self.gates:
            raise ValueError(f"duplicate gate name {gate.name!r}")
        self.gates[gate.name] = gate
        self._fanouts = None
        return gate

    def add_pi(self, name: str) -> Gate:
        return self.add_gate(Gate(name, GateKind.PI))

    def add_and(self, name: str, inputs: Iterable[Tuple[str, bool]]) -> Gate:
        return self.add_gate(Gate(name, GateKind.AND, list(inputs)))

    def add_or(self, name: str, inputs: Iterable[Tuple[str, bool]]) -> Gate:
        return self.add_gate(Gate(name, GateKind.OR, list(inputs)))

    def remove_gate(self, name: str) -> None:
        del self.gates[name]
        self._fanouts = None

    def invalidate(self) -> None:
        """Call after mutating a gate's input list in place."""
        self._fanouts = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    def fanouts(self) -> Dict[str, List[str]]:
        if self._fanouts is None:
            table: Dict[str, List[str]] = {name: [] for name in self.gates}
            for gate in self.gates.values():
                for signal, _ in gate.inputs:
                    if signal in table:
                        table[signal].append(gate.name)
            self._fanouts = table
        return self._fanouts

    def pis(self) -> List[str]:
        return [
            g.name for g in self.gates.values() if g.kind == GateKind.PI
        ]

    def topo_order(self) -> List[str]:
        state: Dict[str, int] = {}
        order: List[str] = []
        for root in self.gates:
            if state.get(root, 0):
                continue
            stack = [(root, iter(self.gates[root].inputs))]
            state[root] = 1
            while stack:
                current, it = stack[-1]
                advanced = False
                for signal, _ in it:
                    mark = state.get(signal, 0)
                    if mark == 1:
                        raise ValueError(f"cycle through {signal!r}")
                    if mark == 0 and signal in self.gates:
                        state[signal] = 1
                        stack.append(
                            (signal, iter(self.gates[signal].inputs))
                        )
                        advanced = True
                        break
                if not advanced:
                    state[current] = 2
                    order.append(current)
                    stack.pop()
        return order

    def transitive_fanin(self, name: str) -> Set[str]:
        result: Set[str] = set()
        stack = [s for s, _ in self.gates[name].inputs]
        while stack:
            current = stack.pop()
            if current in result or current not in self.gates:
                continue
            result.add(current)
            stack.extend(s for s, _ in self.gates[current].inputs)
        return result

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------
    def evaluate(self, assignment: Dict[str, bool]) -> Dict[str, bool]:
        """Evaluate all gates given PI values."""
        values: Dict[str, bool] = {}
        for name in self.topo_order():
            gate = self.gates[name]
            if gate.kind == GateKind.PI:
                values[name] = bool(assignment[name])
            elif gate.kind == GateKind.CONST0:
                values[name] = False
            elif gate.kind == GateKind.CONST1:
                values[name] = True
            else:
                literals = (
                    values[s] if phase else not values[s]
                    for s, phase in gate.inputs
                )
                if gate.kind == GateKind.AND:
                    values[name] = all(literals)
                else:
                    values[name] = any(literals)
        return values

    def count_wires(self) -> int:
        return sum(len(g.inputs) for g in self.gates.values())

    def copy(self, name: Optional[str] = None) -> "Circuit":
        duplicate = Circuit(name or self.name)
        for gate in self.gates.values():
            duplicate.gates[gate.name] = gate.copy()
        return duplicate

    def __repr__(self) -> str:
        return f"Circuit({self.name!r}, gates={len(self.gates)})"
