"""Mapping an optimized two-level gate structure back onto a network.

:func:`repro.circuit.decompose.network_to_circuit` lowers every node
into AND/OR gates with a fixed naming convention (``f`` for the output
gate, ``f.c{i}`` for multi-literal cubes).  After gate-level rewrites
(e.g. redundancy removal) this module reconstructs each node's SOP
cover from its — possibly modified — gate region, giving network
passes access to the whole ATPG substrate.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind
from repro.network.network import Network


def _cube_from_inputs(
    inputs: List[Tuple[str, bool]], fanin_index: dict
) -> Optional[Cube]:
    literals = {}
    for signal, phase in inputs:
        var = fanin_index[signal]
        if var in literals and literals[var] != phase:
            return None  # x·x' inside one cube: the cube vanished
        literals[var] = phase
    return Cube.from_literals(literals.items())


def node_cover_from_gates(
    circuit: Circuit, name: str
) -> Tuple[List[str], Cover]:
    """Reconstruct ``(fanins, cover)`` of node *name* from its gates."""
    gate = circuit.gates[name]
    prefix = f"{name}.c"

    def is_cube_gate(signal: str) -> bool:
        return signal.startswith(prefix) and signal in circuit.gates

    # Gather the fanin signal set first (deterministic order).
    fanins: List[str] = []

    def note(signal: str) -> None:
        if signal not in fanins:
            fanins.append(signal)

    cube_inputs: List[List[Tuple[str, bool]]] = []
    if gate.kind == GateKind.CONST0:
        return [], Cover.zero(0)
    if gate.kind == GateKind.CONST1:
        return [], Cover.one(0)
    if gate.kind == GateKind.AND:
        cube_inputs.append(list(gate.inputs))
        for signal, _ in gate.inputs:
            note(signal)
    else:  # OR over cube gates and/or direct literals
        for signal, phase in gate.inputs:
            if is_cube_gate(signal) and not phase:
                raise ValueError(
                    f"inverted cube-gate edge {signal!r} cannot be "
                    "mapped back to a SOP cover"
                )
            if is_cube_gate(signal):
                sub = circuit.gates[signal]
                if sub.kind == GateKind.CONST1:
                    cube_inputs.append([])
                    continue
                cube_inputs.append(list(sub.inputs))
                for inner, _ in sub.inputs:
                    note(inner)
            else:
                cube_inputs.append([(signal, phase)])
                note(signal)

    index = {signal: i for i, signal in enumerate(fanins)}
    cubes: List[Cube] = []
    for inputs in cube_inputs:
        cube = _cube_from_inputs(inputs, index)
        if cube is not None:
            cubes.append(cube)
    cover = Cover(len(fanins), cubes).single_cube_containment()
    return fanins, cover


def update_network_from_circuit(
    network: Network, circuit: Circuit
) -> int:
    """Write every node's reconstructed cover back into *network*.

    Returns the number of nodes whose function text changed.  The
    circuit must have been produced by ``network_to_circuit`` on this
    network (same names) and only modified structurally (wires
    removed/added, gates degenerated to constants).
    """
    changed = 0
    for node in network.internal_nodes():
        if node.name not in circuit.gates:
            continue
        fanins, cover = node_cover_from_gates(circuit, node.name)
        if fanins == node.fanins and cover == node.cover:
            continue
        node.set_function(fanins, cover)
        node.prune_unused_fanins()
        changed += 1
    return changed


def network_redundancy_removal(
    network: Network, learn_depth: int = 1, max_rounds: int = 5
) -> int:
    """Classical RAR cleanup at network level: decompose, remove every
    wire whose fault is untestable, map back.  Returns wires removed.

    This is the Section-II substrate used directly as an optimization
    (no divisor involved): implications run over the whole circuit, so
    the removals exploit the same internal don't cares as the GDC
    substitution configuration.
    """
    from repro.atpg.redundancy import redundancy_removal
    from repro.circuit.decompose import network_to_circuit

    circuit = network_to_circuit(network)
    observables = set(network.pos)
    removed = redundancy_removal(
        circuit, observables, learn_depth=learn_depth, max_rounds=max_rounds
    )
    if removed:
        update_network_from_circuit(network, circuit)
        network.sweep_dangling()
    return removed
