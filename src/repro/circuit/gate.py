"""Gates for the structural circuit view."""

from __future__ import annotations

import enum
from typing import List, Tuple


class GateKind(enum.Enum):
    """Gate kinds; NOT/BUF are folded into input-edge phases."""

    PI = "pi"
    AND = "and"
    OR = "or"
    CONST0 = "const0"
    CONST1 = "const1"


class Gate:
    """A gate: output signal name, kind, and phased input edges.

    ``inputs`` is a list of ``(signal, phase)`` pairs; ``phase`` True
    means the signal feeds in directly, False means inverted.  Each
    pair is one *wire* in the paper's sense.
    """

    __slots__ = ("name", "kind", "inputs")

    def __init__(
        self,
        name: str,
        kind: GateKind,
        inputs: List[Tuple[str, bool]] = (),
    ):
        self.name = name
        self.kind = kind
        self.inputs: List[Tuple[str, bool]] = list(inputs)
        if kind in (GateKind.PI, GateKind.CONST0, GateKind.CONST1):
            if self.inputs:
                raise ValueError(f"{kind.value} gate cannot have inputs")

    def is_source(self) -> bool:
        return self.kind in (GateKind.PI, GateKind.CONST0, GateKind.CONST1)

    def controlling_value(self) -> bool:
        """The input value that determines the output by itself."""
        if self.kind == GateKind.AND:
            return False
        if self.kind == GateKind.OR:
            return True
        raise ValueError(f"{self.kind.value} gate has no controlling value")

    def copy(self) -> "Gate":
        return Gate(self.name, self.kind, list(self.inputs))

    def __repr__(self) -> str:
        edges = ", ".join(
            s if phase else s + "'" for s, phase in self.inputs
        )
        return f"Gate({self.name} = {self.kind.value}({edges}))"
