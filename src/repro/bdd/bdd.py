"""A hash-consed ROBDD manager.

Nodes are integers; the two terminals are the module constants
:data:`BDD_ZERO` and :data:`BDD_ONE`.  Complement edges are not used —
the structure favours clarity over the last constant factor, since BDDs
here serve as a verification oracle and a division baseline rather than
as the primary engine.

Supported operations: ``ite`` (hence all two-operand connectives),
negation, restriction, existential/universal quantification, variable
composition, generalized cofactor (constrain), satisfy-count and cube
enumeration, and conversion to/from two-level covers.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover

BDD_ZERO = 0
BDD_ONE = 1


class BddManager:
    """Shared node store for one variable ordering.

    Variables are dense integers ``0 .. num_vars-1`` ordered by index
    (index 0 closest to the root).
    """

    def __init__(self, num_vars: int):
        if num_vars < 0:
            raise ValueError("num_vars must be non-negative")
        self.num_vars = num_vars
        # node id -> (var, low, high); terminals occupy ids 0 and 1.
        self._nodes: List[Tuple[int, int, int]] = [
            (num_vars, -1, -1),
            (num_vars, -1, -1),
        ]
        self._unique: Dict[Tuple[int, int, int], int] = {}
        self._ite_cache: Dict[Tuple[int, int, int], int] = {}
        self._op_caches: Dict[str, Dict] = {}

    # ------------------------------------------------------------------
    # Node construction
    # ------------------------------------------------------------------
    def var_of(self, node: int) -> int:
        return self._nodes[node][0]

    def low(self, node: int) -> int:
        return self._nodes[node][1]

    def high(self, node: int) -> int:
        return self._nodes[node][2]

    def is_terminal(self, node: int) -> bool:
        return node <= BDD_ONE

    def mk(self, var: int, low: int, high: int) -> int:
        """Find-or-create the node ``(var, low, high)`` (reduced)."""
        if low == high:
            return low
        key = (var, low, high)
        node = self._unique.get(key)
        if node is None:
            node = len(self._nodes)
            self._nodes.append(key)
            self._unique[key] = node
        return node

    def var(self, index: int) -> int:
        """The BDD of the single variable ``x_index``."""
        if not 0 <= index < self.num_vars:
            raise ValueError(f"variable {index} out of range")
        return self.mk(index, BDD_ZERO, BDD_ONE)

    def nvar(self, index: int) -> int:
        return self.mk(index, BDD_ONE, BDD_ZERO)

    def size(self) -> int:
        """Number of live nodes in the store (including terminals)."""
        return len(self._nodes)

    # ------------------------------------------------------------------
    # Core connectives
    # ------------------------------------------------------------------
    def ite(self, f: int, g: int, h: int) -> int:
        """If-then-else: ``f·g + f'·h``."""
        if f == BDD_ONE:
            return g
        if f == BDD_ZERO:
            return h
        if g == h:
            return g
        if g == BDD_ONE and h == BDD_ZERO:
            return f
        key = (f, g, h)
        cached = self._ite_cache.get(key)
        if cached is not None:
            return cached
        top = min(self.var_of(f), self.var_of(g), self.var_of(h))
        f0, f1 = self._cofactors(f, top)
        g0, g1 = self._cofactors(g, top)
        h0, h1 = self._cofactors(h, top)
        result = self.mk(
            top, self.ite(f0, g0, h0), self.ite(f1, g1, h1)
        )
        self._ite_cache[key] = result
        return result

    def _cofactors(self, node: int, var: int) -> Tuple[int, int]:
        if self.var_of(node) == var:
            return self.low(node), self.high(node)
        return node, node

    def and_(self, f: int, g: int) -> int:
        return self.ite(f, g, BDD_ZERO)

    def or_(self, f: int, g: int) -> int:
        return self.ite(f, BDD_ONE, g)

    def xor(self, f: int, g: int) -> int:
        return self.ite(f, self.not_(g), g)

    def not_(self, f: int) -> int:
        return self.ite(f, BDD_ZERO, BDD_ONE)

    def implies(self, f: int, g: int) -> bool:
        """Semantic implication test ``f <= g``."""
        return self.and_(f, self.not_(g)) == BDD_ZERO

    def and_many(self, fs) -> int:
        result = BDD_ONE
        for f in fs:
            result = self.and_(result, f)
            if result == BDD_ZERO:
                break
        return result

    def or_many(self, fs) -> int:
        result = BDD_ZERO
        for f in fs:
            result = self.or_(result, f)
            if result == BDD_ONE:
                break
        return result

    # ------------------------------------------------------------------
    # Structure manipulation
    # ------------------------------------------------------------------
    def restrict(self, f: int, var: int, value: bool) -> int:
        cache = self._op_caches.setdefault("restrict", {})
        key = (f, var, value)
        cached = cache.get(key)
        if cached is not None:
            return cached
        if self.is_terminal(f) or self.var_of(f) > var:
            result = f
        elif self.var_of(f) == var:
            result = self.high(f) if value else self.low(f)
        else:
            result = self.mk(
                self.var_of(f),
                self.restrict(self.low(f), var, value),
                self.restrict(self.high(f), var, value),
            )
        cache[key] = result
        return result

    def exists(self, f: int, var: int) -> int:
        return self.or_(
            self.restrict(f, var, False), self.restrict(f, var, True)
        )

    def forall(self, f: int, var: int) -> int:
        return self.and_(
            self.restrict(f, var, False), self.restrict(f, var, True)
        )

    def compose(self, f: int, var: int, g: int) -> int:
        """Substitute the function *g* for variable *var* inside *f*."""
        return self.ite(
            g, self.restrict(f, var, True), self.restrict(f, var, False)
        )

    def constrain(self, f: int, c: int) -> int:
        """Coudert/Madre generalized cofactor ``f ↓ c``.

        This is the operator behind the BDD Boolean-division method of
        Stanion & Sechen that the paper cites: ``f = c·(f ↓ c) + c'·f``.
        """
        if c == BDD_ZERO:
            raise ValueError("constrain against the zero function")
        cache = self._op_caches.setdefault("constrain", {})
        key = (f, c)
        cached = cache.get(key)
        if cached is not None:
            return cached
        result = self._constrain(f, c, cache)
        return result

    def _constrain(self, f: int, c: int, cache) -> int:
        if c == BDD_ONE or self.is_terminal(f):
            return f
        key = (f, c)
        cached = cache.get(key)
        if cached is not None:
            return cached
        top = min(self.var_of(f), self.var_of(c))
        c0, c1 = self._cofactors(c, top)
        f0, f1 = self._cofactors(f, top)
        if c0 == BDD_ZERO:
            result = self._constrain(f1, c1, cache)
        elif c1 == BDD_ZERO:
            result = self._constrain(f0, c0, cache)
        else:
            result = self.mk(
                top,
                self._constrain(f0, c0, cache),
                self._constrain(f1, c1, cache),
            )
        cache[key] = result
        return result

    # ------------------------------------------------------------------
    # Analysis
    # ------------------------------------------------------------------
    def sat_count(self, f: int) -> int:
        """Number of satisfying assignments over all manager variables."""
        cache: Dict[int, int] = {}

        def count(node: int) -> int:
            if node == BDD_ZERO:
                return 0
            if node == BDD_ONE:
                return 1
            cached = cache.get(node)
            if cached is not None:
                return cached
            var = self.var_of(node)
            lo, hi = self.low(node), self.high(node)
            lo_gap = self.var_of(lo) - var - 1
            hi_gap = self.var_of(hi) - var - 1
            result = (count(lo) << lo_gap) + (count(hi) << hi_gap)
            cache[node] = result
            return result

        if f == BDD_ZERO:
            return 0
        if f == BDD_ONE:
            return 1 << self.num_vars
        return count(f) << self.var_of(f)

    def pick_one(self, f: int) -> Optional[int]:
        """A satisfying assignment as a bit vector, or ``None``."""
        if f == BDD_ZERO:
            return None
        assignment = 0
        node = f
        while not self.is_terminal(node):
            if self.high(node) != BDD_ZERO:
                assignment |= 1 << self.var_of(node)
                node = self.high(node)
            else:
                node = self.low(node)
        return assignment

    def evaluate(self, f: int, assignment: int) -> bool:
        node = f
        while not self.is_terminal(node):
            if assignment >> self.var_of(node) & 1:
                node = self.high(node)
            else:
                node = self.low(node)
        return node == BDD_ONE

    def cubes(self, f: int) -> Iterator[Cube]:
        """Enumerate the disjoint path-cubes of the function."""
        path: List[Tuple[int, bool]] = []

        def walk(node: int) -> Iterator[Cube]:
            if node == BDD_ZERO:
                return
            if node == BDD_ONE:
                yield Cube.from_literals(path)
                return
            var = self.var_of(node)
            path.append((var, False))
            yield from walk(self.low(node))
            path.pop()
            path.append((var, True))
            yield from walk(self.high(node))
            path.pop()

        yield from walk(f)

    # ------------------------------------------------------------------
    # Two-level interop
    # ------------------------------------------------------------------
    def from_cube(self, cube: Cube) -> int:
        result = BDD_ONE
        for var, phase in sorted(cube.literals(), reverse=True):
            lit = self.var(var) if phase else self.nvar(var)
            result = self.and_(lit, result)
        return result

    def from_cover(self, cover: Cover) -> int:
        if cover.num_vars > self.num_vars:
            raise ValueError("cover uses more variables than the manager")
        return self.or_many(self.from_cube(c) for c in cover.cubes)

    def to_cover(self, f: int, num_vars: Optional[int] = None) -> Cover:
        n = self.num_vars if num_vars is None else num_vars
        return Cover(n, list(self.cubes(f)))
