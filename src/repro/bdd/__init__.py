"""Reduced-ordered binary decision diagrams.

A compact hash-consed BDD manager used throughout the repository as the
semantic oracle: network-level rewrites (division, substitution, script
passes) are verified by building BDDs of primary-output cones before and
after the transformation.  It is also the natural implementation of the
generalized-cofactor division baseline of Stanion & Sechen that the
paper's related-work section discusses.
"""

from repro.bdd.bdd import BddManager, BDD_ZERO, BDD_ONE
from repro.bdd.reorder import (
    rebuild_with_order,
    reorder,
    shared_size,
    sift_order,
    translate_assignment,
)

__all__ = [
    "BddManager",
    "BDD_ZERO",
    "BDD_ONE",
    "rebuild_with_order",
    "reorder",
    "shared_size",
    "sift_order",
    "translate_assignment",
]
