"""Variable reordering for the BDD substrate.

BDD size is notoriously order-sensitive (the multiplexer/adder
examples blow up exponentially under a bad order).  This module
provides rebuild-based reordering utilities sized for this project's
verification workloads:

* :func:`rebuild_with_order` — reconstruct root functions in a fresh
  manager under an arbitrary variable permutation,
* :func:`shared_size` — number of distinct nodes reachable from a set
  of roots (the cost function),
* :func:`sift_order` — greedy sifting: move one variable at a time to
  its best position, repeat for each variable; returns the best order
  found and its cost.

Rebuilding per candidate position is O(n²) rebuilds overall — far from
CUDD's in-place level swaps, but simple, obviously correct, and fast
enough below ~16 variables (the sizes our equivalence oracle sees).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.bdd.bdd import BDD_ONE, BDD_ZERO, BddManager


def shared_size(manager: BddManager, roots: Sequence[int]) -> int:
    """Distinct internal nodes reachable from *roots*."""
    seen = set()
    stack = [r for r in roots]
    while stack:
        node = stack.pop()
        if node in seen or manager.is_terminal(node):
            continue
        seen.add(node)
        stack.append(manager.low(node))
        stack.append(manager.high(node))
    return len(seen)


def rebuild_with_order(
    manager: BddManager,
    roots: Dict[str, int],
    order: Sequence[int],
) -> Tuple[BddManager, Dict[str, int]]:
    """Rebuild *roots* in a new manager whose level ``i`` holds the old
    variable ``order[i]``.

    Returns the new manager and the translated root ids.  The old
    manager is untouched.
    """
    if sorted(order) != list(range(manager.num_vars)):
        raise ValueError("order must be a permutation of all variables")
    position = [0] * manager.num_vars
    for level, var in enumerate(order):
        position[var] = level
    target = BddManager(manager.num_vars)
    cache: Dict[int, int] = {BDD_ZERO: BDD_ZERO, BDD_ONE: BDD_ONE}

    def convert(node: int) -> int:
        cached = cache.get(node)
        if cached is not None:
            return cached
        var = manager.var_of(node)
        low = convert(manager.low(node))
        high = convert(manager.high(node))
        result = target.ite(target.var(position[var]), high, low)
        cache[node] = result
        return result

    return target, {name: convert(node) for name, node in roots.items()}


def sift_order(
    manager: BddManager,
    roots: Dict[str, int],
    passes: int = 1,
) -> Tuple[List[int], int]:
    """Greedy sifting over full rebuilds.

    For each variable (largest managers first benefit most, but a fixed
    sweep keeps this deterministic), try every position in the current
    order and keep the best.  Returns ``(order, size)`` where *order*
    maps levels to original variable indices.
    """
    n = manager.num_vars
    order = list(range(n))

    def cost(candidate: Sequence[int]) -> int:
        rebuilt, new_roots = rebuild_with_order(manager, roots, candidate)
        return shared_size(rebuilt, list(new_roots.values()))

    best_cost = cost(order)
    for _ in range(max(1, passes)):
        improved = False
        for var in range(n):
            current_level = order.index(var)
            best_level = current_level
            for level in range(n):
                if level == current_level:
                    continue
                candidate = list(order)
                candidate.pop(current_level)
                candidate.insert(level, var)
                candidate_cost = cost(candidate)
                if candidate_cost < best_cost:
                    best_cost = candidate_cost
                    best_level = level
            if best_level != current_level:
                order.pop(current_level)
                order.insert(best_level, var)
                improved = True
        if not improved:
            break
    return order, best_cost


def translate_assignment(order: Sequence[int], assignment: int) -> int:
    """Map an assignment over the *original* variables into the
    rebuilt manager's variable space.

    After :func:`rebuild_with_order`, level ``i`` of the new manager
    carries the old variable ``order[i]``, so bit ``order[i]`` of the
    original assignment becomes bit ``i`` of the translated one.
    """
    translated = 0
    for level, var in enumerate(order):
        if assignment >> var & 1:
            translated |= 1 << level
    return translated


def reorder(
    manager: BddManager, roots: Dict[str, int], passes: int = 1
) -> Tuple[BddManager, Dict[str, int], List[int]]:
    """Sift, then rebuild under the best order found.

    Returns ``(new_manager, new_roots, order)``.
    """
    order, _ = sift_order(manager, roots, passes)
    rebuilt, new_roots = rebuild_with_order(manager, roots, order)
    return rebuilt, new_roots, order
