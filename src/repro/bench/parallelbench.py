"""Serial-vs-parallel benchmark for the speculative division engine.

Runs :func:`~repro.core.substitution.substitute_network` on each
circuit serially and then at each requested job count, and reports
output parity (the commit protocol guarantees byte-identical BLIF, so
literal counts and accepted rewrites must match exactly), wall-clock
speedup, and the speculation counters (pairs evaluated / reused /
invalidated).  :func:`run_parallel_benchmark` writes the comparison as
JSON (``BENCH_parallel.json``) and appends the serial baseline's
metrics snapshot to the cross-PR run history
(``benchmarks/results/history.jsonl``) for tracking across revisions.

Speedup on this engine is bounded by the physical core count —
``machine.cpu_count`` is recorded in the report so a run on a
single-core box (where the process pool can only add overhead) is not
misread as a regression.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.suite import build_benchmark
from repro.core.config import BASIC, DivisionConfig
from repro.core.substitution import substitute_network
from repro.network.blif import to_blif_str
from repro.network.network import Network
from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    append_record,
    make_record,
)
from repro.obs.metrics import run_snapshot

#: Default output location: ``benchmarks/results/BENCH_parallel.json``
#: at the repository root.
DEFAULT_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_parallel.json"
)

#: Job counts measured by default (serial is always run as baseline).
DEFAULT_JOB_COUNTS = (2, 4)


def run_circuit(
    network: Network, config: DivisionConfig, n_jobs: int = 1
) -> Dict[str, object]:
    """One substitution run on *network* (mutated in place); flat stats."""
    start = time.perf_counter()
    stats = substitute_network(network, config, n_jobs=n_jobs)
    elapsed = time.perf_counter() - start
    phases = dict(stats.parallel_phase_seconds)
    if phases:
        # Everything the main process did outside shipping snapshots
        # and waiting on shards: the greedy commit loop (including
        # live re-evaluations) — the phase the pipeline overlaps the
        # workers with.
        phases["commit_loop"] = max(
            0.0,
            elapsed
            - phases.get("snapshot_ship", 0.0)
            - phases.get("dispatch_wait", 0.0),
        )
    batches = stats.parallel_batches
    wire_bytes = stats.parallel_snapshot_bytes + stats.parallel_batch_bytes
    return {
        "snapshot": run_snapshot(stats),
        "literals_before": stats.literals_before,
        "literals_after": stats.literals_after,
        "accepted": stats.accepted,
        "seconds": elapsed,
        "pairs_evaluated": stats.parallel_pairs_evaluated,
        "pairs_reused": stats.parallel_pairs_reused,
        "pairs_invalidated": stats.parallel_pairs_invalidated,
        "pairs_stale_skipped": stats.parallel_pairs_stale_skipped,
        "batches": batches,
        "jobs": stats.parallel_jobs,
        "deltas_shipped": stats.parallel_deltas_shipped,
        "delta_nodes": stats.parallel_delta_nodes,
        #: Wire accounting of the persistent-pool protocol: the base
        #: snapshot ships once, then each shard pays only its pair
        #: list + cumulative delta record.  ``snapshot_bytes_per_batch``
        #: is the amortized snapshot-ship cost — the batch-scoped
        #: protocol paid the full ``snapshot_bytes`` for *every* batch.
        "snapshot_bytes": stats.parallel_snapshot_bytes,
        "batch_bytes": stats.parallel_batch_bytes,
        "bytes_per_batch": (wire_bytes / batches) if batches else 0.0,
        "snapshot_bytes_per_batch": (
            stats.parallel_snapshot_bytes / batches if batches else 0.0
        ),
        #: Per-phase wall seconds: snapshot_ship / worker_build /
        #: evaluate / dispatch_wait from the engine, commit_loop
        #: derived as the remainder of the run.
        "phase_seconds": phases,
    }


def compare_on(
    network: Network,
    config: DivisionConfig = BASIC,
    job_counts: Sequence[int] = DEFAULT_JOB_COUNTS,
) -> Dict[str, object]:
    """Serial-vs-parallel comparison on copies of *network*."""
    serial_net = network.copy(network.name)
    serial = run_circuit(serial_net, config)
    serial_blif = to_blif_str(serial_net)
    runs: Dict[str, Dict[str, object]] = {}
    identical = True
    for n_jobs in job_counts:
        parallel_net = network.copy(network.name)
        row = run_circuit(parallel_net, config, n_jobs=n_jobs)
        row["speedup"] = serial["seconds"] / max(1e-9, row["seconds"])
        row["output_identical"] = to_blif_str(parallel_net) == serial_blif
        identical = identical and row["output_identical"]
        runs[f"jobs{n_jobs}"] = row
    return {
        "circuit": network.name,
        "serial": serial,
        "parallel": runs,
        "output_identical": identical,
    }


def run_parallel_benchmark(
    names: Sequence[str],
    config: DivisionConfig = BASIC,
    job_counts: Sequence[int] = DEFAULT_JOB_COUNTS,
    output_path: Optional[pathlib.Path] = None,
    history_path: Union[str, pathlib.Path, None] = DEFAULT_HISTORY_PATH,
) -> Dict[str, object]:
    """Run :func:`compare_on` over the named suite circuits; write JSON.

    The serial baseline of each circuit is also appended to the run
    history — pass ``history_path=None`` to skip.  The per-run
    snapshots are popped from the JSON report: the history ledger is
    their long-term home.
    """
    rows: List[Dict[str, object]] = [
        compare_on(build_benchmark(name), config, job_counts)
        for name in names
    ]
    for row in rows:
        serial_snapshot = row["serial"].pop("snapshot")
        speedups = {}
        for jobs, run in row["parallel"].items():
            run.pop("snapshot")
            speedups[jobs] = run["speedup"]
        if history_path is not None:
            append_record(
                make_record(
                    bench="parallelbench",
                    circuit=row["circuit"],
                    metrics=serial_snapshot,
                    config=config,
                    wall_seconds=row["serial"]["seconds"],
                    extra={
                        "speedups": speedups,
                        "output_identical": row["output_identical"],
                    },
                ),
                path=history_path,
            )
    cpu_count = os.cpu_count() or 1
    best = {
        f"jobs{n}": max(
            (r["parallel"][f"jobs{n}"]["speedup"] for r in rows),
            default=0.0,
        )
        for n in job_counts
    }
    report = {
        "benchmark": "parallel",
        "config_mode": config.mode,
        "machine": {"cpu_count": cpu_count},
        "note": (
            "speedup is bounded by machine.cpu_count; on a single-core "
            "machine the process pool can only add overhead and these "
            "numbers measure protocol cost, not scaling"
        ),
        "job_counts": list(job_counts),
        "circuits": rows,
        "all_output_identical": all(r["output_identical"] for r in rows),
        "best_speedup": best,
    }
    path = output_path or DEFAULT_RESULT_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report
