"""Deterministic benchmark circuit generators.

Every generator is a pure function of its parameters (and an explicit
seed for the random family), so experiment tables reproduce exactly.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.twolevel.minimize import espresso
from repro.network.network import Network


# ----------------------------------------------------------------------
# Structured circuits
# ----------------------------------------------------------------------

def _node(net: Network, name: str, expression: str, fanins: Sequence[str]) -> None:
    """Add a node whose expression uses positional placeholder names.

    The expression is written over single letters ``a, b, c, ...`` that
    map positionally onto *fanins* (whose real names are arbitrary).
    """
    placeholders = [chr(ord("a") + i) for i in range(len(fanins))]
    cover = Cover.parse(expression, placeholders)
    net.add_node(name, list(fanins), cover)

def _xor_cover() -> Cover:
    return Cover.parse("ab' + a'b", ["a", "b"])


def _xnor_cover() -> Cover:
    return Cover.parse("ab + a'b'", ["a", "b"])


def ripple_adder(bits: int) -> Network:
    """An n-bit ripple-carry adder (sum and carry chains)."""
    net = Network(f"add{bits}")
    a = [f"a{i}" for i in range(bits)]
    b = [f"b{i}" for i in range(bits)]
    for name in a + b:
        net.add_pi(name)
    net.add_pi("cin")
    carry = "cin"
    for i in range(bits):
        p = f"p{i}"  # propagate = a xor b
        net.add_node(p, [a[i], b[i]], _xor_cover())
        s = f"s{i}"
        net.add_node(s, [p, carry], _xor_cover())
        net.add_po(s)
        cnext = f"c{i + 1}"
        net.add_node(
            cnext,
            [a[i], b[i], carry],
            Cover.parse("ab + ac + bc", ["a", "b", "c"]),
        )
        carry = cnext
    net.add_po(carry)
    return net


def carry_lookahead_adder(bits: int) -> Network:
    """An n-bit adder with explicit generate/propagate lookahead."""
    net = Network(f"cla{bits}")
    a = [f"a{i}" for i in range(bits)]
    b = [f"b{i}" for i in range(bits)]
    for name in a + b:
        net.add_pi(name)
    net.add_pi("cin")
    gs, ps = [], []
    for i in range(bits):
        g = f"g{i}"
        p = f"p{i}"
        _node(net, g, "ab", [a[i], b[i]])
        net.add_node(p, [a[i], b[i]], _xor_cover())
        gs.append(g)
        ps.append(p)
    carries = ["cin"]
    for i in range(bits):
        # c[i+1] = g_i + p_i·c_i over the generate/propagate signals.
        fanins = [gs[i], ps[i], carries[i]]
        cover = Cover.parse("g + pc", ["g", "p", "c"])
        net.add_node(f"c{i + 1}", fanins, cover)
        carries.append(f"c{i + 1}")
    for i in range(bits):
        s = f"s{i}"
        net.add_node(s, [ps[i], carries[i]], _xor_cover())
        net.add_po(s)
    net.add_po(carries[-1])
    return net


def comparator(bits: int) -> Network:
    """n-bit magnitude comparator producing eq/gt/lt."""
    net = Network(f"cmp{bits}")
    a = [f"a{i}" for i in range(bits)]
    b = [f"b{i}" for i in range(bits)]
    for name in a + b:
        net.add_pi(name)
    eq_prev: Optional[str] = None
    gt_prev: Optional[str] = None
    for i in reversed(range(bits)):  # MSB first
        e = f"eq{i}"
        net.add_node(e, [a[i], b[i]], _xnor_cover())
        g = f"gtb{i}"
        _node(net, g, "ab'", [a[i], b[i]])
        if eq_prev is None:
            eq_chain, gt_chain = e, g
        else:
            eq_chain = f"eqc{i}"
            _node(net, eq_chain, "ab", [eq_prev, e])
            gt_chain = f"gtc{i}"
            _node(net, gt_chain, "a + bc", [gt_prev, eq_prev, g])
        eq_prev, gt_prev = eq_chain, gt_chain
    net.add_po(eq_prev)
    net.add_po(gt_prev)
    lt = "lt"
    _node(net, lt, "a'b'", [eq_prev, gt_prev])
    net.add_po(lt)
    return net


def decoder(select_bits: int) -> Network:
    """A select_bits-to-2**select_bits one-hot decoder with enable."""
    net = Network(f"dec{select_bits}")
    sels = [f"s{i}" for i in range(select_bits)]
    for name in sels:
        net.add_pi(name)
    net.add_pi("en")
    n = select_bits
    for value in range(1 << n):
        literals = [(i, bool(value >> i & 1)) for i in range(n)]
        literals.append((n, True))  # enable
        cover = Cover(n + 1, [Cube.from_literals(literals)])
        name = f"o{value}"
        net.add_node(name, sels + ["en"], cover)
        net.add_po(name)
    return net


def parity(bits: int) -> Network:
    """XOR tree over *bits* inputs."""
    net = Network(f"par{bits}")
    layer = [f"x{i}" for i in range(bits)]
    for name in layer:
        net.add_pi(name)
    level = 0
    while len(layer) > 1:
        next_layer: List[str] = []
        for i in range(0, len(layer) - 1, 2):
            name = f"t{level}_{i // 2}"
            net.add_node(name, [layer[i], layer[i + 1]], _xor_cover())
            next_layer.append(name)
        if len(layer) % 2:
            next_layer.append(layer[-1])
        layer = next_layer
        level += 1
    net.add_po(layer[0])
    return net


def mux_tree(select_bits: int) -> Network:
    """A 2**select_bits-to-1 multiplexer built as a tree of 2:1 muxes."""
    net = Network(f"mux{select_bits}")
    n = 1 << select_bits
    data = [f"d{i}" for i in range(n)]
    sels = [f"s{i}" for i in range(select_bits)]
    for name in data + sels:
        net.add_pi(name)
    layer = data
    for level in range(select_bits):
        next_layer: List[str] = []
        for i in range(0, len(layer), 2):
            name = f"m{level}_{i // 2}"
            net.add_node(
                name,
                [sels[level], layer[i], layer[i + 1]],
                Cover.parse("s'a + sb", ["s", "a", "b"]),
            )
            next_layer.append(name)
        layer = next_layer
    net.add_po(layer[0])
    return net


def alu_slice(bits: int) -> Network:
    """A small ALU: AND/OR/XOR/ADD selected by two mode bits."""
    net = Network(f"alu{bits}")
    a = [f"a{i}" for i in range(bits)]
    b = [f"b{i}" for i in range(bits)]
    for name in a + b:
        net.add_pi(name)
    net.add_pi("m0")
    net.add_pi("m1")
    carry = None
    for i in range(bits):
        _node(net, f"and{i}", "ab", [a[i], b[i]])
        _node(net, f"or{i}", "a + b", [a[i], b[i]])
        net.add_node(f"xor{i}", [a[i], b[i]], _xor_cover())
        if carry is None:
            _node(net, f"sum{i}", "a", [f"xor{i}"])
            _node(net, f"cout{i}", "ab", [a[i], b[i]])
        else:
            net.add_node(f"sum{i}", [f"xor{i}", carry], _xor_cover())
            net.add_node(
                f"cout{i}",
                [a[i], b[i], carry],
                Cover.parse("ab + ac + bc", ["a", "b", "c"]),
            )
        carry = f"cout{i}"
        # 4:1 select over the operation results.
        net.add_node(
            f"y{i}",
            ["m0", "m1", f"and{i}", f"or{i}", f"xor{i}", f"sum{i}"],
            Cover.parse(
                "m'n'x + mn'y + m'nz + mnw",
                ["m", "n", "x", "y", "z", "w"],
            ),
        )
        net.add_po(f"y{i}")
    net.add_po(carry)
    return net


def priority_encoder(bits: int) -> Network:
    """Priority encoder: index of the highest asserted input + valid."""
    net = Network(f"pri{bits}")
    xs = [f"x{i}" for i in range(bits)]
    for name in xs:
        net.add_pi(name)
    # higher{i} = some input above i is asserted.
    prev = None
    for i in reversed(range(bits)):
        name = f"hi{i}"
        if prev is None:
            _node(net, name, "0", [])
        else:
            _node(net, name, "a + b", [xs[i + 1], prev])
        prev = name
    # grant{i} = x_i and no higher input.
    for i in range(bits):
        _node(net, f"grant{i}", "ab'", [xs[i], f"hi{i}"])
    out_bits = max(1, (bits - 1).bit_length())
    for k in range(out_bits):
        terms = [f"grant{i}" for i in range(bits) if i >> k & 1]
        if not terms:
            _node(net, f"e{k}", "0", [])
        else:
            names = [chr(ord("a") + j) for j in range(len(terms))]
            _node(net, f"e{k}", " + ".join(names), terms)
        net.add_po(f"e{k}")
    names = [chr(ord("a") + j) for j in range(bits)]
    _node(net, "valid", " + ".join(names), xs)
    net.add_po("valid")
    return net


def majority_voter(inputs: int = 5) -> Network:
    """Majority function over an odd number of inputs (TMR voter)."""
    if inputs % 2 == 0:
        raise ValueError("majority needs an odd input count")
    net = Network(f"maj{inputs}")
    xs = [f"x{i}" for i in range(inputs)]
    for name in xs:
        net.add_pi(name)
    threshold = inputs // 2 + 1
    cubes = []
    import itertools

    for combo in itertools.combinations(range(inputs), threshold):
        cubes.append(Cube.from_literals([(i, True) for i in combo]))
    net.add_node("maj", xs, Cover(inputs, cubes))
    net.add_po("maj")
    return net


# ----------------------------------------------------------------------
# Planted-divisor random networks
# ----------------------------------------------------------------------
def _random_cover(
    rng: random.Random, variables: Sequence[int], num_vars: int, cubes: int
) -> Cover:
    out = []
    for _ in range(cubes):
        literals = {}
        width = rng.randint(1, min(3, len(variables)))
        for var in rng.sample(list(variables), width):
            literals[var] = rng.random() < 0.6
        out.append(Cube.from_literals(literals.items()))
    cover = Cover(num_vars, out).single_cube_containment()
    return cover


def planted_network(
    name: str,
    seed: int,
    n_pis: int = 10,
    n_divisors: int = 4,
    n_targets: int = 6,
) -> Network:
    """A random network with Boolean-divisible structure planted in.

    Three kinds of structure give each configuration something to find:

    * **Cores.**  Small cube-free covers over PI subsets.  Target nodes
      are built as ``core·q + r`` (with the core sometimes
      complemented), *collapsed to PI space and re-minimized with
      espresso*.  Minimization merges and expands cubes, destroying the
      weak-division (algebraic) pattern while preserving Boolean
      divisibility — the regime where the paper's method wins.
    * **Fat divisors.**  Some cores are published as nodes with extra
      cubes OR-ed in, so only *extended* division (decomposing the
      divisor around the voted core) can use them.
    * **Correlated mid-layer signals.**  Some targets take internal
      nodes with implied relationships (``m ≤ M``) as fanins; the
      resulting satisfiability don't cares are only visible to the
      GDC configuration's whole-circuit implications.
    """
    rng = random.Random(seed)
    net = Network(name)
    pis = [f"x{i}" for i in range(n_pis)]
    for pi in pis:
        net.add_pi(pi)

    divisors: List[str] = []
    divisor_cores: List[Cover] = []
    for i in range(n_divisors):
        support = rng.sample(range(n_pis), rng.randint(2, 4))
        core = _random_cover(rng, support, n_pis, rng.randint(2, 3))
        if core.is_zero() or core.is_one_cube() or core.num_cubes() < 2:
            core = Cover(
                n_pis,
                [
                    Cube.literal(support[0], True),
                    Cube.literal(support[1], False),
                ],
            )
        published = core
        if rng.random() < 0.4:
            # Fat divisor: OR extra cubes over fresh PIs so only the
            # embedded core divides the targets (extended division).
            extra_support = [
                v for v in range(n_pis) if not (core.support() >> v & 1)
            ]
            if len(extra_support) >= 2:
                extra = _random_cover(rng, extra_support, n_pis, 1)
                if not extra.is_zero() and not extra.is_one_cube():
                    published = core.union(extra)
        g_name = f"g{i}"
        node = net.add_node(g_name, pis, published)
        node.prune_unused_fanins()
        divisors.append(g_name)
        divisor_cores.append(core)
        net.add_po(g_name)

    # Correlated mid-layer pairs: m <= M over shared PIs.
    mids: List[str] = []
    for i in range(max(1, n_divisors // 2)):
        support = rng.sample(range(n_pis), 3)
        small = _random_cover(rng, support, n_pis, 1)
        if small.is_zero() or small.is_one_cube():
            small = Cover(
                n_pis,
                [Cube.from_literals([(support[0], True), (support[1], True)])],
            )
        big = small.union(_random_cover(rng, support, n_pis, 1))
        m_name, big_name = f"m{i}", f"M{i}"
        node = net.add_node(m_name, pis, small)
        node.prune_unused_fanins()
        node = net.add_node(big_name, pis, big.single_cube_containment())
        node.prune_unused_fanins()
        mids.extend([m_name, big_name])

    for j in range(n_targets):
        idx = rng.randrange(n_divisors)
        core = divisor_cores[idx]
        use_complement = rng.random() < 0.3
        base = complement(core) if use_complement else core
        quotient_support = [
            v for v in range(n_pis) if not (base.support() >> v & 1)
        ]
        quotient = _random_cover(
            rng, quotient_support or list(range(n_pis)), n_pis,
            rng.randint(1, 2),
        )
        if quotient.is_zero():
            quotient = Cover.one(n_pis)
        remainder = _random_cover(
            rng, range(n_pis), n_pis, rng.randint(0, 2)
        )
        collapsed = base.intersect(quotient).union(remainder)
        collapsed = collapsed.single_cube_containment()
        if collapsed.is_zero() or collapsed.is_one_cube():
            collapsed = base
        minimized = espresso(collapsed)
        f_name = f"f{j}"
        node = net.add_node(f_name, pis, minimized)
        node.prune_unused_fanins()
        net.add_po(f_name)

    # Targets over correlated mid-layer fanins (GDC territory): covers
    # that mention both phases of an implied pair carry unreachable
    # input combinations only whole-circuit implications can see.
    # (POS-structured plants live in planted_pos_network.)
    for j in range(max(1, n_targets // 3)):
        if len(mids) < 2:
            break
        pair = rng.randrange(len(mids) // 2)
        m_name, big_name = mids[2 * pair], mids[2 * pair + 1]
        extra_pi = rng.sample(pis, 2)
        fanins = [m_name, big_name] + extra_pi
        cover = _random_cover(rng, range(4), 4, rng.randint(2, 3))
        if cover.is_zero() or cover.is_one_cube():
            cover = Cover.parse("ab' + cd", ["a", "b", "c", "d"])
        t_name = f"t{j}"
        node = net.add_node(t_name, fanins, cover)
        node.prune_unused_fanins()
        net.add_po(t_name)
    return net


def _random_sum_term(
    rng: random.Random, variables: Sequence[int], num_vars: int
) -> Cube:
    """A random sum term encoded as the cube of its (dual) literals.

    The returned cube is a cube of the function's *complement*: the
    sum term ``a + b'`` is encoded as the dual cube ``a'b``.
    """
    width = rng.randint(2, min(3, len(variables)))
    literals = {}
    for var in rng.sample(list(variables), width):
        literals[var] = rng.random() < 0.5
    return Cube.from_literals(literals.items())


def planted_pos_network(
    name: str,
    seed: int,
    n_pis: int = 9,
    n_divisors: int = 3,
    n_targets: int = 5,
) -> Network:
    """A random network with *product-of-sums* structure planted in.

    Divisors are products of a few sum terms; targets are products of
    a subset of a divisor's sum terms (the POS core) with extra sum
    terms.  Only the POS-form machinery (basic POS division, POS
    extended division) can exploit these — the SOP view sees wide,
    unstructured covers.
    """
    rng = random.Random(seed)
    net = Network(name)
    pis = [f"x{i}" for i in range(n_pis)]
    for pi in pis:
        net.add_pi(pi)

    divisor_duals: List[List[Cube]] = []
    for i in range(n_divisors):
        support = rng.sample(range(n_pis), rng.randint(4, min(6, n_pis)))
        terms = [
            _random_sum_term(rng, support, n_pis)
            for _ in range(rng.randint(2, 3))
        ]
        published = list(terms)
        if rng.random() < 0.5:
            # Fat POS divisor: an extra sum term only extended
            # division can strip away.
            published.append(_random_sum_term(rng, support, n_pis))
        dual = Cover(n_pis, published).single_cube_containment()
        cover = complement(dual)
        if cover.is_zero() or cover.is_one_cube():
            dual = Cover(n_pis, terms[:1])
            cover = complement(dual)
        g_name = f"g{i}"
        node = net.add_node(g_name, pis, cover)
        node.prune_unused_fanins()
        divisor_duals.append(list(dual.cubes))
        net.add_po(g_name)

    for j in range(n_targets):
        idx = rng.randrange(n_divisors)
        duals = divisor_duals[idx]
        core_size = rng.randint(
            2, max(2, len(duals) - (1 if len(duals) > 2 else 0))
        )
        core_terms = rng.sample(duals, min(core_size, len(duals)))
        extra_support = list(range(n_pis))
        extra_terms = [
            _random_sum_term(rng, extra_support, n_pis)
            for _ in range(rng.randint(1, 2))
        ]
        dual = Cover(n_pis, core_terms + extra_terms)
        dual = dual.single_cube_containment()
        cover = complement(dual)
        if cover.is_zero() or cover.is_one_cube():
            cover = complement(Cover(n_pis, core_terms))
        if cover.is_zero() or cover.is_one_cube():
            continue
        f_name = f"f{j}"
        node = net.add_node(f_name, pis, cover)
        node.prune_unused_fanins()
        net.add_po(f_name)
    return net
