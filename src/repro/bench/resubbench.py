"""Engine-vs-engine benchmark: simguided resubstitution vs division.

Runs :func:`~repro.core.substitution.substitute_network` twice per
circuit — ``method="division"`` (the paper-faithful BASIC
configuration) and ``method="simguided"`` (:mod:`repro.resub`) — and
reports, per circuit: final literal counts of both engines, exact
equivalence of both results against the input (the cross-engine
invariant the differential suite locks in), ``boolean_divide``
invocations saved (the simguided engine makes none — its work shows
up in the ``resub.*`` counters instead), and the wall-clock ratio.
:func:`run_resub_benchmark` writes the comparison as JSON
(``BENCH_resub.json``) and appends the simguided run's metrics
snapshot to the cross-PR run history.
"""

from __future__ import annotations

import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.suite import build_benchmark
from repro.core.config import BASIC, SIMGUIDED, DivisionConfig
from repro.core.substitution import substitute_network
from repro.network.network import Network
from repro.network.verify import exact_equivalent
from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    append_record,
    make_record,
)
from repro.obs.metrics import run_snapshot

#: Default output location: ``benchmarks/results/BENCH_resub.json``
#: at the repository root.
DEFAULT_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_resub.json"
)

#: The headline circuits: rnd8 exercises the BDD validation path,
#: add10 (21 PIs) the SAT miter path, pri10 the candidate-heavy
#: control-logic regime.
DEFAULT_CIRCUITS = ("rnd8", "add10", "pri10")


def run_engine(
    network: Network, config: DivisionConfig
) -> Dict[str, object]:
    """One run on *network* (mutated in place); flat stats."""
    start = time.perf_counter()
    stats = substitute_network(network, config)
    elapsed = time.perf_counter() - start
    return {
        "snapshot": run_snapshot(stats),
        "literals_before": stats.literals_before,
        "literals_after": stats.literals_after,
        "seconds": elapsed,
        "accepted": stats.accepted,
        "divide_calls": stats.divide_calls,
        "resub_candidates": stats.resub_candidates,
        "resub_validated": stats.resub_validated,
        "resub_accepted": stats.resub_accepted,
        "sat_solves": stats.sat_solves,
    }


def compare_engines(
    network: Network,
    division_config: DivisionConfig = BASIC,
    simguided_config: DivisionConfig = SIMGUIDED,
) -> Dict[str, object]:
    """Division-vs-simguided comparison on copies of *network*."""
    reference = network.copy(network.name)
    division_net = network.copy(network.name)
    division = run_engine(division_net, division_config)
    simguided_net = network.copy(network.name)
    simguided = run_engine(simguided_net, simguided_config)
    return {
        "circuit": network.name,
        "division": division,
        "simguided": simguided,
        # The standing correctness oracle: both engines' outputs must
        # be exactly equivalent to the untouched input (and therefore
        # to each other).
        "division_equivalent": exact_equivalent(reference, division_net),
        "simguided_equivalent": exact_equivalent(
            reference, simguided_net
        ),
        "divide_calls_saved": division["divide_calls"]
        - simguided["divide_calls"],
        "wall_ratio": simguided["seconds"]
        / max(1e-9, division["seconds"]),
    }


def run_resub_benchmark(
    names: Sequence[str] = DEFAULT_CIRCUITS,
    division_config: DivisionConfig = BASIC,
    simguided_config: DivisionConfig = SIMGUIDED,
    output_path: Optional[pathlib.Path] = None,
    history_path: Union[str, pathlib.Path, None] = DEFAULT_HISTORY_PATH,
) -> Dict[str, object]:
    """Run :func:`compare_engines` over the named circuits; write JSON.

    The simguided run of each circuit is appended to the run history
    (pass ``history_path=None`` to skip); the per-run snapshots are
    popped from the JSON report — the history ledger is their
    long-term home.
    """
    rows: List[Dict[str, object]] = [
        compare_engines(
            build_benchmark(name), division_config, simguided_config
        )
        for name in names
    ]
    for row in rows:
        row["division"].pop("snapshot")
        snapshot = row["simguided"].pop("snapshot")
        if history_path is not None:
            append_record(
                make_record(
                    bench="resubbench",
                    circuit=row["circuit"],
                    metrics=snapshot,
                    config=simguided_config,
                    wall_seconds=row["simguided"]["seconds"],
                    extra={
                        "division_literals": row["division"][
                            "literals_after"
                        ],
                        "simguided_literals": row["simguided"][
                            "literals_after"
                        ],
                        "divide_calls_saved": row["divide_calls_saved"],
                        "wall_ratio": row["wall_ratio"],
                    },
                ),
                path=history_path,
            )
    report = {
        "benchmark": "resub",
        "division_mode": division_config.mode,
        "sim_patterns": simguided_config.sim_patterns,
        "circuits": rows,
        "all_equivalent": all(
            r["division_equivalent"] and r["simguided_equivalent"]
            for r in rows
        ),
    }
    path = output_path or DEFAULT_RESULT_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report
