"""Benchmark circuits for the experiments.

MCNC/ISCAS netlists are not redistributable here, so the suite is a
deterministic synthetic stand-in (see DESIGN.md):

* structured arithmetic/control blocks (adders, carry-lookahead,
  comparators, decoders, parity, muxes, ALU slices) — realistic
  multilevel logic with sharing and reconvergence, and
* seeded random networks with *planted divisors*: node functions built
  by Boolean-composing hidden sub-functions and re-minimizing with
  espresso, which destroys the algebraic structure while keeping the
  Boolean divisibility the paper's method exploits.
"""

from repro.bench.generators import (
    ripple_adder,
    carry_lookahead_adder,
    comparator,
    decoder,
    parity,
    mux_tree,
    alu_slice,
    priority_encoder,
    majority_voter,
    planted_network,
    planted_pos_network,
)
from repro.bench.suite import benchmark_suite, build_benchmark

__all__ = [
    "ripple_adder",
    "carry_lookahead_adder",
    "comparator",
    "decoder",
    "parity",
    "mux_tree",
    "alu_slice",
    "priority_encoder",
    "majority_voter",
    "planted_network",
    "planted_pos_network",
    "benchmark_suite",
    "build_benchmark",
]
