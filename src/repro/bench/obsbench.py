"""Disabled-tracer overhead benchmark (``BENCH_obs_overhead.json``).

The obs subsystem promises that tracing *disabled* (the default) costs
(near) nothing.  Wall-clock A/B timing of one run cannot resolve a
sub-percent delta over OS noise, so the overhead is bounded
analytically instead:

1. run once with an enabled tracer to count exactly how many spans the
   circuit's optimization emits (the instrumentation sites executed);
2. microbenchmark the disabled path — one ``NULL_TRACER.span()``
   context entry/exit — over millions of iterations;
3. overhead ≤ span_count × null_span_cost / disabled_wall_seconds.

The report also records the raw disabled/enabled wall times (for
eyeballing) and asserts output parity between the two runs, which is
the other half of the "pure observer" contract.

A second arm bounds the *live* telemetry path the same way: the
per-event cost of everything ``--live`` adds on top of tracing —
``TelemetryBus.publish`` fanning out to a bounded subscription and a
:class:`~repro.obs.live.LiveProgress` fold — is microbenchmarked by
:func:`bus_event_cost` and multiplied by the span count, giving
``live_overhead_bound`` (gated at :data:`LIVE_OVERHEAD_BOUND`).  The
streaming JSONL sink is *not* part of that bound: it writes the same
``json.dumps(event, sort_keys=True)`` bytes the write-at-end export
always paid, just at span-close time instead of run end; its measured
per-event cost is recorded informationally
(``streaming_event_cost_ns``) so a serialization regression stays
visible.

**Measurement bias:** a single disabled-then-enabled pass charges all
process warm-up (allocator growth, lazy imports, cache population) to
whichever arm runs first — an early revision recorded
``disabled_wall_seconds`` *larger* than ``enabled_wall_seconds`` for
exactly that reason.  :func:`measure_circuit` therefore alternates the
A/B order across repeats and reports the **minimum** wall per arm
(min-of-N is the standard estimator for the noise-free cost of a
deterministic computation); the raw samples are kept in the report so
the ordering artifact stays visible.

Each benchmark run also appends a record (the enabled run's metrics
snapshot plus machine/git/config provenance) to the cross-PR run
history, ``benchmarks/results/history.jsonl``.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import timeit
from typing import Dict, Optional, Sequence, Tuple, Union

from repro.bench.suite import build_benchmark
from repro.core.config import DivisionConfig, EXTENDED
from repro.core.substitution import substitute_network
from repro.network.blif import to_blif_str
from repro.obs.history import DEFAULT_HISTORY_PATH, append_record, make_record
from repro.obs.metrics import run_snapshot
from repro.obs.tracer import NULL_TRACER, Tracer

DEFAULT_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_obs_overhead.json"
)

#: The acceptance bound: disabled tracing must cost < 2% wall.
OVERHEAD_BOUND = 0.02

#: The live-telemetry bound: publishing every span through the
#: enabled bus (fan-out to subscribers + the progress-line fold) must
#: also cost < 2% of the disabled run's wall time.
LIVE_OVERHEAD_BOUND = 0.02

#: A/B repeats per circuit (order alternates every repeat).
DEFAULT_REPEATS = 3


def null_span_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled-span entry/exit (median of 5 repeats)."""
    timer = timeit.Timer(
        "\n".join(
            [
                "with tracer.span('pair', f='a', d='b') as s:",
                "    s.annotate(pruned=False)",
            ]
        ),
        globals={"tracer": NULL_TRACER},
    )
    samples = sorted(
        timer.timeit(iterations) / iterations for _ in range(5)
    )
    return samples[len(samples) // 2]


_SAMPLE_EVENT = {
    "v": 1,
    "kind": "pair",
    "id": 1234,
    "parent": 7,
    "proc": "main",
    "start": 0.123456,
    "end": 0.234567,
    "dur": 0.111111,
    "cpu": 0.1,
    "attrs": {"fanin": "a", "divisor": "b", "pruned": False},
}


def _median_per_call(sink, iterations: int) -> float:
    timer = timeit.Timer(
        "sink(event)", globals={"sink": sink, "event": _SAMPLE_EVENT}
    )
    samples = sorted(
        timer.timeit(iterations) / iterations for _ in range(5)
    )
    return samples[len(samples) // 2]


def bus_event_cost(iterations: int = 20_000) -> float:
    """Seconds per event through the enabled ``--live`` bus path.

    Exactly what ``--live`` adds per recorded span on top of tracing:
    ``TelemetryBus.publish`` fanning out to one bounded subscription
    and a rate-limited :class:`~repro.obs.live.LiveProgress` fold
    (writing to a sink stream).  Median of 5 repeats.
    """
    import io

    from repro.obs.live import LiveProgress
    from repro.obs.stream import TelemetryBus

    bus = TelemetryBus()
    bus.subscribe()
    bus.attach(LiveProgress(stream=io.StringIO()).on_event)
    cost = _median_per_call(bus.publish, iterations)
    bus.close()
    return cost


def streaming_event_cost(iterations: int = 20_000) -> float:
    """Seconds per event through the streaming JSONL sink.

    Informational (not gated): the serialization work is the same the
    write-at-end export always did — streaming only moves it to
    span-close time and adds a per-line flush.
    """
    import tempfile

    from repro.obs.stream import StreamingJsonlSink

    with tempfile.NamedTemporaryFile(
        mode="w", suffix=".jsonl", delete=True
    ) as handle:
        with StreamingJsonlSink(handle.name) as file_sink:
            return _median_per_call(file_sink, iterations)


def _timed_run(
    name: str, config: DivisionConfig, tracer: Optional[Tracer]
) -> Tuple[float, str, object]:
    """One fresh-build run; returns (wall, blif, stats)."""
    network = build_benchmark(name)
    start = time.perf_counter()
    if tracer is None:
        stats = substitute_network(network, config)
    else:
        stats = substitute_network(network, config, tracer=tracer)
    wall = time.perf_counter() - start
    return wall, to_blif_str(network), stats


def measure_circuit(
    name: str,
    config: DivisionConfig = EXTENDED,
    repeats: int = DEFAULT_REPEATS,
) -> Tuple[Dict[str, object], object]:
    """Overhead report for one circuit, warm-up-bias corrected.

    Runs *repeats* disabled/enabled pairs, alternating which arm goes
    first, and takes the per-arm minimum — so process warm-up (paid
    once, by the very first run) cannot masquerade as tracer overhead
    on either side.  Returns ``(report_row, stats)`` where *stats* is
    the final enabled run's :class:`SubstitutionStats` (for the run
    history).
    """
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    disabled_walls: list = []
    enabled_walls: list = []
    outputs_identical = True
    tracer = None
    stats = None
    for repeat in range(repeats):
        order = (
            ("disabled", "enabled")
            if repeat % 2 == 0
            else ("enabled", "disabled")
        )
        blifs: Dict[str, str] = {}
        for arm in order:
            if arm == "disabled":
                wall, blifs[arm], _ = _timed_run(name, config, None)
                disabled_walls.append(wall)
            else:
                tracer = Tracer()
                wall, blifs[arm], stats = _timed_run(
                    name, config, tracer
                )
                enabled_walls.append(wall)
        outputs_identical = outputs_identical and (
            blifs["disabled"] == blifs["enabled"]
        )

    disabled_wall = min(disabled_walls)
    enabled_wall = min(enabled_walls)
    span_cost = null_span_cost()
    live_cost = bus_event_cost()
    spans = len(tracer.events)
    bound = (spans * span_cost) / disabled_wall if disabled_wall else 0.0
    live_bound = (
        (spans * live_cost) / disabled_wall if disabled_wall else 0.0
    )
    row = {
        "circuit": name,
        "spans": spans,
        "repeats": repeats,
        "null_span_cost_ns": span_cost * 1e9,
        "bus_event_cost_ns": live_cost * 1e9,
        "streaming_event_cost_ns": streaming_event_cost() * 1e9,
        "disabled_wall_seconds": disabled_wall,
        "enabled_wall_seconds": enabled_wall,
        "disabled_wall_samples": disabled_walls,
        "enabled_wall_samples": enabled_walls,
        "overhead_bound": bound,
        "live_overhead_bound": live_bound,
        "output_identical": outputs_identical,
    }
    return row, stats


def run_obs_overhead_benchmark(
    circuits: Sequence[str] = ("rnd8",),
    result_path: Optional[pathlib.Path] = None,
    config: DivisionConfig = EXTENDED,
    repeats: int = DEFAULT_REPEATS,
    history_path: Union[str, pathlib.Path, None] = DEFAULT_HISTORY_PATH,
) -> Dict[str, object]:
    """Measure every circuit, write the JSON report, record history.

    Pass ``history_path=None`` to skip the run-history append.
    """
    rows = []
    for name in circuits:
        row, stats = measure_circuit(name, config=config, repeats=repeats)
        rows.append(row)
        if history_path is not None:
            append_record(
                make_record(
                    bench="obsbench",
                    circuit=name,
                    metrics=run_snapshot(stats),
                    config=config,
                    wall_seconds=row["disabled_wall_seconds"],
                    extra={
                        "spans": row["spans"],
                        "overhead_bound": row["overhead_bound"],
                    },
                ),
                path=history_path,
            )
    report = {
        "benchmark": "obs_overhead",
        "bound": OVERHEAD_BOUND,
        "live_bound": LIVE_OVERHEAD_BOUND,
        "machine": {"cpu_count": os.cpu_count()},
        "circuits": rows,
        "max_overhead_bound": max(r["overhead_bound"] for r in rows),
        "max_live_overhead_bound": max(
            r["live_overhead_bound"] for r in rows
        ),
        "all_outputs_identical": all(r["output_identical"] for r in rows),
    }
    path = pathlib.Path(result_path or DEFAULT_RESULT_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
