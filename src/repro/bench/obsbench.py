"""Disabled-tracer overhead benchmark (``BENCH_obs_overhead.json``).

The obs subsystem promises that tracing *disabled* (the default) costs
(near) nothing.  Wall-clock A/B timing of one run cannot resolve a
sub-percent delta over OS noise, so the overhead is bounded
analytically instead:

1. run once with an enabled tracer to count exactly how many spans the
   circuit's optimization emits (the instrumentation sites executed);
2. microbenchmark the disabled path — one ``NULL_TRACER.span()``
   context entry/exit — over millions of iterations;
3. overhead ≤ span_count × null_span_cost / disabled_wall_seconds.

The report also records the raw disabled/enabled wall times (for
eyeballing) and asserts output parity between the two runs, which is
the other half of the "pure observer" contract.
"""

from __future__ import annotations

import json
import os
import pathlib
import time
import timeit
from typing import Dict, Optional, Sequence

from repro.bench.suite import build_benchmark
from repro.core.config import DivisionConfig, EXTENDED
from repro.core.substitution import substitute_network
from repro.network.blif import to_blif_str
from repro.obs.tracer import NULL_TRACER, Tracer

DEFAULT_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_obs_overhead.json"
)

#: The acceptance bound: disabled tracing must cost < 2% wall.
OVERHEAD_BOUND = 0.02


def null_span_cost(iterations: int = 200_000) -> float:
    """Seconds per disabled-span entry/exit (median of 5 repeats)."""
    timer = timeit.Timer(
        "\n".join(
            [
                "with tracer.span('pair', f='a', d='b') as s:",
                "    s.annotate(pruned=False)",
            ]
        ),
        globals={"tracer": NULL_TRACER},
    )
    samples = sorted(
        timer.timeit(iterations) / iterations for _ in range(5)
    )
    return samples[len(samples) // 2]


def measure_circuit(
    name: str, config: DivisionConfig = EXTENDED
) -> Dict[str, object]:
    """Overhead report for one benchmark circuit."""
    disabled_net = build_benchmark(name)
    start = time.perf_counter()
    substitute_network(disabled_net, config)
    disabled_wall = time.perf_counter() - start

    traced_net = build_benchmark(name)
    tracer = Tracer()
    start = time.perf_counter()
    substitute_network(traced_net, config, tracer=tracer)
    enabled_wall = time.perf_counter() - start

    span_cost = null_span_cost()
    spans = len(tracer.events)
    bound = (spans * span_cost) / disabled_wall if disabled_wall else 0.0
    return {
        "circuit": name,
        "spans": spans,
        "null_span_cost_ns": span_cost * 1e9,
        "disabled_wall_seconds": disabled_wall,
        "enabled_wall_seconds": enabled_wall,
        "overhead_bound": bound,
        "output_identical": to_blif_str(disabled_net)
        == to_blif_str(traced_net),
    }


def run_obs_overhead_benchmark(
    circuits: Sequence[str] = ("rnd8",),
    result_path: Optional[pathlib.Path] = None,
) -> Dict[str, object]:
    """Measure every circuit and write the JSON report."""
    rows = [measure_circuit(name) for name in circuits]
    report = {
        "benchmark": "obs_overhead",
        "bound": OVERHEAD_BOUND,
        "machine": {"cpu_count": os.cpu_count()},
        "circuits": rows,
        "max_overhead_bound": max(r["overhead_bound"] for r in rows),
        "all_outputs_identical": all(r["output_identical"] for r in rows),
    }
    path = pathlib.Path(result_path or DEFAULT_RESULT_PATH)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w") as handle:
        json.dump(report, handle, indent=2)
        handle.write("\n")
    return report
