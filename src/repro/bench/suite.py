"""The named benchmark suite used by every experiment table.

A deterministic stand-in for the paper's MCNC/ISCAS list (see
DESIGN.md): structured arithmetic/control blocks plus seeded random
networks with planted Boolean-divisible structure.  Sizes are chosen so
the full four-table harness completes in minutes of pure Python.
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.network.network import Network
from repro.bench import generators as g

BenchmarkBuilder = Callable[[], Network]

_SUITE: Dict[str, BenchmarkBuilder] = {
    "add6": lambda: g.ripple_adder(6),
    "cla4": lambda: g.carry_lookahead_adder(4),
    "cmp6": lambda: g.comparator(6),
    "dec3": lambda: g.decoder(3),
    "par8": lambda: g.parity(8),
    "mux3": lambda: g.mux_tree(3),
    "alu3": lambda: g.alu_slice(3),
    "pri6": lambda: g.priority_encoder(6),
    "maj5": lambda: g.majority_voter(5),
    "rnd1": lambda: g.planted_network("rnd1", seed=11, n_pis=9, n_divisors=3, n_targets=5),
    "rnd2": lambda: g.planted_network("rnd2", seed=23, n_pis=10, n_divisors=4, n_targets=6),
    "rnd3": lambda: g.planted_network("rnd3", seed=37, n_pis=8, n_divisors=3, n_targets=6),
    "rnd4": lambda: g.planted_network("rnd4", seed=51, n_pis=11, n_divisors=4, n_targets=7),
    "rnd5": lambda: g.planted_network("rnd5", seed=67, n_pis=9, n_divisors=4, n_targets=5),
    "rnd6": lambda: g.planted_network("rnd6", seed=83, n_pis=10, n_divisors=5, n_targets=6),
    "rnd7": lambda: g.planted_network("rnd7", seed=97, n_pis=13, n_divisors=5, n_targets=9),
    "rnd8": lambda: g.planted_network("rnd8", seed=113, n_pis=14, n_divisors=6, n_targets=10),
    "pos1": lambda: g.planted_pos_network("pos1", seed=101, n_pis=9, n_divisors=3, n_targets=5),
    "pos2": lambda: g.planted_pos_network("pos2", seed=202, n_pis=9, n_divisors=3, n_targets=5),
    "pos3": lambda: g.planted_pos_network("pos3", seed=307, n_pis=11, n_divisors=4, n_targets=7),
    "add10": lambda: g.ripple_adder(10),
    "cla8": lambda: g.carry_lookahead_adder(8),
    "cmp10": lambda: g.comparator(10),
    "dec4": lambda: g.decoder(4),
    "mux4": lambda: g.mux_tree(4),
    "alu4": lambda: g.alu_slice(4),
    "pri10": lambda: g.priority_encoder(10),
    "maj7": lambda: g.majority_voter(7),
}

#: A smaller subset for quick smoke runs (CI and pytest-benchmark).
QUICK_NAMES: List[str] = [
    "add6", "cmp6", "dec3", "mux3", "rnd1", "rnd3", "pos2",
]


def benchmark_names() -> List[str]:
    """All suite circuit names, in table order."""
    return list(_SUITE)


def benchmark_suite(quick: bool = False) -> List[str]:
    """Names of the suite circuits (quick subset if requested)."""
    return list(QUICK_NAMES) if quick else benchmark_names()


def build_benchmark(name: str) -> Network:
    """Construct a fresh copy of a suite circuit by name."""
    try:
        builder = _SUITE[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; known: {', '.join(_SUITE)}"
        ) from None
    return builder()
