"""Before/after benchmark for the simulation-signature divisor filter.

Runs :func:`~repro.core.substitution.substitute_network` twice per
circuit — with ``enable_sim_filter`` off and on — and reports literal
parity (the filter is sound, so final literal counts must match
exactly), the reduction in ``boolean_divide`` invocations, and the
wall-clock speedup.  :func:`run_sim_filter_benchmark` writes the whole
comparison as JSON (``BENCH_sim_filter.json``) for tracking across
revisions.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence

from repro.bench.suite import build_benchmark
from repro.core.config import BASIC, DivisionConfig
from repro.core.substitution import substitute_network
from repro.network.network import Network

#: Default output location: ``benchmarks/results/BENCH_sim_filter.json``
#: at the repository root.
DEFAULT_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_sim_filter.json"
)


def run_circuit(network: Network, config: DivisionConfig) -> Dict[str, float]:
    """One substitution run on *network* (mutated in place); flat stats."""
    start = time.perf_counter()
    stats = substitute_network(network, config)
    elapsed = time.perf_counter() - start
    return {
        "literals_before": stats.literals_before,
        "literals_after": stats.literals_after,
        "seconds": elapsed,
        "attempts": stats.attempts,
        "divide_calls": stats.divide_calls,
        "divisors_pruned": stats.divisors_pruned,
        "variants_pruned": stats.variants_pruned,
        "cache_hits": stats.sim_cache_hits,
        "cache_misses": stats.sim_cache_misses,
        "resim_nodes": stats.resim_nodes,
        "accepted": stats.accepted,
    }


def compare_on(
    network: Network, config: DivisionConfig = BASIC
) -> Dict[str, object]:
    """Filtered-vs-unfiltered comparison on copies of *network*."""
    off = run_circuit(
        network.copy(network.name),
        dataclasses.replace(config, enable_sim_filter=False),
    )
    on = run_circuit(
        network.copy(network.name),
        dataclasses.replace(config, enable_sim_filter=True),
    )
    return {
        "circuit": network.name,
        "unfiltered": off,
        "filtered": on,
        "literal_parity": off["literals_after"] == on["literals_after"],
        "divide_call_ratio": off["divide_calls"]
        / max(1, on["divide_calls"]),
        "speedup": off["seconds"] / max(1e-9, on["seconds"]),
    }


def run_sim_filter_benchmark(
    names: Sequence[str],
    config: DivisionConfig = BASIC,
    output_path: Optional[pathlib.Path] = None,
) -> Dict[str, object]:
    """Run :func:`compare_on` over the named suite circuits; write JSON."""
    rows: List[Dict[str, object]] = [
        compare_on(build_benchmark(name), config) for name in names
    ]
    report = {
        "benchmark": "sim_filter",
        "config_mode": config.mode,
        "sim_patterns": config.sim_patterns,
        "circuits": rows,
        "all_literal_parity": all(r["literal_parity"] for r in rows),
        "mean_divide_call_ratio": (
            sum(r["divide_call_ratio"] for r in rows) / len(rows)
            if rows
            else 0.0
        ),
    }
    path = output_path or DEFAULT_RESULT_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report
