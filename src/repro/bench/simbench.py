"""Before/after benchmark for the simulation-signature divisor filter.

Runs :func:`~repro.core.substitution.substitute_network` twice per
circuit — with ``enable_sim_filter`` off and on — and reports literal
parity (the filter is sound, so final literal counts must match
exactly), the reduction in ``boolean_divide`` invocations, and the
wall-clock speedup.  :func:`run_sim_filter_benchmark` writes the whole
comparison as JSON (``BENCH_sim_filter.json``) and appends the
filtered run's metrics snapshot to the cross-PR run history
(``benchmarks/results/history.jsonl``) for tracking across revisions.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import time
from typing import Dict, List, Optional, Sequence, Union

from repro.bench.suite import build_benchmark
from repro.core.config import BASIC, DivisionConfig
from repro.core.substitution import substitute_network
from repro.network.network import Network
from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    append_record,
    make_record,
)
from repro.obs.metrics import run_snapshot

#: Default output location: ``benchmarks/results/BENCH_sim_filter.json``
#: at the repository root.
DEFAULT_RESULT_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "BENCH_sim_filter.json"
)


def run_circuit(network: Network, config: DivisionConfig) -> Dict[str, float]:
    """One substitution run on *network* (mutated in place); flat stats."""
    start = time.perf_counter()
    stats = substitute_network(network, config)
    elapsed = time.perf_counter() - start
    return {
        "snapshot": run_snapshot(stats),
        "literals_before": stats.literals_before,
        "literals_after": stats.literals_after,
        "seconds": elapsed,
        "attempts": stats.attempts,
        "divide_calls": stats.divide_calls,
        "divisors_pruned": stats.divisors_pruned,
        "variants_pruned": stats.variants_pruned,
        "cache_hits": stats.sim_cache_hits,
        "cache_misses": stats.sim_cache_misses,
        "resim_nodes": stats.resim_nodes,
        "accepted": stats.accepted,
    }


def compare_on(
    network: Network, config: DivisionConfig = BASIC
) -> Dict[str, object]:
    """Filtered-vs-unfiltered comparison on copies of *network*."""
    off = run_circuit(
        network.copy(network.name),
        dataclasses.replace(config, enable_sim_filter=False),
    )
    on = run_circuit(
        network.copy(network.name),
        dataclasses.replace(config, enable_sim_filter=True),
    )
    return {
        "circuit": network.name,
        "unfiltered": off,
        "filtered": on,
        "literal_parity": off["literals_after"] == on["literals_after"],
        "divide_call_ratio": off["divide_calls"]
        / max(1, on["divide_calls"]),
        "speedup": off["seconds"] / max(1e-9, on["seconds"]),
    }


def run_sim_filter_benchmark(
    names: Sequence[str],
    config: DivisionConfig = BASIC,
    output_path: Optional[pathlib.Path] = None,
    history_path: Union[str, pathlib.Path, None] = DEFAULT_HISTORY_PATH,
) -> Dict[str, object]:
    """Run :func:`compare_on` over the named suite circuits; write JSON.

    The filtered (production-configuration) run of each circuit is
    also appended to the run history — pass ``history_path=None`` to
    skip.  The per-run snapshots are popped from the JSON report: the
    history ledger is their long-term home.
    """
    rows: List[Dict[str, object]] = [
        compare_on(build_benchmark(name), config) for name in names
    ]
    filtered_config = dataclasses.replace(config, enable_sim_filter=True)
    for row in rows:
        row["unfiltered"].pop("snapshot")
        on_snapshot = row["filtered"].pop("snapshot")
        if history_path is not None:
            append_record(
                make_record(
                    bench="simbench",
                    circuit=row["circuit"],
                    metrics=on_snapshot,
                    config=filtered_config,
                    wall_seconds=row["filtered"]["seconds"],
                    extra={
                        "divide_call_ratio": row["divide_call_ratio"],
                        "speedup": row["speedup"],
                        "literal_parity": row["literal_parity"],
                    },
                ),
                path=history_path,
            )
    report = {
        "benchmark": "sim_filter",
        "config_mode": config.mode,
        "sim_patterns": config.sim_patterns,
        "circuits": rows,
        "all_literal_parity": all(r["literal_parity"] for r in rows),
        "mean_divide_call_ratio": (
            sum(r["divide_call_ratio"] for r in rows) / len(rows)
            if rows
            else 0.0
        ),
    }
    path = output_path or DEFAULT_RESULT_PATH
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2) + "\n")
    return report
