"""Divisor windows for simulation-guided resubstitution.

A *window* for a target node ``f`` is a small, ordered pool of
signals whose signatures the resynthesis core may combine into a
replacement function for ``f``.  Any signal outside ``f``'s
transitive fanout is structurally legal (using it cannot create a
cycle); the ranking below decides which few of those legal signals
are worth enumerating subsets over.

Ranking is pure structure — no randomness, no hashes over unordered
sets — so the engine's output is deterministic for a given network:

1. ``f``'s current fanins come first (re-expressing a node over its
   own support is the cheapest win and what classic resubstitution
   tries before anything else),
2. then signals whose PI support overlaps ``f``'s cone the most
   (shared support is a necessary condition for a useful divisor —
   a signal over disjoint PIs can only contribute as a constant),
3. ties broken by topological position (earlier first), which is
   itself deterministic because :meth:`Network.topo_order` follows
   creation order.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional, Set, Tuple

from repro.core.config import DivisionConfig
from repro.network.network import Network


@dataclasses.dataclass(frozen=True)
class Window:
    """An ordered divisor pool for one target node."""

    target: str
    #: Candidate divisor names, best-ranked first, already truncated
    #: to ``config.resub_window_size``.
    divisors: Tuple[str, ...]


def pi_supports(network: Network) -> Dict[str, Set[str]]:
    """PI support of every signal, in one topological sweep."""
    supports: Dict[str, Set[str]] = {}
    for name in network.topo_order():
        node = network.nodes[name]
        if node.is_pi:
            supports[name] = {name}
        else:
            acc: Set[str] = set()
            for fanin in node.fanins:
                acc |= supports[fanin]
            supports[name] = acc
    return supports


def build_window(
    network: Network,
    f_name: str,
    config: DivisionConfig,
    *,
    topo_index: Optional[Dict[str, int]] = None,
    supports: Optional[Dict[str, Set[str]]] = None,
) -> Window:
    """Collect and rank divisor candidates for *f_name*.

    *topo_index* and *supports* are per-network maps the engine
    precomputes once per pass; they are recomputed here when omitted
    (the standalone/test path).
    """
    if topo_index is None:
        topo_index = {n: i for i, n in enumerate(network.topo_order())}
    if supports is None:
        supports = pi_supports(network)

    f_node = network.nodes[f_name]
    f_support = supports[f_name]
    f_fanins = set(f_node.fanins)
    # Everything that (transitively) reads f is off limits: wiring it
    # into f's new function would create a combinational cycle.
    excluded = network.transitive_fanout(f_name)
    excluded.add(f_name)

    ranked = []
    for name in topo_index:
        if name in excluded:
            continue
        node = network.nodes[name]
        if node.is_constant():
            # The resynthesis core already tries both constants via
            # the empty divisor subset; a constant divisor only
            # duplicates that.
            continue
        overlap = len(supports[name] & f_support)
        if overlap == 0 and name not in f_fanins:
            continue  # disjoint support: can never help
        rank = (
            0 if name in f_fanins else 1,
            -overlap,
            topo_index[name],
        )
        ranked.append((rank, name))
    ranked.sort()
    pool = tuple(name for _, name in ranked[: config.resub_window_size])
    return Window(target=f_name, divisors=pool)
