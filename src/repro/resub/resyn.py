"""Truth-table resynthesis over divisor signatures.

Given the packed simulation signature of a target node, the signatures
of ``k`` candidate divisors, and a care mask (which sampled patterns
actually constrain the function), :func:`resynthesize_window` asks:
*is there a function of just these divisors that agrees with the
target on every care pattern?* — and if so, returns it as a minimized
:class:`~repro.twolevel.cover.Cover` over the divisors.

The construction is the classic simulation-guided one:

* every care pattern maps to a minterm of the divisor space (the
  divisor values under that pattern) and pins the function's value
  there to the target's value;
* a minterm pinned to both 0 and 1 by different care patterns is a
  **conflict** — the divisor set provably cannot express the target
  (on the samples), so the window is rejected without any exact work;
* minterms never reached by a care pattern are free: they join the
  don't-care set handed to espresso, which is where most of the
  literal savings come from.

Agreement on the sampled patterns proves nothing about the function —
exactly like the divisor filter's containment test, it is a cheap
one-way screen.  The engine (:mod:`repro.resub.engine`) validates
every surviving candidate exactly before committing it.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.twolevel.cover import Cover
from repro.twolevel.minimize import espresso


def resynthesize_window(
    target_sig: int,
    divisor_sigs: Sequence[int],
    mask: int,
    care_mask: Optional[int] = None,
) -> Optional[Cover]:
    """A cover over the divisors matching *target_sig* on care patterns.

    *mask* is the all-patterns bitmask (``(1 << patterns) - 1``);
    *care_mask* restricts which sampled patterns constrain the result
    (``None`` = all of them).  Returns ``None`` on a conflict — some
    divisor-value combination is pinned to both 0 and 1 — which proves
    no function of these divisors matches the target on the samples.

    The returned cover ``F`` satisfies ``on ⊆ F ⊆ on ∪ dc`` (espresso's
    contract), so it evaluates to the target's value on **every** care
    pattern: on-minterms are covered, off-minterms excluded, and
    unconstrained minterms may fall either way.
    """
    if care_mask is None:
        care_mask = mask
    care_mask &= mask
    k = len(divisor_sigs)
    if care_mask == 0:
        # Nothing constrains the function; the constant 0 is the
        # cheapest member of the (complete) equivalence class.
        return Cover.zero(k)

    # Partition the care patterns into divisor-space minterm classes
    # with bitwise ops: class_mask(m) = patterns where every divisor
    # takes the value bit m assigns it.
    on_minterms = []
    dc_minterms = []
    off_seen = False
    for m in range(1 << k):
        klass = care_mask
        for i in range(k):
            sig = divisor_sigs[i]
            klass &= sig if (m >> i) & 1 else ~sig
            if klass == 0:
                break
        if klass == 0:
            dc_minterms.append(m)
            continue
        ones = klass & target_sig
        if ones and klass & ~ones:
            return None  # conflict: minterm pinned to both values
        if ones:
            on_minterms.append(m)
        else:
            off_seen = True
    if not on_minterms:
        return Cover.zero(k)
    if not off_seen and not dc_minterms:
        return Cover.one(k)
    on = Cover.from_minterms(on_minterms, k)
    if not dc_minterms:
        return espresso(on)
    return espresso(on, Cover.from_minterms(dc_minterms, k))
