"""Simulation-guided Boolean resubstitution.

The second optimization engine of the repo (``DivisionConfig.method =
"simguided"``, CLI ``--method simguided``), following the shape of
"Simulation-Guided Boolean Resubstitution" (arXiv 2007.02579): instead
of *searching* for rewrites with Boolean division, it *constructs*
candidate replacement functions for each target node directly from the
bit-parallel simulation signatures (:mod:`repro.sim`) and validates
the few survivors exactly.

* :mod:`repro.resub.window` — per-target divisor windows collected
  from the maintained :class:`~repro.sim.signature.SignatureSimulator`,
* :mod:`repro.resub.resyn` — the truth-table resynthesis core: build
  a cover over ≤k divisor signatures that matches the target signature
  on every care pattern (don't-care-aware),
* :mod:`repro.resub.engine` — the run loop: windowing → resynthesis →
  ATPG literal cleanup → exact validation (``verify_backend``
  dispatch) → transactional commit through the shared
  :class:`~repro.resilience.checkpoint.CommitLedger` machinery.
"""

from repro.resub.resyn import resynthesize_window
from repro.resub.window import Window, build_window
from repro.resub.engine import simguided_substitute

__all__ = [
    "Window",
    "build_window",
    "resynthesize_window",
    "simguided_substitute",
]
