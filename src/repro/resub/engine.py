"""The simulation-guided resubstitution run loop.

``DivisionConfig.method = "simguided"`` routes
:func:`~repro.core.substitution.substitute_network` here.  The engine
keeps the division pipeline's outer contract — greedy first-win
acceptance, ``max_passes`` sweeps to a fixpoint, `RunBudget` clean
stops, `CommitLedger` transactional commits, tracer spans, one
:class:`~repro.core.substitution.SubstitutionStats` ledger — but finds
its rewrites the opposite way.  Division *searches* for a divisor
whose implication structure proves a rewrite; simulation-guided
resubstitution *constructs* a candidate function for each target
directly from signatures and then proves it:

1. **Window** (``resub_window`` span): rank the structurally legal
   divisors for the target (:mod:`repro.resub.window`).
2. **Resynthesize** (``resub_resyn`` span): enumerate divisor subsets
   smallest-first and build a cover matching the target's signature on
   every care pattern (:mod:`repro.resub.resyn`); the care set is the
   simulated patterns minus the target's exact observability don't
   cares when the network is small enough.  Satisfiability don't cares
   need no handling at all — unreachable fanin combinations never
   occur in simulation.
3. **Clean**: excitation-only ATPG redundancy removal on the candidate
   cover — a literal (cube) whose stuck-at fault cannot even be
   excited given the divisors' logic is dropped.  Untestable faults
   leave every PO function unchanged, so this is sound.
4. **Validate** (``resub_validate`` span): the candidate only agreed
   with the target on sampled patterns, which proves nothing, so every
   survivor is checked *exactly* against the pre-run reference through
   the ``verify_backend`` dispatch (BDD cones up to
   ``sat_pi_threshold`` PIs, the CNF miter above).  A SAT don't-know
   (exhausted conflict budget) **rejects** the candidate: unlike
   division — whose rewrites carry an a-priori redundancy argument and
   may degrade to a wide random screen — a simguided candidate has no
   proof behind it except this check, so an unknown keeps the old
   node.

Because every accepted commit is exactly equivalent to the pre-run
reference, the final network is exactly equivalent to the input by
construction — the property the cross-engine differential suite
(``tests/resub/``) locks in.
"""

from __future__ import annotations

import itertools
import time
import types
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.atpg.implication import Conflict, ImplicationEngine
from repro.atpg.learning import learn_implications
from repro.core.config import DivisionConfig
from repro.core.division import build_analysis_circuit, dividend_cube_signal
from repro.core.substitution import SubstitutionStats, _Snapshot
from repro.network.dontcares import DontCareComputer
from repro.network.factor import factored_literals, network_literals
from repro.network.network import Network, eval_cover_packed
from repro.network.verify import networks_equivalent
from repro.obs.tracer import NULL_TRACER, as_tracer
from repro.resilience.budget import BudgetExhausted, RunBudget
from repro.resilience.checkpoint import CommitLedger
from repro.resub.resyn import resynthesize_window
from repro.resub.window import build_window, pi_supports
from repro.sim.signature import SignatureSimulator
from repro.twolevel.cover import Cover


def _divisor_label(divisors: Sequence[str]) -> str:
    """Ledger/quarantine key for a divisor subset.

    The CommitLedger keys on ``(dividend, divisor)`` pairs; a resub
    commit's "divisor" is the whole subset, collapsed into one stable
    label so quarantine bars exactly the failing combination.
    """
    return "resub(" + ",".join(divisors) + ")"


class _CoverCleaner:
    """Excitation-only redundancy removal on a candidate cover.

    The division engine's ``_RegionRemover`` tests faults under the
    full division context (divisor phase, remainder cubes).  Here the
    candidate *is* the whole function, so the mandatory assignments
    are just the excitation-and-local-propagation conditions at the
    target's OR: the faulty cube's surviving literals at their phases,
    every other cube at 0, and — for a literal stuck-at-1 — the
    dropped literal's divisor at the opposite phase.  A conflict,
    propagated through the divisors' gates, proves the fault
    untestable at the target and therefore at every PO: removal is
    sound regardless of what the exact validation later decides.
    """

    def __init__(self, circuit, f_name, divisors, cover, config, budget):
        self.circuit = circuit
        self.f_name = f_name
        self.shared = list(divisors)
        self.region: Dict[int, object] = dict(enumerate(cover.cubes))
        self.config = config
        self.budget = budget
        self.removed = 0
        for i, cube in self.region.items():
            self._install_cube_gate(i, cube)

    def _install_cube_gate(self, index, cube) -> None:
        from repro.circuit.gate import Gate, GateKind

        name = dividend_cube_signal(self.f_name, index)
        inputs = [(self.shared[v], p) for v, p in cube.literals()]
        if name in self.circuit.gates:
            self.circuit.remove_gate(name)
        if inputs:
            self.circuit.add_and(name, inputs)
        else:
            self.circuit.add_gate(Gate(name, GateKind.CONST1))

    def _drop_cube_gate(self, index) -> None:
        name = dividend_cube_signal(self.f_name, index)
        if name in self.circuit.gates:
            self.circuit.remove_gate(name)

    def _conflicts(self, assignments) -> bool:
        engine = ImplicationEngine(self.circuit)
        try:
            engine.assign_many(assignments)
            engine.propagate()
            if self.config.learn_depth > 0:
                learn_implications(engine, self.config.learn_depth)
        except Conflict:
            return True
        return False

    def _base_assignments(self, active: int):
        return [
            (dividend_cube_signal(self.f_name, j), False)
            for j in self.region
            if j != active
        ]

    def _literal_removable(self, index, var, phase) -> bool:
        if self.budget is not None:
            self.budget.check_deadline()
        assignments = self._base_assignments(index)
        assignments.append((self.shared[var], not phase))
        for v, p in self.region[index].literals():
            if v != var:
                assignments.append((self.shared[v], p))
        return self._conflicts(assignments)

    def _cube_removable(self, index) -> bool:
        if self.budget is not None:
            self.budget.check_deadline()
        assignments = self._base_assignments(index)
        for v, p in self.region[index].literals():
            assignments.append((self.shared[v], p))
        return self._conflicts(assignments)

    def run(self) -> Cover:
        changed = True
        while changed:
            changed = False
            for index in sorted(self.region):
                cube = self.region[index]
                for var, phase in list(cube.literals()):
                    if self._literal_removable(index, var, phase):
                        cube = cube.without_var(var)
                        self.region[index] = cube
                        self._install_cube_gate(index, cube)
                        self.removed += 1
                        changed = True
                if len(self.region) > 1 and self._cube_removable(index):
                    del self.region[index]
                    self._drop_cube_gate(index)
                    self.removed += 1
                    changed = True
        return Cover(
            len(self.shared),
            tuple(self.region[i] for i in sorted(self.region)),
        )


def _clean_cover(
    network: Network,
    f_name: str,
    divisors: Sequence[str],
    cover: Cover,
    config: DivisionConfig,
    budget,
) -> Tuple[Cover, int]:
    """ATPG-clean a candidate cover; returns (cover, removals)."""
    if not divisors or cover.is_zero():
        return cover, 0
    if cover.num_cubes() > config.max_region_cubes:
        return cover, 0
    if all(network.nodes[d].is_pi for d in divisors):
        # Free PIs admit no implications, so no conflict can ever
        # arise; skip building the circuit.
        return cover, 0
    circuit = build_analysis_circuit(network, f_name, list(divisors), config)
    cleaner = _CoverCleaner(circuit, f_name, divisors, cover, config, budget)
    cleaned = cleaner.run()
    return cleaned, cleaner.removed


def _validate_exact(
    reference: Network,
    network: Network,
    config: DivisionConfig,
    stats: SubstitutionStats,
    tracer,
) -> Optional[bool]:
    """Exact whole-network check of the just-applied candidate.

    True/False are proofs; ``None`` means the SAT solve exhausted its
    conflict budget (don't-know) — the engine rejects on None.
    """
    n_pis = len(set(reference.pis) | set(network.pis))
    backend = config.verify_backend
    with tracer.span("resub_validate", pis=n_pis) as span:
        if backend == "bdd" or (
            backend == "auto" and n_pis <= config.sat_pi_threshold
        ):
            ok = networks_equivalent(reference, network)
            span.annotate(backend="bdd", ok=ok)
            return ok
        from repro.sat.check import sat_equivalent

        verdict = sat_equivalent(
            reference,
            network,
            conflict_budget=config.sat_conflict_budget,
            tracer=tracer,
        )
        stats.sat_solves += 1
        stats.sat_conflicts += verdict.conflicts
        stats.sat_decisions += verdict.decisions
        stats.sat_propagations += verdict.propagations
        stats.sat_learned += verdict.learned
        if not verdict.complete:
            span.annotate(backend="sat", ok=None)
            return None
        ok = bool(verdict.verdict)
        span.annotate(backend="sat", ok=ok)
        return ok


def _care_mask(
    sim: SignatureSimulator, node, dc_computer: Optional[DontCareComputer]
) -> int:
    """Sampled patterns on which the target's value is observable."""
    care = sim.mask
    if dc_computer is None:
        return care
    odc = dc_computer.observability_dc(node.name)
    if odc.is_zero():
        return care
    fanin_sigs = [sim.signatures[f] for f in node.fanins]
    return care & ~eval_cover_packed(odc, fanin_sigs, sim.mask)


def _resub_pass(
    network: Network,
    reference: Network,
    config: DivisionConfig,
    stats: SubstitutionStats,
    sim: SignatureSimulator,
    budget,
    ledger,
    tracer,
) -> None:
    use_dc = (
        config.resub_use_dontcares
        and len(network.pis) <= config.resub_odc_max_pis
    )
    # Per-pass ranking maps; recomputed after every commit (a rewrite
    # changes supports downstream).  The correctness-critical exclusion
    # (no divisor from TFO(f)) is computed fresh inside build_window.
    topo_index = {n: i for i, n in enumerate(network.topo_order())}
    supports = pi_supports(network)
    # The ODC computer is exact-global and only valid for an unchanged
    # network: built lazily, dropped on every commit.
    dc_computer: Optional[DontCareComputer] = None
    names = [node.name for node in network.internal_nodes()]
    for f_name in names:
        if f_name not in network.nodes:
            continue
        node = network.nodes[f_name]
        if node.is_pi or node.is_constant() or node.cover is None:
            continue
        if budget is not None:
            budget.check()
        stats.resub_targets += 1
        with tracer.span("resub_window", f=f_name) as win_span:
            window = build_window(
                network,
                f_name,
                config,
                topo_index=topo_index,
                supports=supports,
            )
            win_span.annotate(divisors=len(window.divisors))
        if window.divisors:
            stats.resub_windows += 1
        if use_dc and dc_computer is None:
            dc_computer = DontCareComputer(
                network, max_pis=config.resub_odc_max_pis
            )
        care = _care_mask(sim, node, dc_computer)
        target_sig = sim.signatures[f_name]
        old_lits = factored_literals(node.cover)
        committed = False
        with tracer.span("resub_resyn", f=f_name) as resyn_span:
            subsets_tried = 0
            candidates = 0
            # Smallest support first: the constant functions (empty
            # subset), then single divisors, and so on — the first
            # strict literal win is taken greedily.
            for size in range(min(config.resub_max_divisors, len(window.divisors)) + 1):
                if committed:
                    break
                for subset in itertools.combinations(window.divisors, size):
                    if budget is not None:
                        budget.check_deadline()
                    subsets_tried += 1
                    label = _divisor_label(subset)
                    if ledger is not None and ledger.is_quarantined(
                        f_name, label
                    ):
                        continue
                    cover = resynthesize_window(
                        target_sig,
                        [sim.signatures[d] for d in subset],
                        sim.mask,
                        care,
                    )
                    if cover is None:
                        continue
                    candidates += 1
                    stats.resub_candidates += 1
                    if factored_literals(cover) > old_lits:
                        # The ATPG cleanup below only ever shrinks the
                        # cover a literal at a time; a candidate already
                        # above the target is not worth cleaning.
                        continue
                    cleaned, removed = _clean_cover(
                        network, f_name, subset, cover, config, budget
                    )
                    stats.resub_wires_cleaned += removed
                    if factored_literals(cleaned) >= old_lits:
                        continue
                    with tracer.span(
                        "commit", f=f_name, d=label, via="resub"
                    ) as commit_span:
                        snapshot = _Snapshot(network, [f_name])
                        node.set_function(list(subset), cleaned)
                        sim.refresh([f_name])
                        verdict = _validate_exact(
                            reference, network, config, stats, tracer
                        )
                        stats.resub_validated += 1
                        if verdict is None:
                            stats.resub_rejected_unknown += 1
                        if verdict is not True:
                            snapshot.restore()
                            sim.refresh([f_name])
                            commit_span.annotate(accepted=False)
                            continue
                        if ledger is not None and not ledger.verify_commit(
                            network, f_name, label
                        ):
                            snapshot.restore()
                            sim.refresh([f_name])
                            ledger.quarantine(f_name, label)
                            commit_span.annotate(accepted=False)
                            continue
                        stats.accepted += 1
                        stats.resub_accepted += 1
                        commit_span.annotate(accepted=True)
                    committed = True
                    break
            resyn_span.annotate(
                subsets=subsets_tried,
                candidates=candidates,
                accepted=committed,
            )
        if committed:
            dc_computer = None
            topo_index = {n: i for i, n in enumerate(network.topo_order())}
            supports = pi_supports(network)


def simguided_substitute(
    network: Network,
    config: DivisionConfig,
    reference: Optional[Network] = None,
    stats: Optional[SubstitutionStats] = None,
    budget=None,
    tracer=None,
) -> SubstitutionStats:
    """Run simulation-guided resubstitution passes to a fixpoint.

    The drop-in counterpart of the division path of
    :func:`~repro.core.substitution.substitute_network` (which
    delegates here for ``config.method == "simguided"``): same stats
    accumulation contract, same budget clean-stop semantics, same
    transactional-commit machinery under ``config.verify_commits``.
    ``config.n_jobs`` is ignored — the engine is serial; its hot loop
    is the bitwise resynthesis, which parallelizes poorly compared to
    division's independent pair evaluations.
    """
    tracer = as_tracer(tracer)
    if stats is None:
        stats = SubstitutionStats()
    if budget is None:
        budget = RunBudget.from_config(config)
    stats.literals_before += network_literals(network)
    start = time.perf_counter()
    # Exact validation always needs the pre-run network, not just in
    # verify modes: the reference *is* the correctness anchor here.
    if reference is None:
        reference = network.copy("reference")
    sim = SignatureSimulator(
        network, patterns=config.sim_patterns, seed=config.sim_seed
    )
    ledger = None
    if config.verify_commits:
        # The ledger only needs a ``.sim`` attribute from its filter
        # (the prescreen pre-pass); resub has no DivisorFilter.
        ledger = CommitLedger(
            reference, config, types.SimpleNamespace(sim=sim)
        )
    with tracer.span(
        "run", circuit=network.name, mode=config.mode, method="simguided"
    ) as run_span:
        for index in range(config.max_passes):
            if budget is not None and budget.exhausted():
                break
            accepted_before = stats.accepted
            with tracer.span("pass", index=index) as pass_span:
                try:
                    _resub_pass(
                        network, reference, config, stats, sim,
                        budget, ledger, tracer,
                    )
                except BudgetExhausted:
                    # Clean stop between commits; everything applied so
                    # far is validated and stays.
                    pass_span.annotate(
                        accepted=stats.accepted - accepted_before
                    )
                    break
                pass_span.annotate(
                    accepted=stats.accepted - accepted_before
                )
            if stats.accepted == accepted_before:
                break
        network.sweep_dangling()
        run_span.annotate(accepted=stats.accepted)
    stats.resim_nodes += sim.nodes_resimulated
    if ledger is not None:
        stats.commits_verified += ledger.verified
        stats.commits_rolled_back += ledger.rolled_back
        stats.pairs_quarantined += len(ledger.quarantined)
        stats.incidents.extend(ledger.incidents)
        stats.sat_solves += ledger.sat_solves
        stats.sat_conflicts += ledger.sat_conflicts
        stats.sat_decisions += ledger.sat_decisions
        stats.sat_propagations += ledger.sat_propagations
        stats.sat_learned += ledger.sat_learned
    if budget is not None:
        stats.budget_report = budget.report()
    stats.cpu_seconds += time.perf_counter() - start
    stats.literals_after += network_literals(network)
    return stats
