"""Configuration for the division/substitution engine.

The paper evaluates three configurations (Section V):

1. ``basic``   — basic division only,
2. ``ext``     — extended division, implications confined to the
                 dividend/divisor regions (no global don't cares),
3. ``ext GDC`` — extended division with implications through the whole
                 circuit plus recursive learning (global internal
                 don't cares).

The module-level constants :data:`BASIC`, :data:`EXTENDED` and
:data:`EXTENDED_GDC` are those three setups.
"""

from __future__ import annotations

import dataclasses
from typing import Optional


@dataclasses.dataclass(frozen=True)
class DivisionConfig:
    """Knobs of the RAR division/substitution engine."""

    #: "basic" (divisor used as-is) or "extended" (divisor may be
    #: decomposed around a voted core).
    mode: str = "basic"

    #: Optimization engine: "division" runs the paper-faithful RAR
    #: division/substitution passes; "simguided" runs the
    #: simulation-guided resubstitution engine (:mod:`repro.resub`),
    #: which *constructs* candidate replacement functions from the
    #: bit-parallel signatures (truth-table windowing over small
    #: divisor sets, ODC-aware) and validates the few survivors
    #: exactly through ``verify_backend``.  Both engines share the
    #: budget / ledger / tracing machinery and the equivalence
    #: contract; they differ in how candidates are found.
    method: str = "division"

    #: Extend implications through the whole circuit (global internal
    #: don't cares) instead of only the dividend/divisor regions.
    global_dc: bool = False

    #: Recursive-learning depth used when checking untestability
    #: (0 = direct implications only).  The paper's GDC configuration
    #: corresponds to depth 1.
    learn_depth: int = 0

    #: Also attempt division in product-of-sums form (the paper's POS
    #: symmetric case).
    try_pos: bool = True

    #: Also try the complement of the divisor (substituting with a
    #: negative-phase literal of the divisor node).
    try_complement: bool = True

    #: Maximum number of substitution sweeps over the network.
    max_passes: int = 3

    #: Candidate divisors considered per dividend (closest supports
    #: first); keeps the pass near-linear on large networks.
    max_divisors: int = 25

    #: Upper bound on dividend cubes for a division attempt (guards
    #: the wire-by-wire removal loop).
    max_region_cubes: int = 64

    #: Exact maximum-clique search is used up to this many vertices in
    #: the vote graph; larger graphs fall back to a greedy clique.
    exact_clique_limit: int = 30

    #: Oracle mode: when the implication test fails to prove a wire
    #: removable, additionally check with a BDD network-equivalence
    #: oracle whether removing it preserves every primary output
    #: (i.e. use the *complete* internal don't-care set, SDCs and
    #: ODCs).  Quality upper bound for the implication dial; very
    #: slow, used by the ablation benches only.
    oracle_dc: bool = False

    #: Verify every accepted rewrite by random simulation (cheap) —
    #: a belt-and-braces guard; the test suite uses BDDs instead.
    verify_with_simulation: bool = False

    #: Exact-equivalence backend for commit spot-checks and final
    #: verification: "bdd" builds ROBDDs of every PO cone (the
    #: historical oracle, exact up to ~24 PIs then degrading to a wide
    #: random screen), "sat" solves a CNF miter with the CDCL engine
    #: (:mod:`repro.sat`), and "auto" picks BDDs up to
    #: ``sat_pi_threshold`` inputs and SAT above — the threshold where
    #: BDD cones start blowing up and exhaustive methods are out.
    verify_backend: str = "auto"

    #: Conflict budget per SAT solve; an exhausted search reports
    #: ``complete=False`` and the caller falls back conservatively
    #: (same contract as the D-alg backtrack budget).
    sat_conflict_budget: int = 100_000

    #: PI count above which ``verify_backend="auto"`` switches from
    #: BDDs to the SAT miter.
    sat_pi_threshold: int = 16

    #: Prune division candidates with bit-parallel simulation
    #: signatures (see :mod:`repro.sim`).  The filter is sound — it
    #: only skips (divisor, variant) attempts that provably return no
    #: division — so results are identical with it on or off; it is a
    #: pure fast path.
    enable_sim_filter: bool = True

    #: Number of random input patterns packed into each signature
    #: (one Python int per signal).  More patterns refute more
    #: hopeless candidates at linear extra cost per bitwise op.
    sim_patterns: int = 256

    #: Seed for the per-PI signature stimulus (deterministic per PI
    #: name, so incremental and from-scratch simulation agree).
    sim_seed: int = 1

    #: Capacity of the per-node cube-signature LRU cache.
    sim_cache_size: int = 2048

    #: Capacity of the (dividend, divisor) containment-verdict LRU
    #: cache.
    containment_cache_size: int = 8192

    #: Worker processes for the speculative-evaluation engine (see
    #: :mod:`repro.parallel`).  ``1`` runs the plain serial loop;
    #: ``>1`` freezes a network snapshot per pass, evaluates surviving
    #: candidate pairs across workers and commits the results through
    #: the deterministic protocol, so output is byte-identical to the
    #: serial path.
    n_jobs: int = 1

    #: Candidate pairs per work unit shipped to a worker.  Small
    #: batches balance load and keep speculation fresh; large batches
    #: amortize the per-shard round trip (pickle + queue wakeup).
    #: 32 measured best on the suite: half the round trips of 16 with
    #: fewer invalidated outcomes than 64.
    batch_size: int = 32

    #: "process" uses a persistent :class:`concurrent.futures.
    #: ProcessPoolExecutor`; "serial" runs the same speculative engine
    #: in-process (debugging and the commit-protocol tests — no
    #: pickling across processes, same snapshot/commit semantics);
    #: "auto" (the default) picks "process" when the machine has more
    #: than one CPU and the in-process engine otherwise — on a single
    #: core a pool can only add scheduling overhead, and the protocol
    #: and its output are identical either way.
    parallel_backend: str = "auto"

    #: Wall-clock budget for one :func:`substitute_network` run, in
    #: seconds.  The run stops cleanly at the next pass/pair boundary
    #: (or mid-removal-loop for a single pathological pair), keeps its
    #: best-so-far network, and records a
    #: :class:`~repro.resilience.budget.BudgetReport` in the stats.
    deadline_seconds: Optional[float] = None

    #: Total :func:`boolean_divide` invocations allowed per run
    #: (``None`` = unlimited); same clean-stop semantics as the
    #: deadline.
    max_divide_calls: Optional[int] = None

    #: Total D-algorithm backtracks allowed per run across every ATPG
    #: call that shares the run's budget (``None`` = unlimited).
    max_run_backtracks: Optional[int] = None

    #: Transactional commits: spot-check every accepted substitution
    #: against the pre-optimization reference and roll back +
    #: quarantine the pair on miscompare (see
    #: :mod:`repro.resilience.checkpoint`).
    verify_commits: bool = False

    #: With ``verify_commits``, run the exact (BDD / wide-simulation)
    #: equivalence check every this-many commits; the others use the
    #: cheap signature/simulation screen.
    verify_full_every: int = 16

    #: Failed speculative work batches are re-dispatched onto a fresh
    #: process pool this many times before the shard degrades to the
    #: in-process serial backend.
    max_shard_retries: int = 2

    #: Shards kept in flight per worker by the pipelined dispatcher
    #: (window = ``max(2, n_jobs * pipeline_depth)``), so worker
    #: evaluation overlaps the main process's commit loop instead of
    #: meeting it at a per-pass barrier.
    pipeline_depth: int = 2

    #: Ship signature bitmaps to the persistent pool through one
    #: ``multiprocessing.shared_memory`` segment instead of pickling
    #: them into every worker (falls back to the inline snapshot where
    #: shared memory is unavailable).
    share_signatures: bool = True

    #: ``method="simguided"``: divisor candidates collected into each
    #: target node's window (closest supports first; the truth-table
    #: core enumerates subsets of this pool).
    resub_window_size: int = 12

    #: ``method="simguided"``: maximum divisors per resynthesized
    #: replacement function (subset enumeration is size-ascending, so
    #: the engine prefers the smallest support that works).
    resub_max_divisors: int = 4

    #: ``method="simguided"``: intersect the simulated care set with
    #: the complement of the target's observability don't cares
    #: (computed exactly with :class:`~repro.network.dontcares.
    #: DontCareComputer` when the network is small enough).  SDCs need
    #: no explicit handling — unreachable fanin combinations never
    #: appear in simulation, so the sampled care set is SDC-free by
    #: construction.
    resub_use_dontcares: bool = True

    #: ``method="simguided"``: PI count up to which the exact ODC
    #: computation is attempted (the BDD-based computer is global and
    #: rebuilt after every commit; beyond this it costs more than the
    #: don't cares buy).
    resub_odc_max_pis: int = 12

    #: Stall watchdog: a speculative shard silent for more than this
    #: many seconds is flagged (a ``stall`` trace event + the
    #: ``health.stalls`` counter) and fed into the containment ladder
    #: (redispatch → fresh pool → in-process fallback) instead of
    #: being waited on forever.  ``None`` (the default) disables the
    #: watchdog — results and timing are then exactly the pre-telemetry
    #: behavior.
    stall_timeout_seconds: Optional[float] = None

    #: Directory for per-worker heartbeat files (one small JSON file
    #: per worker pid, overwritten at every batch boundary) — a
    #: crash-durable liveness channel an operator can inspect even
    #: after the run dies.  ``None`` (the default) writes nothing.
    heartbeat_dir: Optional[str] = None

    def __post_init__(self):
        if self.mode not in ("basic", "extended"):
            raise ValueError("mode must be 'basic' or 'extended'")
        if self.method not in ("division", "simguided"):
            raise ValueError("method must be 'division' or 'simguided'")
        if self.resub_window_size < 1:
            raise ValueError("resub_window_size must be >= 1")
        if not 1 <= self.resub_max_divisors <= 6:
            raise ValueError("resub_max_divisors must be in 1..6")
        if self.resub_odc_max_pis < 0:
            raise ValueError("resub_odc_max_pis must be >= 0")
        if self.learn_depth < 0:
            raise ValueError("learn_depth must be >= 0")
        if self.sim_patterns < 1:
            raise ValueError("sim_patterns must be >= 1")
        if self.sim_cache_size < 1 or self.containment_cache_size < 1:
            raise ValueError("cache sizes must be >= 1")
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.parallel_backend not in ("auto", "process", "serial"):
            raise ValueError(
                "parallel_backend must be 'auto', 'process' or 'serial'"
            )
        if self.deadline_seconds is not None and self.deadline_seconds < 0:
            raise ValueError("deadline_seconds must be >= 0")
        if self.max_divide_calls is not None and self.max_divide_calls < 0:
            raise ValueError("max_divide_calls must be >= 0")
        if (
            self.max_run_backtracks is not None
            and self.max_run_backtracks < 0
        ):
            raise ValueError("max_run_backtracks must be >= 0")
        if self.verify_full_every < 1:
            raise ValueError("verify_full_every must be >= 1")
        if (
            self.stall_timeout_seconds is not None
            and self.stall_timeout_seconds <= 0
        ):
            raise ValueError("stall_timeout_seconds must be > 0")
        if self.verify_backend not in ("auto", "bdd", "sat"):
            raise ValueError(
                "verify_backend must be 'auto', 'bdd' or 'sat'"
            )
        if self.sat_conflict_budget < 0:
            raise ValueError("sat_conflict_budget must be >= 0")
        if self.sat_pi_threshold < 0:
            raise ValueError("sat_pi_threshold must be >= 0")
        if self.max_shard_retries < 0:
            raise ValueError("max_shard_retries must be >= 0")
        if self.pipeline_depth < 1:
            raise ValueError("pipeline_depth must be >= 1")


#: Configuration 1 of the paper's experiments.
BASIC = DivisionConfig(mode="basic")

#: Configuration 2: extended division without global don't cares.
#: Implications (including one level of learning) stay confined to the
#: dividend/divisor regions — the paper's "limit our implication
#: process only inside a small region" setting.
EXTENDED = DivisionConfig(mode="extended", learn_depth=1)

#: Configuration 3: extended division with global don't cares.
EXTENDED_GDC = DivisionConfig(mode="extended", global_dc=True, learn_depth=1)

#: The simulation-guided resubstitution engine (:mod:`repro.resub`):
#: candidate replacement functions are built directly from signatures
#: and validated exactly, instead of being searched for with Boolean
#: division.  A second, independent engine over the same substrate —
#: its agreement with the division configurations is a standing
#: correctness oracle (see tests/resub/).
SIMGUIDED = DivisionConfig(method="simguided")

#: Oracle upper bound: extended division where every failed
#: implication test is retried against a complete-don't-care BDD
#: oracle.  Not one of the paper's configurations — used to measure
#: how much of the full Boolean potential the implications capture.
ORACLE = DivisionConfig(
    mode="extended", global_dc=True, learn_depth=1, oracle_dc=True
)
