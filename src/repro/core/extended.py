"""Extended division: core-divisor selection by voting (Section IV).

Basic division can only use a divisor as-is; extended division may
*decompose* the divisor, exposing a sub-expression (the *core divisor*)
as a new node and dividing by that instead.

Selection works exactly as in the paper:

1. **Voting.**  For every literal wire in the dividend's cubes, run the
   stuck-at-1 mandatory-assignment implications of that wire in the
   *original* structure (activation, side literals at 1, every other
   dividend cube at 0).  Divisor cubes implied to 0 form the wire's
   *candidate core divisor*: had that candidate been the core, the
   required core-at-1 assignment would conflict and the wire would be
   removed.
2. **Feasibility.**  A vote is kept only if the candidate is an SOS of
   the wire's own cube — otherwise adding the core wire would not be
   redundant (Table I's deleted rows).
3. **Clique.**  Build a graph with a vertex per surviving wire and an
   edge where two candidates intersect; a clique with a non-empty
   common intersection is a core expected to remove all of the
   clique's wires.  The maximum clique picks the core (exact below a
   size threshold, greedy degeneracy order above it).

Cubes may be pooled from several divisor nodes; the chosen core must
come from a single node (it has to be a decomposition of that node).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

import networkx as nx

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind
from repro.atpg.implication import Conflict, ImplicationEngine
from repro.atpg.learning import learn_implications
from repro.network.network import Network
from repro.core.config import DivisionConfig
from repro.core.division import (
    build_analysis_circuit,
    dividend_cube_signal,
    divisor_cube_signal,
)


@dataclasses.dataclass
class VoteEntry:
    """One wire's row of the vote table."""

    cube_index: int
    var: int  # index into the shared signal list
    phase: bool
    #: divisor name -> indices of that divisor's cubes implied to 0.
    candidates: Dict[str, FrozenSet[int]]
    #: True when the wire's fault already conflicts with no core at
    #: all — the wire is redundant as-is.
    already_redundant: bool = False

    def wire_name(self, shared: Sequence[str]) -> str:
        name = shared[self.var]
        return name if self.phase else name + "'"


@dataclasses.dataclass
class VoteTable:
    """The vote table for one dividend against a set of divisors.

    For ``form == "pos"`` everything lives in the dual space: the
    dividend/divisor covers here are the complements of the node
    covers, whose cubes correspond one-to-one to the functions' sum
    terms, and "cube implied 0" reads as "sum term implied 1" — the
    symmetric case the paper describes at the end of Section IV.
    """

    f_name: str
    shared: List[str]
    dividend: Cover  # in the shared space
    divisor_cubes: Dict[str, Cover]  # each divisor in the shared space
    entries: List[VoteEntry]
    form: str = "sop"

    def to_str(self) -> str:
        lines = [f"vote table for {self.f_name}:"]
        for entry in self.entries:
            cube = self.dividend.cubes[entry.cube_index]
            votes = ", ".join(
                f"{d}:{sorted(s)}" for d, s in entry.candidates.items() if s
            )
            lines.append(
                f"  wire {entry.wire_name(self.shared)} of cube "
                f"{cube.to_str(self.shared)} -> {votes or '(none)'}"
            )
        return "\n".join(lines)


def dual_cube_signal(name: str, index: int) -> str:
    """Signal name of a synthetic dual-cube (sum-term) AND gate."""
    return f"{name}.p{index}"


def build_vote_table(
    network: Network,
    f_name: str,
    divisor_names: Sequence[str],
    config: DivisionConfig,
    circuit: Optional[Circuit] = None,
    form: str = "sop",
) -> VoteTable:
    """Run the voting implications for every wire of *f*'s cubes.

    With ``form == "pos"`` the wires are the literals of *f*'s sum
    terms and the candidates are divisor *sum terms* implied to 1 —
    realized by voting in the dual (complement-cover) space with
    synthetic AND gates for every dual cube.
    """
    if form not in ("sop", "pos"):
        raise ValueError("form must be 'sop' or 'pos'")
    f_node = network.nodes[f_name]
    if f_node.cover is None:
        raise ValueError("cannot build a vote table for a primary input")

    shared = list(f_node.fanins)
    for d_name in divisor_names:
        for name in network.nodes[d_name].fanins:
            if name not in shared:
                shared.append(name)
    index = {name: i for i, name in enumerate(shared)}
    n = len(shared)
    f_cover = f_node.cover if form == "sop" else complement(f_node.cover)
    dividend = f_cover.remap(
        [index[name] for name in f_node.fanins], n
    )
    divisor_cubes: Dict[str, Cover] = {}
    for d_name in divisor_names:
        d_node = network.nodes[d_name]
        d_cover = (
            d_node.cover if form == "sop" else complement(d_node.cover)
        )
        divisor_cubes[d_name] = d_cover.remap(
            [index[name] for name in d_node.fanins], n
        )

    if circuit is None:
        circuit = build_analysis_circuit(network, f_name, divisor_names, config)
    else:
        circuit = circuit.copy()
    cube_signal = (
        dividend_cube_signal if form == "sop" else dual_cube_signal
    )
    # Dividend cube gates (all cubes; the original, unrestructured f).
    for i, cube in enumerate(dividend.cubes):
        name = cube_signal(f_name, i)
        inputs = [(shared[v], p) for v, p in cube.literals()]
        if inputs:
            circuit.add_and(name, inputs)
        else:
            circuit.add_gate(Gate(name, GateKind.CONST1))
    if form == "pos":
        # Synthetic dual-cube gates for the divisors (their real gates
        # stay in the circuit and add implication power).
        for d_name, cover in divisor_cubes.items():
            for j, cube in enumerate(cover.cubes):
                name = dual_cube_signal(d_name, j)
                inputs = [(shared[v], p) for v, p in cube.literals()]
                if name in circuit.gates:
                    continue
                if inputs:
                    circuit.add_and(name, inputs)
                else:
                    circuit.add_gate(Gate(name, GateKind.CONST1))

    entries: List[VoteEntry] = []
    for i, cube in enumerate(dividend.cubes):
        for var, phase in cube.literals():
            entry = _vote_for_wire(
                circuit,
                f_name,
                shared,
                dividend,
                divisor_cubes,
                i,
                var,
                phase,
                config,
                form,
            )
            entries.append(entry)
    return VoteTable(
        f_name=f_name,
        shared=shared,
        dividend=dividend,
        divisor_cubes=divisor_cubes,
        entries=entries,
        form=form,
    )


def _vote_for_wire(
    circuit: Circuit,
    f_name: str,
    shared: List[str],
    dividend: Cover,
    divisor_cubes: Dict[str, Cover],
    cube_index: int,
    var: int,
    phase: bool,
    config: DivisionConfig,
    form: str = "sop",
) -> VoteEntry:
    cube_signal = (
        dividend_cube_signal if form == "sop" else dual_cube_signal
    )
    d_signal = divisor_cube_signal if form == "sop" else dual_cube_signal
    cube = dividend.cubes[cube_index]
    assignments: List[Tuple[str, bool]] = [(shared[var], not phase)]
    for v, p in cube.literals():
        if v != var:
            assignments.append((shared[v], p))
    for j in range(len(dividend.cubes)):
        if j != cube_index:
            assignments.append((cube_signal(f_name, j), False))

    engine = ImplicationEngine(circuit)
    try:
        engine.assign_many(assignments)
        engine.propagate()
        if config.learn_depth > 0:
            learn_implications(engine, config.learn_depth)
    except Conflict:
        return VoteEntry(cube_index, var, phase, {}, already_redundant=True)

    candidates: Dict[str, FrozenSet[int]] = {}
    for d_name, cover in divisor_cubes.items():
        zeros = frozenset(
            j
            for j in range(len(cover.cubes))
            if engine.value(d_signal(d_name, j)) is False
        )
        # Feasibility (Table I(b)): the candidate must be an SOS of the
        # wire's own cube, i.e. some implied-zero divisor cube must
        # contain it; otherwise adding the core would not be redundant.
        if zeros and any(
            cover.cubes[j].contains(cube) for j in zeros
        ):
            candidates[d_name] = zeros
    return VoteEntry(cube_index, var, phase, candidates)


# ----------------------------------------------------------------------
# Clique-based core selection
# ----------------------------------------------------------------------
def _vote_graph(entries: List[VoteEntry]) -> nx.Graph:
    graph = nx.Graph()
    for i, entry in enumerate(entries):
        if entry.candidates:
            graph.add_node(i)
    nodes = list(graph.nodes)
    for a_pos, i in enumerate(nodes):
        for j in nodes[a_pos + 1 :]:
            ei, ej = entries[i], entries[j]
            if any(
                d in ej.candidates and ei.candidates[d] & ej.candidates[d]
                for d in ei.candidates
            ):
                graph.add_edge(i, j)
    return graph


def _max_clique(graph: nx.Graph, exact_limit: int) -> List[int]:
    if graph.number_of_nodes() == 0:
        return []
    if graph.number_of_nodes() <= exact_limit:
        clique, _ = nx.max_weight_clique(graph, weight=None)
        return sorted(clique)
    # Greedy fallback: grow from the highest-degree vertex.
    order = sorted(graph.nodes, key=lambda v: -graph.degree[v])
    clique: List[int] = []
    for v in order:
        if all(graph.has_edge(v, u) for u in clique):
            clique.append(v)
    return sorted(clique)


@dataclasses.dataclass
class CoreChoice:
    """The selected core divisor."""

    divisor_name: str
    cube_indices: Tuple[int, ...]
    #: entries (by table index) expected to be removed by this core.
    supporting_wires: Tuple[int, ...]


def choose_core_divisor(
    table: VoteTable, config: DivisionConfig
) -> Optional[CoreChoice]:
    """Pick the core divisor by maximum clique over the vote graph.

    The chosen core must come from a single divisor node.  Within the
    clique, each divisor's candidate intersection is computed; the
    divisor supported by the most wires (with a non-empty, per-wire
    feasible intersection) wins.
    """
    entries = table.entries
    graph = _vote_graph(entries)
    clique = _max_clique(graph, config.exact_clique_limit)
    if not clique:
        return None

    best: Optional[CoreChoice] = None
    divisors = set()
    for i in clique:
        divisors.update(entries[i].candidates)
    for d_name in sorted(divisors):
        members = [i for i in clique if d_name in entries[i].candidates]
        if not members:
            continue
        common: FrozenSet[int] = entries[members[0]].candidates[d_name]
        supporters = []
        for i in members:
            candidate = common & entries[i].candidates[d_name]
            if candidate:
                common = candidate
                supporters.append(i)
        if not common:
            continue
        cover = table.divisor_cubes[d_name]
        feasible = [
            i
            for i in supporters
            if any(
                cover.cubes[j].contains(
                    table.dividend.cubes[entries[i].cube_index]
                )
                for j in common
            )
        ]
        if not feasible:
            continue
        choice = CoreChoice(
            divisor_name=d_name,
            cube_indices=tuple(sorted(common)),
            supporting_wires=tuple(feasible),
        )
        if best is None or len(choice.supporting_wires) > len(
            best.supporting_wires
        ):
            best = choice
    return best


def decompose_divisor(
    network: Network, divisor_name: str, cube_indices: Sequence[int]
) -> str:
    """Split ``d = dc + dr``, exposing the core as a new node.

    Returns the new core node's name.  The divisor keeps its name and
    function (now expressed as ``core + remaining cubes``), so its
    fanouts are untouched.
    """
    d_node = network.nodes[divisor_name]
    cover = d_node.cover
    selected = set(cube_indices)
    if not selected or selected == set(range(cover.num_cubes())):
        raise ValueError("core must be a proper, non-empty cube subset")

    core_name = network.fresh_name(f"{divisor_name}_core")
    core_cover = Cover(
        cover.num_vars, [cover.cubes[i] for i in sorted(selected)]
    )
    core_node = network.add_node(core_name, list(d_node.fanins), core_cover)
    core_node.prune_unused_fanins()

    remaining = [
        cover.cubes[i]
        for i in range(cover.num_cubes())
        if i not in selected
    ]
    new_fanins = list(d_node.fanins) + [core_name]
    y = Cube.literal(len(d_node.fanins), True)
    new_cover = Cover(len(new_fanins), remaining + [y])
    d_node.set_function(new_fanins, new_cover)
    d_node.prune_unused_fanins()
    return core_name


def decompose_divisor_pos(
    network: Network, divisor_name: str, dual_indices: Sequence[int]
) -> str:
    """POS decomposition ``d = dc · dr`` around selected sum terms.

    *dual_indices* select cubes of the divisor's *complement* cover
    (i.e. sum terms of ``d``).  The exposed core node computes the
    product of the selected sum terms, and the divisor becomes
    ``core AND (remaining sum terms)`` — the dual of
    :func:`decompose_divisor`.
    """
    d_node = network.nodes[divisor_name]
    dual = complement(d_node.cover)
    selected = set(dual_indices)
    if not selected or selected == set(range(dual.num_cubes())):
        raise ValueError("core must be a proper, non-empty sum-term subset")

    core_name = network.fresh_name(f"{divisor_name}_core")
    selected_dual = Cover(
        dual.num_vars, [dual.cubes[i] for i in sorted(selected)]
    )
    core_cover = complement(selected_dual)
    core_node = network.add_node(
        core_name, list(d_node.fanins), core_cover
    )
    core_node.prune_unused_fanins()

    remaining_dual = Cover(
        dual.num_vars,
        [dual.cubes[i] for i in range(dual.num_cubes()) if i not in selected],
    )
    rest_cover = complement(remaining_dual)
    new_fanins = list(d_node.fanins) + [core_name]
    y = Cube.literal(len(d_node.fanins), True)
    cubes = []
    for cube in rest_cover.cubes:
        merged = cube.intersect(y)
        if merged is not None:
            cubes.append(merged)
    d_node.set_function(new_fanins, Cover(len(new_fanins), cubes))
    d_node.prune_unused_fanins()
    return core_name
