"""SOS and POS containment (Section III-A of the paper).

Definitions (over the same variable space):

* ``g`` is a *sum-of-subproducts* (SOS) of ``f`` iff every cube of
  ``f`` is contained by at least one cube of ``g`` — each cube of
  ``g`` involved is a *subproduct* (fewer literals) of a cube of ``f``.
  Lemma 1: then ``f · g = f``.
* ``g`` is a *product-of-subsums* (POS) of ``f`` iff every sum term of
  ``f`` contains at least one sum term of ``g``.  Lemma 2: then
  ``f + g = f``.

These are the properties that make the paper's added wires/gates
redundant *a priori* — no redundancy test is needed on the addition.
POS objects are represented by the cover of the function's complement
(each complement cube is the literal-wise negation of a sum term), so
the POS predicates reduce to cube containment as well.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover


def is_sos_of(g: Cover, f: Cover) -> bool:
    """True iff *g* is a sum-of-subproducts of *f*.

    Every cube of ``f`` must be contained by (minterm-wise inside) at
    least one cube of ``g``.
    """
    g._check_compatible(f)
    return all(
        any(k.contains(c) for k in g.cubes) for c in f.cubes
    )


def sos_split(f: Cover, g: Cover) -> Tuple[List[int], List[int]]:
    """Indices of *f*'s cubes in the region vs. the remainder.

    A cube belongs to the region (``F1``) when some cube of *g*
    contains it; the rest form the remainder ``R``.  By construction
    *g* is an SOS of the region, so ``f = R + g·F1`` (Lemma 1).
    """
    region: List[int] = []
    remainder: List[int] = []
    for i, c in enumerate(f.cubes):
        if any(k.contains(c) for k in g.cubes):
            region.append(i)
        else:
            remainder.append(i)
    return region, remainder


def _sum_term_contains(s: Cube, t: Cube) -> bool:
    """On-set containment of sum terms represented as literal sets.

    A sum term with *fewer* literals is contained by one with more:
    ``(a) <= (a + b)``.  With sum terms encoded as cubes of their
    literals, ``s`` contains ``t`` iff ``t``'s literals are a subset of
    ``s``'s — the reverse of the cube rule.
    """
    return (t.pos & ~s.pos) == 0 and (t.neg & ~s.neg) == 0


def is_pos_of(g_terms: Cover, f_terms: Cover) -> bool:
    """True iff *g* is a product-of-subsums of *f*.

    Both arguments list sum terms encoded as cubes of their literals
    (e.g. the term ``a + b'`` is the cube with literals ``a`` and
    ``b'``).  Every sum term of *f* must contain at least one sum term
    of *g* (a *subsum*: fewer literals).
    """
    g_terms._check_compatible(f_terms)
    return all(
        any(_sum_term_contains(s, t) for t in g_terms.cubes)
        for s in f_terms.cubes
    )


def pos_split(
    f_terms: Cover, g_terms: Cover
) -> Tuple[List[int], List[int]]:
    """POS analogue of :func:`sos_split`.

    Sum terms of *f* that contain some sum term of *g* form the region
    ``F1`` with ``f = R · (g + F1)`` (Lemma 2); the rest form ``R``.
    """
    region: List[int] = []
    remainder: List[int] = []
    for i, s in enumerate(f_terms.cubes):
        if any(_sum_term_contains(s, t) for t in g_terms.cubes):
            region.append(i)
        else:
            remainder.append(i)
    return region, remainder


def sum_terms_of(cover_complement: Cover) -> Cover:
    """Sum terms of a function given the cover of its complement.

    By De Morgan each cube of the complement corresponds to one sum
    term whose literals are negated: ``f' = a b'  =>  f = a' + b``.
    The returned cover lists the sum terms as literal cubes.
    """
    terms = [
        Cube(c.neg, c.pos) for c in cover_complement.cubes
    ]
    return Cover(cover_complement.num_vars, terms)
