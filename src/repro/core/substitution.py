"""Network-level Boolean substitution passes.

Drives the division machinery over a whole network, in the paper's
three experimental configurations (basic / ext / ext GDC).  Matching
the paper's implementation, acceptance is *locally greedy*: the first
division with a positive factored-literal gain is taken (Section V
notes this is why ext-GDC can occasionally lose to ext).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.factor import factored_literals, network_literals
from repro.network.network import Network
from repro.network.verify import simulate_equivalent_prescreened
from repro.core.config import DivisionConfig
from repro.core.division import (
    apply_division,
    boolean_divide,
    build_analysis_circuit,
    divide_node_pair,
    enabled_attempts,
)
from repro.core.extended import (
    build_vote_table,
    choose_core_divisor,
    decompose_divisor,
    decompose_divisor_pos,
)
from repro.obs import resource as resource_mod
from repro.obs.tracer import NULL_TRACER, as_tracer
from repro.resilience.budget import BudgetExhausted, BudgetReport, RunBudget
from repro.resilience.checkpoint import CommitLedger


@dataclasses.dataclass
class SubstitutionStats:
    """Bookkeeping for one :func:`substitute_network` run."""

    attempts: int = 0
    accepted: int = 0
    wires_removed: int = 0
    cubes_removed: int = 0
    cores_extracted: int = 0
    literals_before: int = 0
    literals_after: int = 0
    cpu_seconds: float = 0.0
    #: Basic-division invocations of :func:`boolean_divide` requested
    #: (one per surviving (phase, form) variant per candidate pair).
    divide_calls: int = 0
    #: Candidate (dividend, divisor) pairs skipped outright because
    #: signatures proved every division variant hopeless.
    divisors_pruned: int = 0
    #: Individual (phase, form) variants skipped on pairs that were
    #: otherwise attempted.
    variants_pruned: int = 0
    #: Signature/verdict cache hits and misses (filter runs only).
    sim_cache_hits: int = 0
    sim_cache_misses: int = 0
    #: Nodes re-evaluated by incremental re-simulation after rewrites.
    resim_nodes: int = 0
    #: Worker processes used by the speculative engine (0 = plain
    #: serial path, 1 = in-process/serial backend).
    parallel_jobs: int = 0
    #: Work units shipped to the executor across all passes.
    parallel_batches: int = 0
    #: Candidate pairs speculatively evaluated against snapshots
    #: (including pairs the worker-side filter pruned).
    parallel_pairs_evaluated: int = 0
    #: Speculative outcomes committed without re-evaluation.
    parallel_pairs_reused: int = 0
    #: Speculative outcomes discarded because a committed rewrite
    #: touched their dividend/divisor (re-evaluated live).
    parallel_pairs_invalidated: int = 0
    #: Delta records shipped to the persistent worker pool across
    #: passes, and the node rewrites/deletions they carried.
    parallel_deltas_shipped: int = 0
    parallel_delta_nodes: int = 0
    #: Pairs dropped at shard-submit time because a commit had already
    #: rewritten one of their endpoints (never sent to a worker).
    parallel_pairs_stale_skipped: int = 0
    #: Wire accounting for the parallel protocol: bytes of the
    #: one-time base snapshot payload(s) and of the summed per-shard
    #: payloads (pair lists + delta log).
    parallel_snapshot_bytes: int = 0
    parallel_batch_bytes: int = 0
    #: Per-phase wall seconds of the parallel protocol
    #: (``snapshot_ship``, ``worker_build``, ``evaluate``,
    #: ``dispatch_wait``), accumulated across runs.
    parallel_phase_seconds: Dict[str, float] = dataclasses.field(
        default_factory=dict
    )
    #: D-alg searches that ran out of backtracks/deadline; their
    #: verdicts were treated conservatively as "not redundant".
    atpg_incomplete: int = 0
    #: Worker-side failures the executor contained (broken pools,
    #: worker exceptions, pickling errors).
    worker_faults: int = 0
    #: Failed work batches re-dispatched onto a fresh process pool.
    shards_redispatched: int = 0
    #: Times speculative work fell back to in-process evaluation
    #: (exhausted shard retries, or a whole-pass speculation failure).
    degraded_to_serial: int = 0
    #: Commit verifications run / rolled back, and pairs quarantined,
    #: under ``config.verify_commits``.
    commits_verified: int = 0
    commits_rolled_back: int = 0
    pairs_quarantined: int = 0
    #: SAT-backend work done by the run's exact checks (the commit
    #: ledger's full checks under ``verify_backend="sat"``/"auto").
    #: Deterministic for a fixed (circuit, config, code) triple — the
    #: CDCL engine has no randomness — so they regression-gate exactly
    #: like ``divide_calls``.
    sat_solves: int = 0
    sat_conflicts: int = 0
    sat_decisions: int = 0
    sat_propagations: int = 0
    sat_learned: int = 0
    #: Simulation-guided resubstitution (``method="simguided"``, see
    #: :mod:`repro.resub`).  All deterministic — windowing, subset
    #: enumeration and validation have no randomness — so they
    #: regression-gate exactly, like ``divide_calls``.
    #: Target nodes visited, and windows with at least one divisor.
    resub_targets: int = 0
    resub_windows: int = 0
    #: Consistent candidate covers produced by the truth-table core
    #: (subsets whose signatures admit *some* matching function).
    resub_candidates: int = 0
    #: Exact whole-network validations run on gain-positive candidates.
    resub_validated: int = 0
    #: Candidates rejected on a SAT don't-know (exhausted conflict
    #: budget) — unproven candidates are never committed.
    resub_rejected_unknown: int = 0
    #: Candidates that validated and committed.
    resub_accepted: int = 0
    #: Literals/cubes dropped from candidate covers by the
    #: excitation-only ATPG redundancy cleanup.
    resub_wires_cleaned: int = 0
    #: Liveness telemetry (``health.*`` namespace).  Heartbeat marks
    #: received from workers on the result channel, and shards the
    #: executor's stall watchdog flagged as silent past the threshold.
    #: Timing-dependent — never regression-gated exactly.
    heartbeats_recorded: int = 0
    stalls_detected: int = 0
    #: Process resource telemetry sampled at end of run
    #: (``process.*`` gauges; slack-gated by ``repro compare`` like
    #: wall clocks).  Peak RSS folds by max, GC collections by delta.
    peak_rss_bytes: int = 0
    gc_collections: int = 0
    #: Structured incident records (JSON-ready dicts) — one per
    #: rolled-back commit; surfaces through ``--stats-json``.
    incidents: List[Dict[str, object]] = dataclasses.field(
        default_factory=list
    )
    #: Budget summary when the run carried a
    #: :class:`~repro.resilience.budget.RunBudget` (else ``None``).
    budget_report: Optional[BudgetReport] = None

    def improvement(self) -> float:
        if self.literals_before == 0:
            return 0.0
        return 100.0 * (
            self.literals_before - self.literals_after
        ) / self.literals_before


def _candidate_divisors(
    network: Network, f_name: str, config: DivisionConfig
) -> List[str]:
    """Divisor candidates for *f*, closest supports first.

    A divisor must be an internal, non-constant node that does not
    depend on *f* (no combinational cycle) and must be related to
    *f*'s support: either it shares fanin signals with *f* (cube
    containment needs common literals) or it *is* one of *f*'s fanins
    (re-dividing by an existing fanin is how implication conflicts
    through that fanin's logic simplify *f* — the SDC-style rewrites).

    Signature-based pruning of these candidates deliberately does
    *not* happen here: *f* may be rewritten while the returned list is
    being worked through, so a divisor hopeless against today's *f*
    can become divisible mid-loop.  The filter is instead consulted
    per pair at attempt time (see :func:`substitute_pass`), which is
    what keeps filtered and unfiltered runs byte-identical.
    """
    f_node = network.nodes[f_name]
    f_support = set(f_node.fanins)
    blocked = network.transitive_fanout(f_name)
    blocked.add(f_name)
    scored: List[Tuple[int, int, int, str]] = []
    for position, node in enumerate(network.internal_nodes()):
        if node.name in blocked or node.is_constant():
            continue
        overlap = len(f_support & set(node.fanins))
        is_fanin = node.name in f_support
        if overlap == 0 and not is_fanin:
            continue
        # Existing fanins are tried *last*: their in-place rewrites are
        # cleanups that should not pre-empt genuine substitutions.
        scored.append((int(is_fanin), -overlap, position, node.name))
    scored.sort()
    return [name for _, _, _, name in scored[: config.max_divisors]]


class _Snapshot:
    """Undo buffer for a handful of nodes (used on rejected rewrites)."""

    def __init__(self, network: Network, names: Sequence[str]):
        self.network = network
        self.saved = {
            name: (
                list(network.nodes[name].fanins),
                network.nodes[name].cover,
            )
            for name in names
            if name in network.nodes
        }
        self.created: List[str] = []

    def note_created(self, name: str) -> None:
        self.created.append(name)

    def restore(self) -> None:
        for name, (fanins, cover) in self.saved.items():
            self.network.nodes[name].set_function(fanins, cover)
        for name in self.created:
            if name in self.network.nodes:
                fanouts = self.network.fanouts()[name]
                if not fanouts and name not in self.network.pos:
                    self.network.remove_node(name)


def _note_mutation(sim_filter, names: Sequence[str]) -> None:
    """Refresh maintained signatures after rewriting *names* (if any)."""
    if sim_filter is not None:
        sim_filter.note_mutation(names)


def _try_extended(
    network: Network,
    f_name: str,
    divisors: List[str],
    config: DivisionConfig,
    stats: SubstitutionStats,
    reference: Optional[Network],
    form: str = "sop",
    sim_filter=None,
    budget=None,
    ledger=None,
    tracer=NULL_TRACER,
) -> bool:
    """One extended-division attempt on *f* over pooled divisors.

    ``form="pos"`` runs the paper's symmetric case: the vote table is
    built over sum terms (in the dual space) and the divisor is
    decomposed as a product ``d = dc · dr``.  The POS side is only
    attempted on compactly product-formed functions (small complement
    covers) — on SOP-heavy nodes the dual space explodes and the basic
    POS attempts already cover the whole-divisor case.
    """
    if form == "pos":
        from repro.twolevel.complement import complement as _complement

        f_cover = network.nodes[f_name].cover
        dual = _complement(f_cover)
        if dual.num_cubes() > min(
            config.max_region_cubes, 2 * f_cover.num_cubes() + 4
        ):
            return False
        divisors = [
            d
            for d in divisors
            if _complement(network.nodes[d].cover).num_cubes() <= 8
        ]
        if not divisors:
            return False
    table = build_vote_table(network, f_name, divisors, config, form=form)
    choice = choose_core_divisor(table, config)
    if choice is None:
        return False
    d_name = choice.divisor_name
    if ledger is not None and ledger.is_quarantined(f_name, d_name):
        return False
    d_node = network.nodes[d_name]
    whole = len(choice.cube_indices) == len(
        table.divisor_cubes[d_name].cubes
    )

    stats.attempts += 1
    if whole and form == "pos":
        # Whole-divisor POS division is already tried by the basic
        # per-divisor loop; only the decomposition case is new here.
        return False
    if whole:
        result = boolean_divide(
            network, f_name, d_name, config, form=form, budget=budget,
            tracer=tracer,
        )
        if result is None or result.gain <= 0:
            return False
        with tracer.span(
            "commit", f=f_name, d=d_name, via="extended-whole"
        ) as commit_span:
            snapshot = _Snapshot(network, [f_name])
            apply_division(network, result)
            _note_mutation(sim_filter, [f_name])
            if not _verify_ok(
                network, reference, config, sim_filter, tracer
            ):
                snapshot.restore()
                _note_mutation(sim_filter, [f_name])
                commit_span.annotate(accepted=False)
                return False
            if ledger is not None and not _ledger_verify(
                ledger, network, f_name, d_name, tracer
            ):
                snapshot.restore()
                _note_mutation(sim_filter, [f_name])
                ledger.quarantine(f_name, d_name)
                commit_span.annotate(accepted=False)
                return False
            stats.accepted += 1
            stats.wires_removed += result.wires_removed
            stats.cubes_removed += result.cubes_removed
            commit_span.annotate(accepted=True, gain=result.gain)
            return True

    # Decompose the divisor around the core, then basic-divide by the
    # exposed core node; accept only if the *total* factored literal
    # count (dividend + divisor + new core node) actually drops, and
    # undo the decomposition otherwise.
    snapshot = _Snapshot(network, [f_name, d_name])
    before_total = (
        factored_literals(network.nodes[f_name].cover)
        + factored_literals(d_node.cover)
    )
    if form == "sop":
        core_name = decompose_divisor(network, d_name, choice.cube_indices)
    else:
        core_name = decompose_divisor_pos(
            network, d_name, choice.cube_indices
        )
    snapshot.note_created(core_name)
    try:
        result = boolean_divide(
            network, f_name, core_name, config, form=form, budget=budget,
            tracer=tracer,
        )
    except BudgetExhausted:
        # The divisor is already decomposed; undo before unwinding so
        # the budget stop leaves the network in a committed state.
        snapshot.restore()
        _note_mutation(sim_filter, [f_name, d_name, core_name])
        raise
    if result is None:
        snapshot.restore()
        _note_mutation(sim_filter, [f_name, d_name, core_name])
        return False
    with tracer.span(
        "commit", f=f_name, d=d_name, via="extended-core"
    ) as commit_span:
        apply_division(network, result)
        _note_mutation(sim_filter, [f_name, d_name, core_name])
        after_total = (
            factored_literals(network.nodes[f_name].cover)
            + factored_literals(network.nodes[d_name].cover)
            + factored_literals(network.nodes[core_name].cover)
        )
        if after_total >= before_total or not _verify_ok(
            network, reference, config, sim_filter, tracer
        ):
            snapshot.restore()
            _note_mutation(sim_filter, [f_name, d_name, core_name])
            commit_span.annotate(accepted=False)
            return False
        if ledger is not None and not _ledger_verify(
            ledger, network, f_name, d_name, tracer
        ):
            snapshot.restore()
            _note_mutation(sim_filter, [f_name, d_name, core_name])
            ledger.quarantine(f_name, d_name)
            commit_span.annotate(accepted=False)
            return False
        stats.accepted += 1
        stats.cores_extracted += 1
        stats.wires_removed += result.wires_removed
        stats.cubes_removed += result.cubes_removed
        commit_span.annotate(
            accepted=True, gain=before_total - after_total
        )
        return True


def _verify_ok(
    network: Network,
    reference: Optional[Network],
    config: DivisionConfig,
    sim_filter=None,
    tracer=NULL_TRACER,
) -> bool:
    if not config.verify_with_simulation or reference is None:
        return True
    sim = sim_filter.sim if sim_filter is not None else None
    with tracer.span("verify", check="simulation") as span:
        ok = simulate_equivalent_prescreened(reference, network, sim)
        span.annotate(ok=ok)
        return ok


def _ledger_verify(
    ledger, network: Network, f_name: str, d_name: str, tracer
) -> bool:
    """One transactional commit check, recorded as a ``verify`` span."""
    with tracer.span(
        "verify", check="ledger", f=f_name, d=d_name
    ) as span:
        ok = ledger.verify_commit(network, f_name, d_name)
        span.annotate(ok=ok)
        return ok


def substitute_pass(
    network: Network,
    config: DivisionConfig,
    stats: Optional[SubstitutionStats] = None,
    reference: Optional[Network] = None,
    sim_filter=None,
    store=None,
    budget=None,
    ledger=None,
    tracer=None,
) -> int:
    """One sweep over all nodes; returns accepted substitutions.

    *sim_filter* is an optional :class:`~repro.sim.filter.DivisorFilter`
    over *network* whose signatures are current; candidate (divisor,
    variant) attempts it refutes are skipped.  Because the filter is
    sound, the pass produces the same network with or without it.

    *store* is an optional
    :class:`~repro.parallel.engine.SpeculativeStore` of division
    outcomes pre-evaluated against a snapshot of *network* taken at
    pass start.  The greedy visit order and every commit decision are
    unchanged — the store only short-circuits pair evaluations whose
    speculative outcome is provably still valid, so the pass result is
    byte-identical with or without it (the deterministic commit
    protocol; see DESIGN.md).

    *budget* is an optional
    :class:`~repro.resilience.budget.RunBudget`, checked before every
    candidate pair (and, for the deadline, inside the removal loop);
    when it trips the pass stops cleanly between commits and returns
    what it accepted so far.  *ledger* is an optional
    :class:`~repro.resilience.checkpoint.CommitLedger`: every accepted
    rewrite is verified against the pre-optimization reference, rolled
    back on miscompare, and the pair quarantined for the rest of the
    run.

    *tracer* is an optional :class:`~repro.obs.tracer.Tracer`; the
    pass records ``enumerate``/``pair``/``divide``/``atpg``/``commit``/
    ``verify`` spans under the caller's ``pass`` span.  ``None``
    traces nothing and costs nothing.
    """
    if stats is None:
        stats = SubstitutionStats()
    accepted_before = stats.accepted
    try:
        _run_pass(
            network, config, stats, reference, sim_filter, store,
            budget, ledger, as_tracer(tracer),
        )
    except BudgetExhausted:
        # Clean stop: every commit so far is applied (and verified, in
        # transactional mode); the caller reads budget.report().
        pass
    return stats.accepted - accepted_before


def _run_pass(
    network: Network,
    config: DivisionConfig,
    stats: SubstitutionStats,
    reference: Optional[Network],
    sim_filter,
    store,
    budget,
    ledger,
    tracer,
) -> None:
    accepted_before = stats.accepted
    n_enabled = len(enabled_attempts(config))
    names = [node.name for node in network.internal_nodes()]
    for f_name in names:
        if f_name not in network.nodes:
            continue
        node = network.nodes[f_name]
        if node.is_pi or node.is_constant() or node.cover is None:
            continue
        with tracer.span("enumerate", f=f_name) as enum_span:
            divisors = _candidate_divisors(network, f_name, config)
            enum_span.annotate(divisors=len(divisors))
        if not divisors:
            continue

        # Basic attempts per divisor first (this is the whole story in
        # basic mode; in extended mode it takes the cheap wins so the
        # decomposition step below only fires where basic failed).
        # In GDC mode the analysis circuit covers the whole network
        # minus TFO(f) and is divisor-independent, so it is built once
        # per dividend (rewrites of f itself never invalidate it — f's
        # own gates are excluded by construction).  It is built lazily:
        # when every pair of this dividend commits from the speculative
        # store, no live evaluation needs it.
        shared_circuit = None

        def _gdc_circuit(f_name=f_name):
            nonlocal shared_circuit
            if config.global_dc and shared_circuit is None:
                shared_circuit = build_analysis_circuit(
                    network, f_name, [], config
                )
            return shared_circuit

        for d_name in divisors:
            if d_name not in network.nodes:
                continue
            if budget is not None:
                budget.check()
            if ledger is not None and ledger.is_quarantined(
                f_name, d_name
            ):
                # Checked before the store: a rollback restores the
                # pre-commit node state exactly, so the stale
                # speculative outcome would otherwise be served again.
                continue
            with tracer.span("pair", f=f_name, d=d_name) as pair_span:
                outcome = None
                if store is not None:
                    # A valid speculative outcome equals what the live
                    # evaluation below would produce (the store's
                    # validity contract), so committing from it
                    # preserves the serial greedy sequence exactly.
                    # ``mutated`` is the count of commits this pass
                    # (int, truthy once anything landed): the store's
                    # whole-network invalidation trigger, and the
                    # dispatcher's cue for when a mid-pass delta ship
                    # could actually carry something new.
                    outcome = store.lookup(
                        network,
                        f_name,
                        d_name,
                        mutated=stats.accepted - accepted_before,
                    )
                if outcome is not None:
                    pair_speculative = True
                    if outcome.pruned:
                        stats.divisors_pruned += 1
                        pair_span.annotate(
                            speculative=True, pruned=True
                        )
                        continue
                    stats.attempts += 1
                    stats.divide_calls += outcome.divide_calls
                    if budget is not None:
                        budget.charge_divide_calls(outcome.divide_calls)
                    stats.variants_pruned += outcome.variants_pruned
                    result = outcome.result
                else:
                    pair_speculative = False
                    attempts = None
                    if sim_filter is not None:
                        # Pruning is evaluated against the *current*
                        # network state, so a skip is a proof
                        # divide_node_pair would return None right now
                        # — never a changed outcome.
                        attempts = sim_filter.viable_attempts(
                            f_name, d_name
                        )
                        if not attempts:
                            stats.divisors_pruned += 1
                            pair_span.annotate(pruned=True)
                            continue
                        stats.variants_pruned += n_enabled - len(attempts)
                    stats.attempts += 1
                    calls = n_enabled if attempts is None else len(attempts)
                    stats.divide_calls += calls
                    if budget is not None:
                        budget.charge_divide_calls(calls)
                    result = divide_node_pair(
                        network,
                        f_name,
                        d_name,
                        config,
                        circuit=_gdc_circuit(),
                        attempts=attempts,
                        budget=budget,
                        tracer=tracer,
                    )
                if result is None:
                    pair_span.annotate(
                        speculative=pair_speculative, accepted=False
                    )
                    continue
                with tracer.span(
                    "commit", f=f_name, d=d_name, via="basic"
                ) as commit_span:
                    snapshot = _Snapshot(network, [f_name])
                    apply_division(network, result)
                    _note_mutation(sim_filter, [f_name])
                    if not _verify_ok(
                        network, reference, config, sim_filter, tracer
                    ):
                        snapshot.restore()
                        _note_mutation(sim_filter, [f_name])
                        commit_span.annotate(accepted=False)
                        continue
                    if ledger is not None and not _ledger_verify(
                        ledger, network, f_name, d_name, tracer
                    ):
                        snapshot.restore()
                        _note_mutation(sim_filter, [f_name])
                        ledger.quarantine(f_name, d_name)
                        commit_span.annotate(accepted=False)
                        continue
                    stats.accepted += 1
                    stats.wires_removed += result.wires_removed
                    stats.cubes_removed += result.cubes_removed
                    commit_span.annotate(
                        accepted=True, gain=result.gain
                    )
                    pair_span.annotate(
                        speculative=pair_speculative, accepted=True
                    )

        if config.mode == "extended":
            # Extended division over the pooled candidates; repeat while
            # it keeps paying (f shrinks each time).  The pool is *not*
            # signature-pruned: with regional implications the pooled
            # divisors' gates feed the shared analysis circuit, so
            # dropping one would weaken implications for the others.
            for _ in range(4):
                if budget is not None:
                    budget.check()
                divisors = _candidate_divisors(network, f_name, config)
                if not divisors or not _try_extended(
                    network,
                    f_name,
                    divisors,
                    config,
                    stats,
                    reference,
                    sim_filter=sim_filter,
                    budget=budget,
                    ledger=ledger,
                    tracer=tracer,
                ):
                    break

    if config.mode == "extended" and config.try_pos:
        # The symmetric POS-side case (paper, end of Sec. IV) runs as a
        # second phase: a divisor decomposition perturbs every later
        # attempt on other dividends, so the SOP opportunities are
        # harvested across the whole network first.
        for f_name in names:
            if f_name not in network.nodes:
                continue
            node = network.nodes[f_name]
            if node.is_pi or node.is_constant() or node.cover is None:
                continue
            for _ in range(2):
                if budget is not None:
                    budget.check()
                divisors = _candidate_divisors(network, f_name, config)
                if not divisors or not _try_extended(
                    network,
                    f_name,
                    divisors,
                    config,
                    stats,
                    reference,
                    form="pos",
                    sim_filter=sim_filter,
                    budget=budget,
                    ledger=ledger,
                    tracer=tracer,
                ):
                    break


def substitute_network(
    network: Network,
    config: DivisionConfig,
    reference: Optional[Network] = None,
    stats: Optional[SubstitutionStats] = None,
    n_jobs: Optional[int] = None,
    budget=None,
    tracer=None,
) -> SubstitutionStats:
    """Run substitution passes to a fixpoint (the paper's "one run").

    Returns the statistics, including factored-literal counts before
    and after and the wall-clock time spent.  Passing an existing
    *stats* object accumulates into it — every counter (including the
    sim-filter cache/resim counters and the literal totals) is *added*,
    never overwritten, so multi-run flows can aggregate one ledger
    across calls.

    *n_jobs* overrides ``config.n_jobs``.  With more than one job each
    pass runs the speculative engine (:mod:`repro.parallel`): candidate
    pairs are evaluated against a frozen snapshot on worker processes
    (or in-process for ``parallel_backend="serial"``) and committed in
    the serial greedy order through the deterministic protocol, so the
    optimized network is byte-identical to a serial run.

    *budget* is an optional
    :class:`~repro.resilience.budget.RunBudget` shared with the caller
    (e.g. across a multi-network flow); when it is ``None`` one is
    built from the config's limits (``deadline_seconds``,
    ``max_divide_calls``, ``max_run_backtracks``), if any.  A tripped
    budget stops the run cleanly with the best-so-far network and a
    :class:`~repro.resilience.budget.BudgetReport` in
    ``stats.budget_report``.  With ``config.verify_commits`` every
    accepted rewrite is verified against a pre-run reference copy,
    rolled back on miscompare, and the offending pair quarantined
    (incidents land in ``stats.incidents``).

    *tracer* is an optional :class:`~repro.obs.tracer.Tracer`; the run
    records a ``run`` span with one ``pass`` span per sweep and the
    pipeline spans beneath (worker-recorded spans are merged in from
    the parallel engine).  The default ``None`` traces nothing, costs
    (near) nothing, and the optimized network is byte-identical either
    way — tracing never influences control flow.
    """
    tracer = as_tracer(tracer)
    if config.method == "simguided":
        # The simulation-guided engine (same outer contract, opposite
        # candidate-finding strategy).  Imported lazily — repro.resub
        # imports this module for the stats/undo machinery.
        from repro.resub.engine import simguided_substitute

        gc_before = resource_mod.gc_collections_total()
        stats = simguided_substitute(
            network,
            config,
            reference=reference,
            stats=stats,
            budget=budget,
            tracer=tracer,
        )
        _record_process_telemetry(stats, gc_before)
        return stats
    if n_jobs is not None and n_jobs != config.n_jobs:
        config = dataclasses.replace(config, n_jobs=n_jobs)
    if stats is None:
        stats = SubstitutionStats()
    if budget is None:
        budget = RunBudget.from_config(config)
    stats.literals_before += network_literals(network)
    if (
        config.verify_with_simulation or config.verify_commits
    ) and reference is None:
        reference = network.copy("reference")
    gc_before = resource_mod.gc_collections_total()
    start = time.perf_counter()
    sim_filter = None
    if config.enable_sim_filter:
        # Imported lazily: repro.sim.filter imports repro.core.division,
        # so a top-level import here would be circular via
        # repro.core.__init__.
        from repro.sim.filter import DivisorFilter

        sim_filter = DivisorFilter(network, config)
    ledger = None
    if config.verify_commits:
        ledger = CommitLedger(reference, config, sim_filter)
    engine = None
    if config.n_jobs > 1:
        # Lazy for the same circularity reason as the filter above.
        from repro.parallel.engine import SpeculativeEngine

        engine = SpeculativeEngine(config)
    #: The budget may be shared across several runs accumulating into
    #: the same *stats*; charge only this run's ATPG-incomplete delta
    #: (the ledger on the budget is cumulative).
    atpg_incomplete_before = budget.atpg_incomplete if budget else 0
    try:
        with tracer.span(
            "run", circuit=network.name, mode=config.mode,
            jobs=config.n_jobs,
        ) as run_span:
            for index in range(config.max_passes):
                if budget is not None and budget.exhausted():
                    break
                with tracer.span("pass", index=index) as pass_span:
                    store = None
                    if engine is not None:
                        store = engine.precompute(
                            network, sim_filter=sim_filter, tracer=tracer
                        )
                    try:
                        accepted = substitute_pass(
                            network,
                            config,
                            stats,
                            reference,
                            sim_filter=sim_filter,
                            store=store,
                            budget=budget,
                            ledger=ledger,
                            tracer=tracer,
                        )
                    finally:
                        if engine is not None and store is not None:
                            engine.finish_pass(store)
                    pass_span.annotate(accepted=accepted)
                if accepted == 0:
                    break
            network.sweep_dangling()
            run_span.annotate(accepted=stats.accepted)
    finally:
        # The engine owns OS resources (worker processes, a shared
        # memory segment); close unconditionally so a budget stop or
        # an engine error can never leak them.
        if engine is not None:
            engine.close()
    if sim_filter is not None:
        # Pick up nodes dropped by the sweep, then fold the filter's
        # counters into the run statistics.  Accumulate — *stats* may
        # already carry counts from a previous run.
        sim_filter.note_mutation([])
        stats.sim_cache_hits += sim_filter.cache_hits
        stats.sim_cache_misses += sim_filter.cache_misses
        stats.resim_nodes += sim_filter.sim.nodes_resimulated
    if engine is not None:
        engine.collect()
        stats.parallel_jobs = max(stats.parallel_jobs, engine.jobs)
        stats.parallel_batches += engine.batches
        stats.parallel_pairs_evaluated += engine.pairs_evaluated
        stats.parallel_pairs_reused += engine.reused
        stats.parallel_pairs_invalidated += engine.invalidated
        stats.worker_faults += engine.worker_faults
        stats.shards_redispatched += engine.shards_redispatched
        stats.degraded_to_serial += engine.degraded_to_serial
        stats.heartbeats_recorded += engine.heartbeats
        stats.stalls_detected += engine.stalls
        stats.parallel_deltas_shipped += engine.deltas_shipped
        stats.parallel_delta_nodes += engine.delta_nodes
        stats.parallel_pairs_stale_skipped += engine.pairs_stale_skipped
        stats.parallel_snapshot_bytes += engine.snapshot_bytes
        stats.parallel_batch_bytes += engine.batch_bytes
        for phase, seconds in engine.phase_seconds.items():
            stats.parallel_phase_seconds[phase] = (
                stats.parallel_phase_seconds.get(phase, 0.0) + seconds
            )
    if ledger is not None:
        stats.commits_verified += ledger.verified
        stats.commits_rolled_back += ledger.rolled_back
        stats.pairs_quarantined += len(ledger.quarantined)
        stats.incidents.extend(ledger.incidents)
        stats.sat_solves += ledger.sat_solves
        stats.sat_conflicts += ledger.sat_conflicts
        stats.sat_decisions += ledger.sat_decisions
        stats.sat_propagations += ledger.sat_propagations
        stats.sat_learned += ledger.sat_learned
    if budget is not None:
        stats.atpg_incomplete += (
            budget.atpg_incomplete - atpg_incomplete_before
        )
        stats.budget_report = budget.report()
    stats.cpu_seconds += time.perf_counter() - start
    stats.literals_after += network_literals(network)
    _record_process_telemetry(stats, gc_before)
    return stats


def _record_process_telemetry(
    stats: SubstitutionStats, gc_collections_before: int
) -> None:
    """Fold end-of-run process observations into *stats*.

    Peak RSS folds by max (it is a high-water mark, monotone across
    accumulating runs); GC collections fold by delta so a shared stats
    object counts only collections that happened during its runs.
    """
    stats.peak_rss_bytes = max(
        stats.peak_rss_bytes, resource_mod.peak_rss_bytes()
    )
    stats.gc_collections += max(
        0, resource_mod.gc_collections_total() - gc_collections_before
    )
