"""Basic Boolean division by redundancy addition and removal.

Section III-B of the paper, generalized to the full set of variants the
experiments need:

* divisor used in positive or complemented phase,
* dividend treated in sum-of-products or (dually) product-of-sums form,
* implications confined to the dividend/divisor regions or extended
  through the whole circuit (global don't cares), with optional
  recursive learning,
* division by a *core* subset of the divisor's cubes (the hook used by
  extended division).

The algorithm, for ``f`` divided by ``d``:

1. Map ``f`` and ``d`` into a shared variable space and split the
   dividend's cubes into the region ``F1`` (cubes contained by some
   divisor cube — the divisor is an SOS of ``F1``) and the remainder
   ``R``.  By Lemma 1 the rewrite ``f = R + (d · F1)`` is redundant *a
   priori*.
2. Run redundancy removal inside ``F1``: a literal wire whose
   stuck-at-1 mandatory assignments conflict is dropped; a cube whose
   OR-input stuck-at-0 mandatory assignments conflict is dropped.  The
   mandatory set encodes the specialized structure: activation, the
   faulty cube's side literals at 1, every other region cube at 0, the
   divisor at its required phase, and every remainder cube at 0 —
   implications then flow through the divisor's gates (and, with
   global don't cares, through the rest of the circuit), which is
   exactly what makes the division Boolean.
3. What survives of ``F1`` is the quotient: ``f = d·q + r``.

POS-form division reuses the same machinery through duality: with
``F' = complement(f)``, a POS division of ``f`` by ``d`` is the SOP
division ``f' = d'·q + r``, and the result is complemented back.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind
from repro.atpg.implication import Conflict, ImplicationEngine
from repro.atpg.learning import learn_implications
from repro.network.factor import factored_literals
from repro.network.network import Network
from repro.core.config import DivisionConfig
from repro.core.sos_pos import sos_split
from repro.obs.tracer import NULL_TRACER, as_tracer

#: Synthetic OR gate asserting the (possibly core) divisor's value.
CORE_SIGNAL = "__core__"

#: The four (phase, form) variants of basic division, in the order
#: :func:`divide_node_pair` tries them.  Subsets passed via its
#: ``attempts`` parameter must preserve this order so equal-gain ties
#: break identically with and without candidate filtering.
ALL_ATTEMPTS: Tuple[Tuple[bool, str], ...] = (
    (True, "sop"),
    (False, "sop"),
    (True, "pos"),
    (False, "pos"),
)


def enabled_attempts(config: DivisionConfig) -> List[Tuple[bool, str]]:
    """The (phase, form) variants *config* allows, in canonical order."""
    attempts: List[Tuple[bool, str]] = [(True, "sop")]
    if config.try_complement:
        attempts.append((False, "sop"))
    if config.try_pos:
        attempts.append((True, "pos"))
        if config.try_complement:
            attempts.append((False, "pos"))
    return attempts


@dataclasses.dataclass
class DivisionResult:
    """Outcome of one Boolean division of node *f* by node *d*."""

    f_name: str
    divisor_name: str
    #: True when the substituted literal is the divisor itself,
    #: False when it is the divisor's complement.
    phase: bool
    #: "sop" or "pos" — the form in which the division ran.
    form: str
    #: New fanin list and cover for *f* after substitution.
    new_fanins: List[str]
    new_cover: Cover
    #: Quotient and remainder in the shared variable space (for the
    #: POS form these describe the dual/complement division).
    quotient: Cover
    remainder: Cover
    #: Region statistics from the removal loop.
    wires_removed: int = 0
    cubes_removed: int = 0
    #: Factored-literal gain on *f* (decomposition costs not included).
    gain: int = 0


def _uniform_node_gates(
    name: str, fanins: Sequence[str], cover: Cover, cube_prefix: str
) -> List[Gate]:
    """Two-level gates with one AND per cube (uniform, for analysis).

    Unlike :func:`repro.circuit.decompose.node_region_gates`, every
    cube gets its own gate (``{name}{cube_prefix}{i}``) so mandatory
    assignments can name individual cubes.
    """
    if cover.is_zero():
        return [Gate(name, GateKind.CONST0)]
    if cover.is_one_cube():
        return [Gate(name, GateKind.CONST1)]
    gates: List[Gate] = []
    or_inputs: List[Tuple[str, bool]] = []
    for i, cube in enumerate(cover.cubes):
        gate_name = f"{name}{cube_prefix}{i}"
        inputs = [(fanins[v], p) for v, p in cube.literals()]
        gates.append(Gate(gate_name, GateKind.AND, inputs))
        or_inputs.append((gate_name, True))
    gates.append(Gate(name, GateKind.OR, or_inputs))
    return gates


def divisor_cube_signal(divisor_name: str, index: int) -> str:
    """Signal name of a divisor cube's AND gate in analysis circuits."""
    return f"{divisor_name}.k{index}"


def dividend_cube_signal(f_name: str, index: int) -> str:
    """Signal name of a dividend cube's AND gate in analysis circuits."""
    return f"{f_name}.q{index}"


def build_analysis_circuit(
    network: Network,
    f_name: str,
    divisor_names: Sequence[str],
    config: DivisionConfig,
) -> Circuit:
    """The implication circuit for dividing *f* by the given divisors.

    Always contains the divisors' two-level structure.  With
    ``config.global_dc`` it additionally contains every node outside
    the transitive fanout of *f* (signals there are fault-free, so
    their implications are sound necessary conditions); without it,
    all other signals are free variables.

    The dividend's cube gates are added separately by the caller
    because their cubes change during the removal loop (and differ
    between SOP and POS form).
    """
    circuit = Circuit(f"div:{f_name}")
    excluded: Set[str] = {f_name}
    if config.global_dc:
        excluded |= network.transitive_fanout(f_name)
        include = [
            name
            for name in network.topo_order()
            if name not in excluded
        ]
    else:
        include = [d for d in divisor_names if d not in excluded]

    added: Set[str] = set()
    for name in include:
        node = network.nodes[name]
        if node.is_pi:
            circuit.add_pi(name)
            added.add(name)
            continue
        for gate in _uniform_node_gates(
            name, node.fanins, node.cover, ".k"
        ):
            circuit.add_gate(gate)
        added.add(name)

    # Any referenced signal without a driver becomes a free PI.
    referenced: Set[str] = set()
    for gate in list(circuit.gates.values()):
        for signal, _ in gate.inputs:
            referenced.add(signal)
    for name in network.nodes:
        if name in referenced and name not in circuit.gates:
            circuit.add_pi(name)
    return circuit


class _RegionRemover:
    """The wire/cube redundancy-removal loop over the ``F1`` region."""

    def __init__(
        self,
        circuit: Circuit,
        f_name: str,
        shared: List[str],
        region: Dict[int, Cube],
        remainder_signals: List[str],
        divisor_assignment: Tuple[str, bool],
        config: DivisionConfig,
        budget=None,
    ):
        self.circuit = circuit
        self.f_name = f_name
        self.shared = shared
        self.region = region
        self.remainder_signals = remainder_signals
        self.divisor_assignment = divisor_assignment
        self.config = config
        #: Optional :class:`~repro.resilience.budget.RunBudget`; the
        #: wall-clock deadline is honoured before every redundancy test
        #: so one pathological region cannot overshoot it by more than
        #: a single implication run.
        self.budget = budget
        self.wires_removed = 0
        self.cubes_removed = 0
        #: Optional complete-don't-care oracle: called with a candidate
        #: region (post-removal) when the implication test fails; True
        #: means the removal is still safe (the change lies entirely in
        #: the node's don't-care set).
        self.removal_oracle = None
        for i, cube in region.items():
            self._install_cube_gate(i, cube)

    # -- circuit bookkeeping -------------------------------------------
    def _install_cube_gate(self, index: int, cube: Cube) -> None:
        name = dividend_cube_signal(self.f_name, index)
        inputs = [(self.shared[v], p) for v, p in cube.literals()]
        if name in self.circuit.gates:
            self.circuit.remove_gate(name)
        if inputs:
            self.circuit.add_and(name, inputs)
        else:
            self.circuit.add_gate(Gate(name, GateKind.CONST1))

    def _drop_cube_gate(self, index: int) -> None:
        name = dividend_cube_signal(self.f_name, index)
        if name in self.circuit.gates:
            self.circuit.remove_gate(name)

    # -- fault checks ---------------------------------------------------
    def _base_assignments(self, active: int) -> List[Tuple[str, bool]]:
        assignments = [self.divisor_assignment]
        for j in self.region:
            if j != active:
                assignments.append(
                    (dividend_cube_signal(self.f_name, j), False)
                )
        for signal in self.remainder_signals:
            assignments.append((signal, False))
        return assignments

    def _conflicts(self, assignments: List[Tuple[str, bool]]) -> bool:
        engine = ImplicationEngine(self.circuit)
        try:
            engine.assign_many(assignments)
            engine.propagate()
            if self.config.learn_depth > 0:
                learn_implications(engine, self.config.learn_depth)
        except Conflict:
            return True
        return False

    def _literal_removable(self, index: int, var: int, phase: bool) -> bool:
        """Stuck-at-1 test of one literal wire of a region cube."""
        if self.budget is not None:
            self.budget.check_deadline()
        cube = self.region[index]
        assignments = self._base_assignments(index)
        assignments.append((self.shared[var], not phase))
        for v, p in cube.literals():
            if v != var:
                assignments.append((self.shared[v], p))
        if self._conflicts(assignments):
            return True
        if self.removal_oracle is not None:
            candidate = dict(self.region)
            candidate[index] = cube.without_var(var)
            return self.removal_oracle(candidate)
        return False

    def _cube_removable(self, index: int) -> bool:
        """Stuck-at-0 test of a region cube's OR input."""
        if self.budget is not None:
            self.budget.check_deadline()
        cube = self.region[index]
        assignments = self._base_assignments(index)
        for v, p in cube.literals():
            assignments.append((self.shared[v], p))
        if self._conflicts(assignments):
            return True
        if self.removal_oracle is not None:
            candidate = dict(self.region)
            del candidate[index]
            return self.removal_oracle(candidate)
        return False

    # -- main loop ------------------------------------------------------
    def run(self) -> None:
        changed = True
        while changed:
            changed = False
            for index in sorted(self.region):
                cube = self.region[index]
                for var, phase in list(cube.literals()):
                    if self._literal_removable(index, var, phase):
                        cube = cube.without_var(var)
                        self.region[index] = cube
                        self._install_cube_gate(index, cube)
                        self.wires_removed += 1
                        changed = True
                if len(self.region) > 1 and self._cube_removable(index):
                    del self.region[index]
                    self._drop_cube_gate(index)
                    self.cubes_removed += 1
                    changed = True


def boolean_divide(
    network: Network,
    f_name: str,
    divisor_name: str,
    config: DivisionConfig,
    phase: bool = True,
    form: str = "sop",
    core_indices: Optional[Sequence[int]] = None,
    substitute_as: Optional[str] = None,
    circuit: Optional[Circuit] = None,
    budget=None,
    tracer=None,
) -> Optional[DivisionResult]:
    """Divide node *f* by node *divisor* using RAR; None on failure.

    *core_indices* restricts the divisor to a subset of its cubes (the
    extended-division core); it requires ``phase=True`` and
    ``form="sop"``.  *substitute_as* names the node the substituted
    literal should reference (the exposed core node in extended
    division); it defaults to *divisor_name*.  *circuit* lets callers
    reuse a prebuilt analysis circuit (the dividend cube gates are
    managed by this function either way).  *budget* is an optional
    :class:`~repro.resilience.budget.RunBudget` whose deadline is
    honoured inside the removal loop (may raise
    :class:`~repro.resilience.budget.BudgetExhausted`).  *tracer* is an
    optional :class:`~repro.obs.tracer.Tracer`; every invocation
    records one ``divide`` span (with nested ``atpg`` spans for the
    removal loops) and ``None`` traces nothing.
    """
    tracer = as_tracer(tracer)
    if not tracer.enabled:
        return _boolean_divide_impl(
            network, f_name, divisor_name, config, phase, form,
            core_indices, substitute_as, circuit, budget, NULL_TRACER,
        )
    with tracer.span(
        "divide",
        f=f_name,
        d=divisor_name,
        phase=phase,
        form=form,
        core=core_indices is not None,
    ) as span:
        result = _boolean_divide_impl(
            network, f_name, divisor_name, config, phase, form,
            core_indices, substitute_as, circuit, budget, tracer,
        )
        span.annotate(
            success=result is not None,
            gain=None if result is None else result.gain,
        )
        return result


def _boolean_divide_impl(
    network: Network,
    f_name: str,
    divisor_name: str,
    config: DivisionConfig,
    phase: bool,
    form: str,
    core_indices: Optional[Sequence[int]],
    substitute_as: Optional[str],
    circuit: Optional[Circuit],
    budget,
    tracer,
) -> Optional[DivisionResult]:
    if form not in ("sop", "pos"):
        raise ValueError("form must be 'sop' or 'pos'")
    f_node = network.nodes[f_name]
    d_node = network.nodes[divisor_name]
    if f_node.cover is None or d_node.cover is None:
        return None
    if d_node.is_constant() or f_node.is_constant():
        return None
    if core_indices is not None and (not phase or form != "sop"):
        raise ValueError("core division requires phase=True and form='sop'")

    # ------------------------------------------------------------------
    # Shared variable space.
    # ------------------------------------------------------------------
    shared = list(f_node.fanins)
    for name in d_node.fanins:
        if name not in shared:
            shared.append(name)
    index = {name: i for i, name in enumerate(shared)}
    n = len(shared)

    dividend = f_node.cover if form == "sop" else complement(f_node.cover)
    if dividend.is_zero() or dividend.is_one_cube():
        return None
    if dividend.num_cubes() > config.max_region_cubes:
        return None
    f_map = [index[name] for name in f_node.fanins]
    dividend_s = dividend.remap(f_map, n)

    # Effective divisor phase in the (possibly dual) SOP space: a POS
    # division of f by d is an SOP division of f' by d'.
    eff_phase = phase if form == "sop" else not phase
    d_map = [index[name] for name in d_node.fanins]
    divisor_candidates: List[Cover] = []
    if core_indices is not None:
        divisor_candidates.append(
            Cover(
                d_node.cover.num_vars,
                [d_node.cover.cubes[i] for i in core_indices],
            ).remap(d_map, n)
        )
    else:
        if divisor_name in index:
            # The divisor is already one of f's fanins, so the
            # dividend's cubes mention it as a *literal*: take the SOS
            # containment against that literal.  Re-dividing by an
            # existing fanin is how implication conflicts through the
            # fanin's logic simplify f in place.
            divisor_candidates.append(
                Cover(n, [Cube.literal(index[divisor_name], eff_phase)])
            )
        if eff_phase:
            divisor_candidates.append(d_node.cover.remap(d_map, n))
        else:
            divisor_candidates.append(
                complement(d_node.cover).remap(d_map, n)
            )

    # ------------------------------------------------------------------
    # Substituted-cover plumbing shared across candidates.
    # ------------------------------------------------------------------
    y_name = substitute_as or divisor_name
    if y_name in index:
        y_var, new_fanins, width = index[y_name], list(shared), n
    else:
        y_var, new_fanins, width = n, shared + [y_name], n + 1
    y_literal = Cube.literal(y_var, eff_phase)
    base_circuit = circuit

    def run_one(divisor_s: Cover) -> Optional[DivisionResult]:
        region_ids, remainder_ids = sos_split(dividend_s, divisor_s)
        if not region_ids:
            return None

        # -- analysis circuit and the divisor assignment ----------------
        if base_circuit is None:
            work = build_analysis_circuit(
                network, f_name, [divisor_name], config
            )
        else:
            work = base_circuit.copy()
        if core_indices is not None:
            core_or = [
                (divisor_cube_signal(divisor_name, i), True)
                for i in core_indices
                if divisor_cube_signal(divisor_name, i) in work.gates
            ]
            if len(core_or) != len(list(core_indices)):
                # Divisor was degenerate (constant or single-cube node
                # without per-cube gates); core division does not apply.
                return None
            work.add_or(CORE_SIGNAL, core_or)
            divisor_assignment = (CORE_SIGNAL, True)
        else:
            divisor_assignment = (divisor_name, eff_phase)

        region = {i: dividend_s.cubes[i] for i in region_ids}
        remainder_cubes = [dividend_s.cubes[i] for i in remainder_ids]
        remover = _RegionRemover(
            circuit=work,
            f_name=f_name,
            shared=shared,
            region=region,
            remainder_signals=[],
            divisor_assignment=divisor_assignment,
            config=config,
            budget=budget,
        )
        # Remainder cubes also need gates (they are asserted to 0
        # during propagation through f's output OR).
        remainder_signals = []
        for offset, cube in enumerate(remainder_cubes):
            name = dividend_cube_signal(
                f_name, len(dividend_s.cubes) + offset
            )
            inputs = [(shared[v], p) for v, p in cube.literals()]
            if inputs:
                work.add_and(name, inputs)
            else:  # a full remainder cube would make f constant 1
                work.add_gate(Gate(name, GateKind.CONST1))
            remainder_signals.append(name)
        remover.remainder_signals = remainder_signals

        def assemble(region_dict: Dict[int, Cube]) -> Optional[Cover]:
            cubes: List[Cube] = []
            for i in sorted(region_dict):
                merged = region_dict[i].intersect(y_literal)
                if merged is None:
                    return None  # quotient mentions y in opposite phase
                cubes.append(merged)
            cubes.extend(remainder_cubes)
            cover = Cover(width, cubes).single_cube_containment()
            if form == "pos":
                cover = complement(cover)
            return cover

        if (
            config.oracle_dc
            and substitute_as is None
            and len(network.pis) <= 20
        ):
            from repro.network.verify import networks_equivalent

            reference = network.copy("oracle-reference")

            def oracle(candidate: Dict[int, Cube]) -> bool:
                if not candidate:
                    return False
                cover = assemble(candidate)
                if cover is None:
                    return False
                saved = (list(f_node.fanins), f_node.cover)
                try:
                    f_node.set_function(new_fanins, cover)
                    return networks_equivalent(reference, network)
                finally:
                    f_node.set_function(*saved)

            remover.removal_oracle = oracle

        with tracer.span(
            "atpg", f=f_name, d=divisor_name, region=len(region)
        ) as atpg_span:
            remover.run()
            atpg_span.annotate(
                wires_removed=remover.wires_removed,
                cubes_removed=remover.cubes_removed,
            )

        if not remover.region:
            return None
        quotient = Cover(
            n, [remover.region[i] for i in sorted(remover.region)]
        )
        remainder = Cover(n, remainder_cubes)
        substituted = assemble(remover.region)
        if substituted is None:
            return None

        gain = factored_literals(f_node.cover) - factored_literals(
            substituted
        )
        return DivisionResult(
            f_name=f_name,
            divisor_name=y_name,
            phase=phase,
            form=form,
            new_fanins=new_fanins,
            new_cover=substituted,
            quotient=quotient,
            remainder=remainder,
            wires_removed=remover.wires_removed,
            cubes_removed=remover.cubes_removed,
            gain=gain,
        )

    best: Optional[DivisionResult] = None
    for candidate in divisor_candidates:
        if candidate.is_zero():
            continue
        result = run_one(candidate)
        if result is not None and (best is None or result.gain > best.gain):
            best = result
    return best


def apply_division(network: Network, result: DivisionResult) -> None:
    """Install a division result on the network (in place)."""
    node = network.nodes[result.f_name]
    node.set_function(result.new_fanins, result.new_cover)
    node.prune_unused_fanins()


def divide_node_pair(
    network: Network,
    f_name: str,
    divisor_name: str,
    config: DivisionConfig,
    circuit: Optional[Circuit] = None,
    attempts: Optional[Sequence[Tuple[bool, str]]] = None,
    budget=None,
    tracer=None,
) -> Optional[DivisionResult]:
    """Best basic division of *f* by *d* across phases and forms.

    Tries the SOP form with the divisor positive, then (per config) the
    complemented divisor and the POS form, returning the variant with
    the largest positive factored-literal gain, or ``None``.

    *attempts* restricts the (phase, form) variants actually run — the
    signature filter passes the subset it could not refute; variants it
    proved hopeless would return ``None`` here anyway, so the result is
    unchanged.  The subset must keep :data:`ALL_ATTEMPTS` order.
    """
    if attempts is None:
        attempts = enabled_attempts(config)

    best: Optional[DivisionResult] = None
    for phase, form in attempts:
        result = boolean_divide(
            network,
            f_name,
            divisor_name,
            config,
            phase=phase,
            form=form,
            circuit=circuit,
            budget=budget,
            tracer=tracer,
        )
        if result is not None and result.gain > 0:
            if best is None or result.gain > best.gain:
                best = result
    return best


def evaluate_division(
    network: Network,
    f_name: str,
    divisor_name: str,
    config: DivisionConfig,
    attempts: Optional[Sequence[Tuple[bool, str]]] = None,
    circuit: Optional[Circuit] = None,
    tracer=None,
) -> Optional[DivisionResult]:
    """Side-effect-free division of one candidate pair (worker entry).

    This is :func:`divide_node_pair` behind the guards the substitution
    loop normally provides, packaged for speculative evaluation: every
    argument and the returned :class:`DivisionResult` are picklable, the
    network is only *read* (``oracle_dc`` mode mutates-and-restores a
    node transiently, which is safe because workers operate on private
    snapshot copies), and the outcome is a pure function of *f*'s and
    the divisor's ``(fanins, cover)`` state — plus, with
    ``config.global_dc``/``config.oracle_dc``, of the rest of the
    network — which is exactly the validity contract the commit
    protocol in :mod:`repro.parallel.engine` relies on.
    """
    if f_name not in network.nodes or divisor_name not in network.nodes:
        return None
    f_node = network.nodes[f_name]
    if f_node.is_pi or f_node.is_constant() or f_node.cover is None:
        return None
    return divide_node_pair(
        network,
        f_name,
        divisor_name,
        config,
        circuit=circuit,
        attempts=attempts,
        tracer=tracer,
    )
