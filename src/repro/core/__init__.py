"""The paper's contribution: RAR-based Boolean division/substitution.

* :mod:`repro.core.sos_pos` — sum-of-subproducts / product-of-subsums
  containment (Section III-A, Lemmas 1 and 2),
* :mod:`repro.core.division` — basic Boolean division by redundancy
  addition and removal (Section III-B),
* :mod:`repro.core.extended` — extended division: the vote table and
  maximal-clique core-divisor selection (Section IV),
* :mod:`repro.core.substitution` — network-level substitution passes in
  the paper's three experimental configurations,
* :mod:`repro.core.config` — the knobs tying it together.
"""

from repro.core.config import (
    DivisionConfig,
    BASIC,
    EXTENDED,
    EXTENDED_GDC,
    ORACLE,
    SIMGUIDED,
)
from repro.core.sos_pos import is_sos_of, is_pos_of, sos_split, pos_split
from repro.core.division import DivisionResult, boolean_divide, divide_node_pair
from repro.core.extended import (
    VoteTable,
    build_vote_table,
    choose_core_divisor,
    decompose_divisor,
    decompose_divisor_pos,
)
from repro.core.substitution import (
    substitute_pass,
    substitute_network,
    SubstitutionStats,
)

__all__ = [
    "DivisionConfig",
    "BASIC",
    "EXTENDED",
    "EXTENDED_GDC",
    "ORACLE",
    "SIMGUIDED",
    "is_sos_of",
    "is_pos_of",
    "sos_split",
    "pos_split",
    "DivisionResult",
    "boolean_divide",
    "divide_node_pair",
    "VoteTable",
    "build_vote_table",
    "choose_core_divisor",
    "decompose_divisor",
    "decompose_divisor_pos",
    "substitute_pass",
    "substitute_network",
    "SubstitutionStats",
]
