"""Testing-based machinery: implications, faults, redundancy.

The Boolean power of the paper's division algorithm comes entirely
from here: a stuck-at fault whose mandatory assignments imply a
conflict is untestable, and an untestable fault means the wire can be
replaced by a constant — i.e. removed.

* :mod:`repro.atpg.implication` — three-valued direct implication
  engine over :class:`repro.circuit.Circuit` with conflict detection,
* :mod:`repro.atpg.learning` — one-level recursive learning, the
  adjustable "more don't cares for more run time" knob of Section V,
* :mod:`repro.atpg.fault` — stuck-at faults and mandatory assignments,
* :mod:`repro.atpg.redundancy` — generic redundancy identification and
  removal for circuits (the classical RAR substrate of Section II).
"""

from repro.atpg.implication import ImplicationEngine, Conflict
from repro.atpg.fault import StuckAtFault, mandatory_assignments
from repro.atpg.redundancy import wire_is_redundant, redundancy_removal
from repro.atpg.learning import learn_implications
from repro.atpg.simulate import (
    fault_coverage,
    faulty_evaluate,
    find_test_exhaustive,
)
from repro.atpg.dalg import generate_test, prove_redundant, build_miter

__all__ = [
    "ImplicationEngine",
    "Conflict",
    "StuckAtFault",
    "mandatory_assignments",
    "wire_is_redundant",
    "redundancy_removal",
    "learn_implications",
    "fault_coverage",
    "faulty_evaluate",
    "find_test_exhaustive",
    "generate_test",
    "prove_redundant",
    "build_miter",
]
