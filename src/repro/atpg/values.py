"""Three-valued logic helpers.

The implication engine stores values as ``True`` / ``False`` with
absence meaning unknown; these helpers give that convention a name and
provide the AND/OR tables for code that wants to work with explicit
ternary values.
"""

from __future__ import annotations

from typing import Optional

UNKNOWN = None

Ternary = Optional[bool]


def t_and(a: Ternary, b: Ternary) -> Ternary:
    """Ternary AND (False dominates)."""
    if a is False or b is False:
        return False
    if a is True and b is True:
        return True
    return UNKNOWN


def t_or(a: Ternary, b: Ternary) -> Ternary:
    """Ternary OR (True dominates)."""
    if a is True or b is True:
        return True
    if a is False and b is False:
        return False
    return UNKNOWN


def t_not(a: Ternary) -> Ternary:
    """Ternary NOT (unknown stays unknown)."""
    if a is UNKNOWN:
        return UNKNOWN
    return not a


def to_char(a: Ternary) -> str:
    """Render a ternary value as '0', '1' or 'x'."""
    if a is UNKNOWN:
        return "x"
    return "1" if a else "0"
