"""Stuck-at faults and their mandatory assignments.

A wire is an input edge of a gate.  The mandatory assignments of a
stuck-at fault are values every test vector must produce in the good
circuit: the activation value at the fault site, plus non-controlling
side-input values along the propagation path while that path is
unique.  If the mandatory assignments are contradictory, no test
exists and the fault is untestable (hence the wire is redundant).

Using only *necessary* conditions keeps the check sound: a conflict
genuinely proves untestability, while the absence of a conflict proves
nothing (the classical one-sidedness all RAR methods rely on).
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Set, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.gate import GateKind


class StuckAtFault:
    """Stuck-at fault on an input edge of a gate."""

    __slots__ = ("gate", "input_index", "stuck_value")

    def __init__(self, gate: str, input_index: int, stuck_value: bool):
        self.gate = gate
        self.input_index = input_index
        self.stuck_value = stuck_value

    def __repr__(self) -> str:
        return (
            f"StuckAtFault({self.gate}[{self.input_index}] "
            f"s-a-{int(self.stuck_value)})"
        )


def mandatory_assignments(
    circuit: Circuit,
    fault: StuckAtFault,
    observables: Optional[Set[str]] = None,
) -> List[Tuple[str, bool]]:
    """Necessary signal values for any test of *fault*.

    Side-input requirements are collected along the propagation path as
    long as it is unique (single fanout); at a fanout point collection
    stops (further conditions would not be necessary).  *observables*
    marks signals where propagation may stop (defaults to signals with
    no fanout).
    """
    gate = circuit.gates[fault.gate]
    if gate.kind not in (GateKind.AND, GateKind.OR):
        raise ValueError("faults are modelled on AND/OR gate inputs")
    signal, phase = gate.inputs[fault.input_index]

    assignments: List[Tuple[str, bool]] = []
    # Activation: the fault site must carry the opposite of the stuck
    # value; translate the literal value back to the signal value.
    literal_value = not fault.stuck_value
    assignments.append((signal, literal_value if phase else not literal_value))

    # Side inputs of the faulty gate must be non-controlling.
    non_controlling = not gate.controlling_value()
    for i, (side_signal, side_phase) in enumerate(gate.inputs):
        if i == fault.input_index:
            continue
        assignments.append(
            (
                side_signal,
                non_controlling if side_phase else not non_controlling,
            )
        )

    # Walk the unique propagation path.
    fanouts = circuit.fanouts()
    current = gate.name
    if observables is None:
        observables = {
            name for name, outs in fanouts.items() if not outs
        }
    while current not in observables:
        outs = fanouts.get(current, ())
        if len(outs) != 1:
            break  # propagation choice exists; stop collecting.
        next_gate = circuit.gates[outs[0]]
        if next_gate.kind not in (GateKind.AND, GateKind.OR):
            break
        non_controlling = not next_gate.controlling_value()
        for side_signal, side_phase in next_gate.inputs:
            if side_signal == current:
                continue
            assignments.append(
                (
                    side_signal,
                    non_controlling if side_phase else not non_controlling,
                )
            )
        current = next_gate.name
    return assignments


def all_wire_faults(circuit: Circuit) -> Iterable[StuckAtFault]:
    """Enumerate the removal-relevant fault on every wire.

    For an AND input, stuck-at-1 untestable means the wire can be
    replaced by constant 1 (dropped); for an OR input, stuck-at-0.
    """
    for gate in circuit.gates.values():
        if gate.kind == GateKind.AND:
            for i in range(len(gate.inputs)):
                yield StuckAtFault(gate.name, i, True)
        elif gate.kind == GateKind.OR:
            for i in range(len(gate.inputs)):
                yield StuckAtFault(gate.name, i, False)
