"""Recursive learning on top of direct implications.

The paper points out (Section III-B) that the implication method is a
dial: direct implications are fast, "quite exhaustive" techniques like
recursive learning [Kunz & Pradhan] find more conflicts — i.e. expose
more internal don't cares — for more run time.  This module implements
bounded-depth recursive learning:

for every unjustified gate, try each justification option in a forked
engine; if *all* options conflict the current state is inconsistent;
otherwise assignments common to every surviving option are learned and
asserted, and the loop repeats until nothing new is learned.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.atpg.implication import Conflict, ImplicationEngine


def learn_implications(
    engine: ImplicationEngine, depth: int = 1, max_gates: int = 200
) -> None:
    """Strengthen the engine's state by recursive learning.

    Raises :class:`Conflict` when learning proves the current
    assignments inconsistent.  *depth* bounds the nesting; *max_gates*
    bounds how many unjustified gates are examined per round (a run
    time guard for the GDC configuration on large circuits).
    """
    if depth <= 0:
        return
    changed = True
    while changed:
        changed = False
        gates = engine.unjustified_gates()[:max_gates]
        for gate in gates:
            # The gate may have become justified by earlier learning.
            out = engine.value(gate.name)
            if out is None or out != gate.controlling_value():
                continue
            options = [
                edge
                for edge in gate.inputs
                if engine._literal_value(edge) is None
            ]
            if any(
                engine._literal_value(edge) == out for edge in gate.inputs
            ):
                continue
            if not options:
                raise Conflict(gate.name)

            common: Optional[Dict[str, bool]] = None
            for edge in options:
                fork = engine.fork()
                try:
                    fork._assign_literal(edge, out)
                    fork.propagate()
                    if depth > 1:
                        learn_implications(fork, depth - 1, max_gates)
                except Conflict:
                    continue
                if common is None:
                    common = dict(fork.values)
                else:
                    common = {
                        signal: value
                        for signal, value in common.items()
                        if fork.values.get(signal) == value
                    }
                if not common:
                    break

            if common is None:
                # Every justification option conflicts.
                raise Conflict(gate.name)
            for signal, value in common.items():
                if engine.value(signal) is None:
                    engine.assign(signal, value)
                    changed = True
            engine.propagate()
