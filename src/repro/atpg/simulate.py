"""Fault simulation and exhaustive test search.

An independent oracle for the redundancy machinery: a stuck-at fault
is *testable* iff some input assignment makes a chosen observable
differ between the good and the faulty circuit.  For the small
circuits of the test suite this can be decided exhaustively, which
lets property tests verify that :func:`repro.atpg.redundancy.\
wire_is_redundant` never reports a testable fault as redundant (the
one-sided guarantee everything else relies on).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.circuit.circuit import Circuit
from repro.circuit.gate import GateKind
from repro.atpg.fault import StuckAtFault


def faulty_evaluate(
    circuit: Circuit, fault: StuckAtFault, assignment: Dict[str, bool]
) -> Dict[str, bool]:
    """Evaluate the circuit with the fault injected on its wire."""
    values: Dict[str, bool] = {}
    for name in circuit.topo_order():
        gate = circuit.gates[name]
        if gate.kind == GateKind.PI:
            values[name] = bool(assignment[name])
        elif gate.kind == GateKind.CONST0:
            values[name] = False
        elif gate.kind == GateKind.CONST1:
            values[name] = True
        else:
            literals: List[bool] = []
            for i, (signal, phase) in enumerate(gate.inputs):
                value = values[signal] if phase else not values[signal]
                if name == fault.gate and i == fault.input_index:
                    value = fault.stuck_value
                literals.append(value)
            if gate.kind == GateKind.AND:
                values[name] = all(literals)
            else:
                values[name] = any(literals)
    return values


def find_test_exhaustive(
    circuit: Circuit,
    fault: StuckAtFault,
    observables: Optional[Set[str]] = None,
    max_pis: int = 12,
) -> Optional[Dict[str, bool]]:
    """Exhaustive search for a test vector; ``None`` = untestable.

    *observables* defaults to signals with no fanout.
    """
    pis = sorted(circuit.pis())
    if len(pis) > max_pis:
        raise ValueError(
            f"exhaustive search capped at {max_pis} inputs"
        )
    if observables is None:
        fanouts = circuit.fanouts()
        observables = {
            name for name, outs in fanouts.items() if not outs
        }
    for pattern in range(1 << len(pis)):
        assignment = {
            pi: bool(pattern >> i & 1) for i, pi in enumerate(pis)
        }
        good = circuit.evaluate(assignment)
        bad = faulty_evaluate(circuit, fault, assignment)
        if any(good[o] != bad[o] for o in observables):
            return assignment
    return None


def fault_coverage(
    circuit: Circuit,
    faults: Iterable[StuckAtFault],
    patterns: Iterable[Dict[str, bool]],
    observables: Optional[Set[str]] = None,
) -> float:
    """Fraction of *faults* detected by the given test *patterns*."""
    if observables is None:
        fanouts = circuit.fanouts()
        observables = {
            name for name, outs in fanouts.items() if not outs
        }
    fault_list = list(faults)
    if not fault_list:
        return 1.0
    pattern_list = list(patterns)
    detected = 0
    for fault in fault_list:
        for assignment in pattern_list:
            good = circuit.evaluate(assignment)
            bad = faulty_evaluate(circuit, fault, assignment)
            if any(good[o] != bad[o] for o in observables):
                detected += 1
                break
    return detected / len(fault_list)
