"""Three-valued direct implication engine with conflict detection.

Signals take values in {0, 1, unknown}.  Assignments propagate both
forward (gate inputs determine the output) and backward (a known
output constrains the inputs) until a fixpoint; an attempt to assign a
signal both values is a :class:`Conflict`.

During the paper's division, a conflict among a fault's mandatory
assignments proves the fault untestable — which is what licenses
removing the wire.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Iterable, List, Optional, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind


class Conflict(Exception):
    """A signal was implied to both 0 and 1."""

    def __init__(self, signal: str):
        super().__init__(f"conflicting implication on signal {signal!r}")
        self.signal = signal


class ImplicationEngine:
    """Implication state over one circuit.

    The engine never mutates the circuit.  Use :meth:`assign` to add
    assignments and :meth:`propagate` to reach a fixpoint; both raise
    :class:`Conflict` on contradiction.  :meth:`fork` makes a cheap
    copy for case analysis (recursive learning).
    """

    def __init__(self, circuit: Circuit):
        self.circuit = circuit
        self.values: Dict[str, bool] = {}
        self._queue: deque = deque()
        self._fanouts = circuit.fanouts()
        # Constants are facts, not consequences: seed them up front so
        # forward implications through constant inputs always fire.
        for gate in circuit.gates.values():
            if gate.kind == GateKind.CONST0:
                self.values[gate.name] = False
                self._queue.append(gate.name)
            elif gate.kind == GateKind.CONST1:
                self.values[gate.name] = True
                self._queue.append(gate.name)

    # ------------------------------------------------------------------
    def value(self, signal: str) -> Optional[bool]:
        return self.values.get(signal)

    def assign(self, signal: str, value: bool) -> None:
        """Record an assignment (raises :class:`Conflict`)."""
        current = self.values.get(signal)
        if current is not None:
            if current != value:
                raise Conflict(signal)
            return
        self.values[signal] = value
        self._queue.append(signal)

    def assign_many(self, assignments: Iterable[Tuple[str, bool]]) -> None:
        for signal, value in assignments:
            self.assign(signal, value)

    def fork(self) -> "ImplicationEngine":
        copy = ImplicationEngine.__new__(ImplicationEngine)
        copy.circuit = self.circuit
        copy.values = dict(self.values)
        copy._queue = deque(self._queue)
        copy._fanouts = self._fanouts
        return copy

    # ------------------------------------------------------------------
    def propagate(self) -> None:
        """Run direct implications to a fixpoint."""
        while self._queue:
            signal = self._queue.popleft()
            gate = self.circuit.gates.get(signal)
            if gate is not None:
                self._process(gate)
            for fanout in self._fanouts.get(signal, ()):
                self._process(self.circuit.gates[fanout])

    def run(self, assignments: Iterable[Tuple[str, bool]]) -> bool:
        """Assign then propagate; returns False instead of raising."""
        try:
            self.assign_many(assignments)
            self.propagate()
        except Conflict:
            return False
        return True

    # ------------------------------------------------------------------
    def _literal_value(self, edge: Tuple[str, bool]) -> Optional[bool]:
        signal, phase = edge
        value = self.values.get(signal)
        if value is None:
            return None
        return value if phase else not value

    def _assign_literal(self, edge: Tuple[str, bool], value: bool) -> None:
        signal, phase = edge
        self.assign(signal, value if phase else not value)

    def _process(self, gate: Gate) -> None:
        kind = gate.kind
        if kind == GateKind.PI:
            return
        if kind == GateKind.CONST0:
            self.assign(gate.name, False)
            return
        if kind == GateKind.CONST1:
            self.assign(gate.name, True)
            return

        # AND and OR share the rule structure up to the controlling
        # value: AND is controlled by 0, OR by 1.
        controlling = gate.controlling_value()
        out = self.values.get(gate.name)
        unknown_edges: List[Tuple[str, bool]] = []
        saw_controlling = False
        for edge in gate.inputs:
            lit = self._literal_value(edge)
            if lit is None:
                unknown_edges.append(edge)
            elif lit == controlling:
                saw_controlling = True

        # Forward rules.
        if saw_controlling:
            self.assign(gate.name, controlling)
            out = controlling
        elif not unknown_edges:
            self.assign(gate.name, not controlling)
            out = not controlling

        # Backward rules.
        if out is None:
            return
        if out != controlling:
            # AND=1 / OR=0: every input is at the non-controlling value.
            for edge in gate.inputs:
                self._assign_literal(edge, not controlling)
        else:
            # AND=0 / OR=1: at least one input is controlling; if only
            # one candidate remains, it is forced.
            if not saw_controlling:
                if not unknown_edges:
                    raise Conflict(gate.name)
                if len(unknown_edges) == 1:
                    self._assign_literal(unknown_edges[0], controlling)

    # ------------------------------------------------------------------
    def unjustified_gates(self) -> List[Gate]:
        """Gates whose known output is not yet explained by any input.

        These are the case-split points recursive learning uses.
        """
        result = []
        for gate in self.circuit.gates.values():
            if gate.kind not in (GateKind.AND, GateKind.OR):
                continue
            out = self.values.get(gate.name)
            if out is None or out != gate.controlling_value():
                continue
            lits = [self._literal_value(edge) for edge in gate.inputs]
            if out in lits:
                continue  # justified
            if any(lit is None for lit in lits):
                result.append(gate)
        return result
