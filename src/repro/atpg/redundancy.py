"""Generic redundancy identification and removal for circuits.

This is the classical substrate the paper builds on (Section II): a
wire whose removal-fault is untestable can be deleted without changing
the circuit's function.  The division algorithm in :mod:`repro.core`
constructs its own specialized mandatory-assignment sets; this module
provides the general-purpose version used for plain redundancy removal
and for reproducing the RAR example of Fig. 1.
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind
from repro.atpg.implication import Conflict, ImplicationEngine
from repro.atpg.fault import StuckAtFault, all_wire_faults, mandatory_assignments
from repro.atpg.learning import learn_implications
from repro.obs.tracer import as_tracer


def wire_is_redundant(
    circuit: Circuit,
    fault: StuckAtFault,
    observables: Optional[Set[str]] = None,
    learn_depth: int = 0,
) -> bool:
    """True when the fault's mandatory assignments conflict.

    Sound but incomplete: False only means redundancy was not proven.
    """
    engine = ImplicationEngine(circuit)
    try:
        engine.assign_many(
            mandatory_assignments(circuit, fault, observables)
        )
        engine.propagate()
        if learn_depth > 0:
            learn_implications(engine, learn_depth)
    except Conflict:
        return True
    return False


def wire_is_redundant_exact(
    circuit: Circuit,
    fault: StuckAtFault,
    observables: Optional[Set[str]] = None,
    max_backtracks: int = 20000,
    budget=None,
    tracer=None,
) -> bool:
    """Complete D-alg redundancy check, conservative under budgets.

    :func:`~repro.atpg.dalg.prove_redundant` is three-valued; an
    out-of-budget ``None`` (``complete=False``) is mapped to False here
    so redundancy *removal* never deletes a wire on a timed-out search
    — keeping a removable wire is safe, removing a needed one is not.
    """
    from repro.atpg.dalg import prove_redundant

    verdict = prove_redundant(
        circuit, fault, observables, max_backtracks, budget=budget,
        tracer=tracer,
    )
    return verdict is True


def remove_wire(circuit: Circuit, gate_name: str, input_index: int) -> None:
    """Delete one input edge; degenerate gates become constants.

    Removing a redundant AND-input (s-a-1 untestable) or OR-input
    (s-a-0 untestable) leaves the remaining inputs; a gate left with no
    inputs becomes the non-controlling constant (empty AND = 1, empty
    OR = 0).
    """
    gate = circuit.gates[gate_name]
    del gate.inputs[input_index]
    if not gate.inputs:
        kind = (
            GateKind.CONST1 if gate.kind == GateKind.AND else GateKind.CONST0
        )
        circuit.gates[gate_name] = Gate(gate_name, kind)
    circuit.invalidate()


def redundancy_removal(
    circuit: Circuit,
    observables: Optional[Set[str]] = None,
    learn_depth: int = 0,
    max_rounds: int = 10,
    exact: bool = False,
    max_backtracks: int = 20000,
    budget=None,
    tracer=None,
) -> int:
    """Greedy redundancy removal; returns the number of wires removed.

    After each removal the circuit changes, so candidate faults are
    re-enumerated; rounds repeat until no wire is removable.

    With ``exact=True`` a wire the implications cannot prove redundant
    is additionally checked with the complete miter D-alg
    (:func:`wire_is_redundant_exact`); an out-of-budget search is
    treated as *not redundant*, so a tight *budget* only makes the
    removal less aggressive, never unsound.  An enabled *tracer*
    records the whole sweep as one ``atpg`` span.
    """
    tracer = as_tracer(tracer)
    removed = 0
    with tracer.span(
        "atpg", scope="redundancy_removal", gates=len(circuit.gates)
    ) as span:
        for _ in range(max_rounds):
            progress = False
            for fault in list(all_wire_faults(circuit)):
                gate = circuit.gates.get(fault.gate)
                if gate is None or fault.input_index >= len(gate.inputs):
                    continue
                redundant = wire_is_redundant(
                    circuit, fault, observables, learn_depth
                )
                if not redundant and exact:
                    redundant = wire_is_redundant_exact(
                        circuit,
                        fault,
                        observables,
                        max_backtracks,
                        budget=budget,
                        tracer=tracer,
                    )
                if redundant:
                    remove_wire(circuit, fault.gate, fault.input_index)
                    removed += 1
                    progress = True
            if not progress:
                break
        span.annotate(wires_removed=removed)
    return removed


def add_redundant_wire(
    circuit: Circuit,
    gate_name: str,
    edge: Tuple[str, bool],
    observables: Optional[Set[str]] = None,
    learn_depth: int = 0,
) -> bool:
    """Add *edge* to a gate if it is provably redundant (RAR's "add").

    The candidate connection is redundant when its removal-fault
    (s-a-1 for AND, s-a-0 for OR) on the *new* wire is untestable in
    the modified circuit.  Returns True when the wire was added.
    """
    gate = circuit.gates[gate_name]
    if gate.kind not in (GateKind.AND, GateKind.OR):
        raise ValueError("can only add wires to AND/OR gates")
    gate.inputs.append(edge)
    circuit.invalidate()
    stuck = gate.kind == GateKind.AND
    fault = StuckAtFault(gate_name, len(gate.inputs) - 1, stuck)
    if wire_is_redundant(circuit, fault, observables, learn_depth):
        return True
    gate.inputs.pop()
    circuit.invalidate()
    return False
