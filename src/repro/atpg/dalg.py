"""Complete test generation by branch-and-propagate on a miter.

The implication-based redundancy check is one-sided: a conflict proves
a fault untestable, but "no conflict" proves nothing.  This module
provides the exact answer for moderate circuits:

1. build a *miter*: the good circuit, a faulty copy (the fault's wire
   replaced by a constant), and an XOR/OR comparator over the chosen
   observables,
2. search for an input assignment that sets the miter output to 1
   with a classical branch-and-bound: propagate direct implications,
   pick an unassigned primary input, branch on both values, backtrack
   on conflict.

This is the same decision procedure as the D-algorithm re-expressed
over a miter (which avoids 5-valued bookkeeping), and it is complete:
``None`` with ``exhausted=False`` never happens — either a test is
returned or the fault is proved untestable (or the backtrack budget
runs out, which is reported explicitly).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind
from repro.atpg.implication import Conflict, ImplicationEngine
from repro.atpg.fault import StuckAtFault

_GOOD = "g::"
_BAD = "b::"
_DIFF = "miter::diff"


def build_miter(
    circuit: Circuit,
    fault: StuckAtFault,
    observables: Optional[Set[str]] = None,
) -> Circuit:
    """Good and faulty copies sharing PIs, plus an output comparator.

    The miter's output signal is :data:`_DIFF` (exported as
    ``miter_output()``); it is 1 exactly on test vectors for *fault*.
    """
    if observables is None:
        fanouts = circuit.fanouts()
        observables = {
            name for name, outs in fanouts.items() if not outs
        }
    miter = Circuit(f"miter:{fault}")
    for pi in circuit.pis():
        miter.add_pi(pi)

    def clone(prefix: str, faulty: bool) -> None:
        for gate in circuit.gates.values():
            if gate.kind == GateKind.PI:
                continue
            inputs: List[Tuple[str, bool]] = []
            for i, (signal, phase) in enumerate(gate.inputs):
                name = (
                    signal
                    if signal in miter.gates
                    and miter.gates[signal].kind == GateKind.PI
                    else prefix + signal
                )
                if (
                    faulty
                    and gate.name == fault.gate
                    and i == fault.input_index
                ):
                    # Replace the faulty wire by its stuck constant.
                    const = (
                        f"{prefix}const1"
                        if fault.stuck_value
                        else f"{prefix}const0"
                    )
                    if const not in miter.gates:
                        miter.add_gate(
                            Gate(
                                const,
                                GateKind.CONST1
                                if fault.stuck_value
                                else GateKind.CONST0,
                            )
                        )
                    inputs.append((const, True))
                    continue
                inputs.append((name, phase))
            miter.add_gate(Gate(prefix + gate.name, gate.kind, inputs))

    clone(_GOOD, faulty=False)
    clone(_BAD, faulty=True)

    # XOR per observable: g⊕b = (g·b') + (g'·b), then OR them all.
    or_inputs: List[Tuple[str, bool]] = []
    for name in sorted(observables):
        good = _GOOD + name if _GOOD + name in miter.gates else name
        bad = _BAD + name if _BAD + name in miter.gates else name
        if good == bad:
            continue  # observable not driven by logic (a PI): no diff
        t1 = f"miter::{name}.gb"
        t2 = f"miter::{name}.bg"
        x = f"miter::{name}.x"
        miter.add_and(t1, [(good, True), (bad, False)])
        miter.add_and(t2, [(good, False), (bad, True)])
        miter.add_or(x, [(t1, True), (t2, True)])
        or_inputs.append((x, True))
    if or_inputs:
        miter.add_or(_DIFF, or_inputs)
    else:
        miter.add_gate(Gate(_DIFF, GateKind.CONST0))
    return miter


def miter_output() -> str:
    """Name of the miter's difference output signal."""
    return _DIFF


@dataclasses.dataclass
class AtpgResult:
    """Outcome of :func:`generate_test`."""

    #: A test vector (PI name -> value) or ``None``.
    test: Optional[Dict[str, bool]]
    #: True when the search space was fully explored (so ``test is
    #: None`` means *proved untestable*); False when the backtrack
    #: budget ran out first.
    complete: bool
    backtracks: int = 0


def _satisfy(
    circuit: Circuit,
    objective: Tuple[str, bool],
    max_backtracks: int,
    budget=None,
) -> AtpgResult:
    """Find PI values satisfying *objective* by branch-and-propagate.

    *budget* is an optional :class:`~repro.resilience.budget.RunBudget`:
    the per-call backtrack limit is clamped to what the run has left,
    the wall-clock deadline is honoured between branches, and the
    backtracks actually spent (plus any incomplete verdict) are charged
    back to the shared ledger.
    """
    pis = sorted(circuit.pis())
    backtracks = 0
    aborted = False
    limit = max_backtracks
    if budget is not None:
        remaining = budget.backtracks_remaining()
        if remaining is not None:
            limit = min(limit, remaining)

    def search(engine: ImplicationEngine) -> Optional[Dict[str, bool]]:
        nonlocal backtracks, aborted
        free = [pi for pi in pis if engine.value(pi) is None]
        if not free:
            # Fully assigned: implications have evaluated everything.
            return {pi: engine.value(pi) for pi in pis}
        pivot = free[0]
        for value in (True, False):
            if backtracks > limit or (
                budget is not None and budget.deadline_passed()
            ):
                aborted = True
                return None
            fork = engine.fork()
            try:
                fork.assign(pivot, value)
                fork.propagate()
            except Conflict:
                backtracks += 1
                continue
            result = search(fork)
            if result is not None:
                return result
            backtracks += 1
        return None

    engine = ImplicationEngine(circuit)
    try:
        engine.assign(*objective)
        engine.propagate()
    except Conflict:
        return AtpgResult(test=None, complete=True, backtracks=0)
    test = search(engine)
    result = AtpgResult(
        test=test,
        complete=not aborted and backtracks <= limit,
        backtracks=backtracks,
    )
    if budget is not None:
        budget.charge_backtracks(backtracks)
        if not result.complete:
            budget.note_atpg_incomplete()
    return result


def generate_test(
    circuit: Circuit,
    fault: StuckAtFault,
    observables: Optional[Set[str]] = None,
    max_backtracks: int = 20000,
    budget=None,
) -> AtpgResult:
    """Complete ATPG for one stuck-at fault.

    Returns a test vector, or (with ``complete=True``) a proof of
    untestability — the exact notion the RAR machinery approximates
    with one-sided implication conflicts.  A shared
    :class:`~repro.resilience.budget.RunBudget` further clamps the
    backtrack limit and is charged for the work done.
    """
    miter = build_miter(circuit, fault, observables)
    return _satisfy(miter, (_DIFF, True), max_backtracks, budget=budget)


def prove_redundant(
    circuit: Circuit,
    fault: StuckAtFault,
    observables: Optional[Set[str]] = None,
    max_backtracks: int = 20000,
    budget=None,
    tracer=None,
) -> Optional[bool]:
    """Exact redundancy: True/False, or ``None`` if the budget ran out.

    ``None`` is a *don't know*: consumers removing wires must treat it
    as "not redundant" (the conservative direction — keeping a
    removable wire is safe, removing a needed one is not).  An enabled
    *tracer* records the search as one ``atpg`` span with the verdict
    and backtrack count.
    """
    from repro.obs.tracer import as_tracer

    with as_tracer(tracer).span(
        "atpg", scope="dalg", gate=fault.gate, input=fault.input_index
    ) as span:
        result = generate_test(
            circuit, fault, observables, max_backtracks, budget=budget
        )
        if result.test is not None:
            verdict: Optional[bool] = False
        else:
            verdict = True if result.complete else None
        span.annotate(
            verdict=verdict,
            complete=result.complete,
            backtracks=result.backtracks,
        )
        return verdict
