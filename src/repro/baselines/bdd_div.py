"""BDD-based Boolean division (Stanion & Sechen, TCAD 1994).

The method the paper cites as [14]: with the generalized cofactor
(Coudert–Madre ``constrain``), every function decomposes as

    f = d·(f ↓ d) + d'·f           (and dually with d')

so the quotient of ``f / d`` is ``f ↓ d`` and the remainder is
``d'·f``.  Here functions live over a node's fanin variables, the
decomposition is computed on ROBDDs, and the result is converted back
into covers for substitution.

Following the original, the remainder is taken as ``f·d'`` restricted
via constrain as well (``(f·d') ↓ d'`` against the d' space keeps it
small); we use the simpler exact ``f·d'`` which is sufficient at node
granularity.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional

from repro.bdd import BDD_ZERO, BddManager
from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.factor import factored_literals
from repro.network.network import Network


@dataclasses.dataclass
class BddDivision:
    """``f = d·quotient + remainder`` with covers read off the BDDs."""

    quotient: Cover
    remainder: Cover


def bdd_divide(f: Cover, d: Cover) -> Optional[BddDivision]:
    """Generalized-cofactor division of *f* by *d* (shared space)."""
    f._check_compatible(d)
    manager = BddManager(f.num_vars)
    f_bdd = manager.from_cover(f)
    d_bdd = manager.from_cover(d)
    if d_bdd == BDD_ZERO:
        return None
    quotient_bdd = manager.constrain(f_bdd, d_bdd)
    remainder_bdd = manager.and_(f_bdd, manager.not_(d_bdd))
    return BddDivision(
        quotient=manager.to_cover(quotient_bdd, f.num_vars),
        remainder=manager.to_cover(remainder_bdd, f.num_vars),
    )


def bdd_substitute_pair(
    network: Network, f_name: str, divisor_name: str
) -> bool:
    """Substitute via BDD division when the factored count drops."""
    f_node = network.nodes[f_name]
    d_node = network.nodes[divisor_name]
    if f_node.cover is None or d_node.cover is None:
        return False
    if f_node.is_constant() or d_node.is_constant():
        return False
    if divisor_name in f_node.fanins:
        return False
    if f_name in network.transitive_fanin(divisor_name):
        return False

    shared = list(f_node.fanins)
    for name in d_node.fanins:
        if name not in shared:
            shared.append(name)
    if len(shared) > 18:
        return False  # keep the node-level BDDs small
    index = {name: i for i, name in enumerate(shared)}
    n = len(shared)
    f_cover = f_node.cover.remap(
        [index[name] for name in f_node.fanins], n
    )
    d_cover = d_node.cover.remap(
        [index[name] for name in d_node.fanins], n
    )

    division = bdd_divide(f_cover, d_cover)
    if division is None or division.quotient.is_zero():
        return False

    y = Cube.literal(n, True)
    cubes: List[Cube] = []
    for q in division.quotient.cubes:
        merged = q.intersect(y)
        if merged is not None:
            cubes.append(merged)
    cubes.extend(division.remainder.cubes)
    substituted = Cover(n + 1, cubes).single_cube_containment()

    before = factored_literals(f_node.cover)
    after = factored_literals(substituted)
    if after >= before:
        return False
    f_node.set_function(shared + [divisor_name], substituted)
    f_node.prune_unused_fanins()
    return True


def bdd_substitution(network: Network, max_passes: int = 3) -> int:
    """Greedy network pass using BDD division; returns accepts."""
    accepted = 0
    for _ in range(max_passes):
        changed = False
        names = [node.name for node in network.internal_nodes()]
        for f_name in names:
            if f_name not in network.nodes:
                continue
            for d_name in names:
                if d_name == f_name or d_name not in network.nodes:
                    continue
                if not set(network.nodes[d_name].fanins) & set(
                    network.nodes[f_name].fanins
                ):
                    continue
                if bdd_substitute_pair(network, f_name, d_name):
                    accepted += 1
                    changed = True
        if not changed:
            break
    return accepted
