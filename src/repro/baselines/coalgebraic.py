"""Coalgebraic division (Hsu & Shen, DAC 1992).

Algebraic (weak) division treats expressions as polynomials, so the
products it can recognize never share variables between divisor and
quotient.  Coalgebraic division adds exactly two Boolean identities:

* ``x·x  = x``  — a quotient cube may repeat divisor literals,
* ``x·x' = 0``  — a quotient×divisor product that vanishes does not
  need a matching cube in the dividend.

Following the original formulation, candidate quotient cubes are
generated per divisor cube as in weak division but *without* the
support-disjointness filter (idempotence), and a candidate survives
when, for every divisor cube, the product either vanishes
(annihilation) or appears in the dividend.
"""

from __future__ import annotations

from typing import List, Set, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.factor import factored_literals
from repro.network.network import Network


def coalgebraic_division(
    dividend: Cover, divisor: Cover
) -> Tuple[Cover, Cover]:
    """``dividend = divisor·quotient + remainder`` with the two
    Boolean identities enabled.  The quotient is empty on failure."""
    if divisor.is_zero():
        raise ZeroDivisionError("coalgebraic division by zero cover")
    dividend_cubes: Set[Cube] = set(dividend.cubes)

    # Candidate quotient cubes: for every (dividend cube c, divisor
    # cube d) with d ⊇ c (literal-wise lits(d) ⊆ lits(c)), the minimal
    # cube q with q·d = c under idempotence is c minus d's literals —
    # but unlike weak division, q may keep literals shared with the
    # divisor's *other* cubes, so we also try q = c itself.
    candidates: Set[Cube] = set()
    for c in dividend.cubes:
        for d in divisor.cubes:
            if d.contains(c):
                q = c.cofactor_cube(d)
                if q is not None:
                    candidates.add(q)
                candidates.add(c)

    def is_valid(q: Cube) -> bool:
        supported = False
        for d in divisor.cubes:
            product = q.intersect(d)
            if product is None:
                continue  # x·x' = 0: the product vanishes
            if product not in dividend_cubes:
                return False
            supported = True
        return supported

    valid = sorted(q for q in candidates if is_valid(q))
    if not valid:
        return Cover.zero(dividend.num_vars), dividend

    # Greedy cover of dividend cubes by valid quotient cubes (largest
    # first), exactly one choice per covered product.
    covered: Set[Cube] = set()
    chosen: List[Cube] = []
    scored = sorted(
        valid,
        key=lambda q: (
            -len(
                {
                    q.intersect(d)
                    for d in divisor.cubes
                    if q.intersect(d) is not None
                }
                - covered
            ),
            q.num_literals(),
        ),
    )
    for q in scored:
        products = {
            q.intersect(d)
            for d in divisor.cubes
            if q.intersect(d) is not None
        }
        if products - covered:
            chosen.append(q)
            covered |= products
    remainder = Cover(
        dividend.num_vars,
        [c for c in dividend.cubes if c not in covered],
    )
    return Cover(dividend.num_vars, sorted(chosen)), remainder


def coalgebraic_substitute_pair(
    network: Network, f_name: str, divisor_name: str
) -> bool:
    """Substitute *divisor* into *f* via coalgebraic division if it pays."""
    f_node = network.nodes[f_name]
    d_node = network.nodes[divisor_name]
    if f_node.cover is None or d_node.cover is None:
        return False
    if f_node.is_constant() or d_node.is_constant():
        return False
    if divisor_name in f_node.fanins:
        return False
    if f_name in network.transitive_fanin(divisor_name):
        return False

    shared = list(f_node.fanins)
    for name in d_node.fanins:
        if name not in shared:
            shared.append(name)
    index = {name: i for i, name in enumerate(shared)}
    n = len(shared)
    f_cover = f_node.cover.remap(
        [index[name] for name in f_node.fanins], n
    )
    d_cover = d_node.cover.remap(
        [index[name] for name in d_node.fanins], n
    )

    quotient, remainder = coalgebraic_division(f_cover, d_cover)
    if quotient.is_zero():
        return False
    y = Cube.literal(n, True)
    cubes: List[Cube] = []
    for q in quotient.cubes:
        merged = q.intersect(y)
        if merged is None:
            return False
        cubes.append(merged)
    cubes.extend(remainder.cubes)
    substituted = Cover(n + 1, cubes).single_cube_containment()

    if factored_literals(substituted) >= factored_literals(f_node.cover):
        return False
    f_node.set_function(shared + [divisor_name], substituted)
    f_node.prune_unused_fanins()
    return True


def coalgebraic_substitution(network: Network, max_passes: int = 3) -> int:
    """Greedy network pass using coalgebraic division."""
    accepted = 0
    for _ in range(max_passes):
        changed = False
        names = [node.name for node in network.internal_nodes()]
        for f_name in names:
            if f_name not in network.nodes:
                continue
            for d_name in names:
                if d_name == f_name or d_name not in network.nodes:
                    continue
                if not set(network.nodes[d_name].fanins) & set(
                    network.nodes[f_name].fanins
                ):
                    continue
                if coalgebraic_substitute_pair(network, f_name, d_name):
                    accepted += 1
                    changed = True
        if not changed:
            break
    return accepted
