"""Alternative Boolean-division engines from the paper's related work.

The paper's introduction surveys three prior routes to (partially)
Boolean division, all of which are implemented here so the RAR method
can be compared against real baselines rather than straw men:

* :mod:`repro.baselines.espresso_div` — the "ad-hoc setup" built on a
  two-level optimizer: introduce a fresh input ``y`` for the divisor,
  declare ``y XOR d`` a don't care, and let espresso pull ``y`` into
  the cover,
* :mod:`repro.baselines.bdd_div` — Stanion & Sechen's BDD division:
  ``f = d·(f ↓ d) + d'·f`` via the generalized cofactor (constrain),
* :mod:`repro.baselines.coalgebraic` — Hsu & Shen's coalgebraic
  division: algebraic division augmented with the Boolean identities
  ``x·x = x`` and ``x·x' = 0``.

Each module exposes a cover-level ``divide`` plus a node-level
substitution helper with the same acceptance rule (factored-literal
gain) as :mod:`repro.core.substitution`, so quality comparisons are
apples-to-apples.
"""

from repro.baselines.espresso_div import (
    espresso_divide,
    espresso_substitute_pair,
    espresso_substitution,
)
from repro.baselines.bdd_div import (
    bdd_divide,
    bdd_substitute_pair,
    bdd_substitution,
)
from repro.baselines.coalgebraic import (
    coalgebraic_division,
    coalgebraic_substitution,
)

__all__ = [
    "espresso_divide",
    "espresso_substitute_pair",
    "espresso_substitution",
    "bdd_divide",
    "bdd_substitute_pair",
    "bdd_substitution",
    "coalgebraic_division",
    "coalgebraic_substitution",
]
