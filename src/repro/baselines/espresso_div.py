"""Boolean division through a two-level optimizer with don't cares.

The paper's introduction describes this "ad-hoc setup": given ``f``
and a divisor ``d``, add a fresh input ``y`` that (in the real
circuit) always equals ``d``.  Every minterm where ``y ≠ d(x)`` is
then a satisfiability don't care, and a good two-level optimizer fed
that don't-care set will pull the literal ``y`` into the cover of
``f`` whenever it pays — achieving the effect of Boolean division.

The quotient/remainder split falls out of the minimized cover: cubes
containing ``y`` form ``d·q``, cubes containing ``y'`` use the
complement phase, and the rest are the remainder.
"""

from __future__ import annotations

import dataclasses
from typing import List, Optional, Tuple

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.twolevel.minimize import espresso
from repro.network.factor import factored_literals
from repro.network.network import Network


@dataclasses.dataclass
class EspressoDivision:
    """Result of espresso-based division in a shared variable space."""

    #: Cover over ``num_vars + 1`` variables; the last variable is y.
    substituted: Cover
    quotient: Cover  # cubes that carried y (y removed)
    quotient_neg: Cover  # cubes that carried y'
    remainder: Cover


def espresso_divide(f: Cover, d: Cover) -> EspressoDivision:
    """Divide *f* by *d* via espresso with a ``y XOR d`` don't-care set.

    Both covers must share a variable space; variable ``f.num_vars``
    is introduced for ``y``.
    """
    f._check_compatible(d)
    n = f.num_vars
    wide = n + 1
    y = Cube.literal(n, True)
    y_not = Cube.literal(n, False)

    on_set = f.extended(wide)
    # DC = y·d' + y'·d  (assignments where y disagrees with d).
    d_comp = complement(d)
    dc_cubes: List[Cube] = []
    for cube in d_comp.cubes:
        merged = cube.intersect(y)
        if merged is not None:
            dc_cubes.append(merged)
    for cube in d.cubes:
        merged = cube.intersect(y_not)
        if merged is not None:
            dc_cubes.append(merged)
    dc_set = Cover(wide, dc_cubes)

    minimized = espresso(on_set, dc_set)

    quotient, quotient_neg, remainder = [], [], []
    for cube in minimized.cubes:
        phase = cube.phase(n)
        stripped = cube.without_var(n)
        if phase is True:
            quotient.append(stripped)
        elif phase is False:
            quotient_neg.append(stripped)
        else:
            remainder.append(stripped)
    return EspressoDivision(
        substituted=minimized,
        quotient=Cover(n, quotient),
        quotient_neg=Cover(n, quotient_neg),
        remainder=Cover(n, remainder),
    )


def espresso_substitute_pair(
    network: Network, f_name: str, divisor_name: str
) -> bool:
    """Substitute *divisor* into *f* via espresso division if it pays."""
    f_node = network.nodes[f_name]
    d_node = network.nodes[divisor_name]
    if f_node.cover is None or d_node.cover is None:
        return False
    if f_node.is_constant() or d_node.is_constant():
        return False
    if divisor_name in f_node.fanins:
        return False
    if f_name in network.transitive_fanin(divisor_name):
        return False
    if f_node.cover.num_cubes() > 48:
        return False

    shared = list(f_node.fanins)
    for name in d_node.fanins:
        if name not in shared:
            shared.append(name)
    index = {name: i for i, name in enumerate(shared)}
    n = len(shared)
    f_cover = f_node.cover.remap(
        [index[name] for name in f_node.fanins], n
    )
    d_cover = d_node.cover.remap(
        [index[name] for name in d_node.fanins], n
    )

    division = espresso_divide(f_cover, d_cover)
    if division.quotient.is_zero() and division.quotient_neg.is_zero():
        return False
    before = factored_literals(f_node.cover)
    after = factored_literals(division.substituted)
    if after >= before:
        return False
    f_node.set_function(shared + [divisor_name], division.substituted)
    f_node.prune_unused_fanins()
    return True


def espresso_substitution(network: Network, max_passes: int = 3) -> int:
    """Greedy network pass using espresso division; returns accepts."""
    accepted = 0
    for _ in range(max_passes):
        changed = False
        names = [node.name for node in network.internal_nodes()]
        for f_name in names:
            if f_name not in network.nodes:
                continue
            for d_name in names:
                if d_name == f_name or d_name not in network.nodes:
                    continue
                if not set(network.nodes[d_name].fanins) & set(
                    network.nodes[f_name].fanins
                ):
                    continue
                if espresso_substitute_pair(network, f_name, d_name):
                    accepted += 1
                    changed = True
        if not changed:
            break
    return accepted
