"""Command-line experiment runner and BLIF optimizer.

Usage::

    python -m repro table2            # Script A   (paper Table II)
    python -m repro table3            # Script B   (paper Table III)
    python -m repro table4            # Script C   (paper Table IV)
    python -m repro table5            # script.algebraic (paper Table V)
    python -m repro all               # all four tables
    python -m repro --quick table2    # smaller suite
    python -m repro --circuits rnd1,add6 table2
    python -m repro --methods sis,basic table2

    # optimize a BLIF netlist (or a named suite circuit, bench:NAME)
    python -m repro optimize design.blif --method ext -o out.blif
    python -m repro optimize bench:rnd2 --script A --method ext_gdc
    python -m repro optimize design.blif --jobs 4 --stats-json run.json
    # simulation-guided resubstitution engine instead of division
    python -m repro optimize design.blif --method simguided -o out.blif

    # analyze a --trace file: critical path / Chrome trace / flamegraph
    python -m repro trace report run.jsonl
    python -m repro trace chrome run.jsonl -o run.chrome.json
    python -m repro trace flame run.jsonl -o run.folded

    # live telemetry: progress line, resource sampling, trace tailing
    python -m repro optimize design.blif --live --trace run.jsonl
    python -m repro tail run.jsonl       # follow a streaming trace

    # regression-gate two runs (stats-json reports or history ledgers)
    python -m repro compare base.json new.json --fail-on-regression 20
    python -m repro compare benchmarks/results/history.jsonl new.json
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.network.network import Network
from repro.bench.suite import benchmark_suite, build_benchmark
from repro.scripts.flows import (
    run_script_algebraic_table,
    run_script_table,
)
from repro.scripts.tables import format_table

_TABLE_SCRIPTS = {"table2": "A", "table3": "B", "table4": "C"}
_ALL_METHODS = ["sis", "basic", "ext", "ext_gdc"]


def _build_benchmarks(names: List[str]) -> Dict[str, Network]:
    return {name: build_benchmark(name) for name in names}


def _run_one(
    table: str, names: List[str], methods: List[str], verify: bool
) -> str:
    benchmarks = _build_benchmarks(names)
    if table in _TABLE_SCRIPTS:
        result = run_script_table(
            benchmarks, _TABLE_SCRIPTS[table], methods, verify=verify
        )
    elif table == "table5":
        result = run_script_algebraic_table(
            benchmarks, methods, verify=verify
        )
    else:
        raise ValueError(f"unknown table {table!r}")
    return format_table(result)


def _optimize_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro optimize",
        description="Optimize a BLIF netlist with Boolean substitution.",
    )
    parser.add_argument(
        "input",
        help="BLIF file, or bench:NAME for a suite circuit",
    )
    parser.add_argument(
        "--method",
        default="ext",
        choices=sorted(_method_table()),
        help="substitution method (default: ext)",
    )
    parser.add_argument(
        "--script",
        default="A",
        choices=["A", "B", "C", "none"],
        help="preparation script (default: A)",
    )
    parser.add_argument(
        "-o",
        "--output",
        help="write optimized BLIF here (default: stdout)",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the equivalence check",
    )
    parser.add_argument(
        "--no-sim-filter",
        action="store_true",
        help="disable the signature-based divisor pre-filter",
    )
    parser.add_argument(
        "--sim-patterns",
        type=int,
        default=None,
        metavar="N",
        help="random patterns per simulation signature (default: 256)",
    )
    parser.add_argument(
        "-j",
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help=(
            "worker processes for the substitution engine (default: 1; "
            ">1 enables speculative parallel evaluation — output is "
            "byte-identical to a serial run)"
        ),
    )
    parser.add_argument(
        "--stats-json",
        metavar="PATH",
        help="write the full run statistics (worker counters included) "
        "as JSON",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "wall-clock budget for the substitution run; it stops "
            "cleanly at the deadline with the best network found so "
            "far (the stop is recorded in --stats-json)"
        ),
    )
    parser.add_argument(
        "--verify-commits",
        action="store_true",
        help=(
            "transactional mode: verify every accepted rewrite "
            "against the input, roll back and quarantine on miscompare"
        ),
    )
    parser.add_argument(
        "--verify-backend",
        default=None,
        choices=["auto", "bdd", "sat"],
        help=(
            "exact-equivalence backend for the final check and "
            "--verify-commits spot checks: bdd builds output-cone "
            "ROBDDs, sat solves a CNF miter with the CDCL engine, "
            "auto (default) picks BDDs up to 16 inputs and SAT above "
            "— verification choice never changes the optimized output"
        ),
    )
    parser.add_argument(
        "--trace",
        metavar="FILE.jsonl",
        help=(
            "record a structured trace of the run (spans for every "
            "pass, pair, divide, ATPG sweep, commit and verify — "
            "worker spans merged in) as JSON lines; tracing never "
            "changes the optimized output"
        ),
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help=(
            "print a per-phase wall/CPU profile table to stderr "
            "after the run"
        ),
    )
    parser.add_argument(
        "--profile-json",
        metavar="FILE",
        help=(
            "write the per-phase profile rollup as JSON (the same "
            "aggregation --profile prints, archivable and diffable "
            "alongside --stats-json)"
        ),
    )
    parser.add_argument(
        "--history",
        metavar="FILE.jsonl",
        help=(
            "append this run's metrics snapshot (plus machine "
            "fingerprint, git SHA and config hash) to a run-history "
            "ledger; see benchmarks/results/history.jsonl"
        ),
    )
    parser.add_argument(
        "--live",
        action="store_true",
        help=(
            "render a live progress line on stderr (pass/pair/divide "
            "counters, literal estimate, pair throughput, RSS) driven "
            "by the span stream; never changes the optimized output"
        ),
    )
    parser.add_argument(
        "--sample-resources",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "emit resource_sample telemetry (RSS, CPU split, GC, "
            "/dev/shm usage) every SECONDS into the trace stream "
            "(needs --trace, --live or --profile*; default: 0.5 with "
            "--live, else off; 0 disables)"
        ),
    )
    parser.add_argument(
        "--stall-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "with -j >1: flag a worker shard silent past SECONDS as a "
            "stall and contain it through the retry ladder instead of "
            "waiting forever (default: off)"
        ),
    )
    parser.add_argument(
        "--heartbeat-dir",
        metavar="DIR",
        help=(
            "with -j >1: workers overwrite a per-pid heartbeat JSON "
            "file here at every batch boundary (crash-durable "
            "liveness; default: off)"
        ),
    )
    args = parser.parse_args(argv)

    from repro.network.blif import BlifParseError, read_blif, to_blif_str
    from repro.network.factor import network_literals
    from repro.network.verify import exact_equivalent
    from repro.scripts.flows import SCRIPTS, run_method

    try:
        if args.input.startswith("bench:"):
            network = build_benchmark(args.input[len("bench:"):])
        else:
            with open(args.input) as handle:
                network = read_blif(handle)
    except BlifParseError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except OSError as exc:
        print(f"error: cannot read {args.input!r}: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # build_benchmark raises KeyError("unknown benchmark ...").
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    reference = network.copy("reference")
    initial = network_literals(network)

    if args.script != "none":
        SCRIPTS[args.script](network)
    overrides = {}
    if args.no_sim_filter:
        overrides["enable_sim_filter"] = False
    if args.sim_patterns is not None:
        if args.sim_patterns < 1:
            parser.error("--sim-patterns must be >= 1")
        overrides["sim_patterns"] = args.sim_patterns
    if args.jobs is not None:
        if args.jobs < 1:
            parser.error("--jobs must be >= 1")
        overrides["n_jobs"] = args.jobs
    if args.deadline is not None:
        if args.deadline < 0:
            parser.error("--deadline must be >= 0")
        overrides["deadline_seconds"] = args.deadline
    if args.verify_commits:
        overrides["verify_commits"] = True
    if args.verify_backend is not None:
        overrides["verify_backend"] = args.verify_backend
    if args.stall_timeout is not None:
        if args.stall_timeout <= 0:
            parser.error("--stall-timeout must be > 0")
        overrides["stall_timeout_seconds"] = args.stall_timeout
    if args.heartbeat_dir is not None:
        overrides["heartbeat_dir"] = args.heartbeat_dir
    if args.sample_resources is not None and args.sample_resources < 0:
        parser.error("--sample-resources must be >= 0")
    if (
        overrides
        or args.trace
        or args.profile
        or args.profile_json
        or args.history
        or args.live
        or args.sample_resources
    ) and args.method == "sis":
        parser.error(
            "--no-sim-filter/--sim-patterns/--jobs/--deadline/"
            "--verify-commits/--verify-backend/--trace/--profile/"
            "--profile-json/--history/--live/--sample-resources/"
            "--stall-timeout/--heartbeat-dir do not apply to sis"
        )
    tracer = None
    trace_sink = None
    bus = None
    live_view = None
    sampler = None
    if args.trace or args.profile or args.profile_json or args.live:
        from repro.obs.tracer import Tracer

        tracer = Tracer()
        sinks = []
        if args.trace:
            # Streaming sink: spans hit the disk as they close, so a
            # crash or kill -9 mid-run still leaves a parseable trace
            # (same bytes as the old write-at-end export for runs
            # that complete).
            from repro.obs.stream import StreamingJsonlSink

            trace_sink = StreamingJsonlSink(args.trace)
            sinks.append(trace_sink)
        if args.live:
            from repro.obs.live import LiveProgress
            from repro.obs.stream import TelemetryBus

            bus = TelemetryBus()
            live_view = LiveProgress(initial_literals=initial)
            bus.attach(live_view.on_event)
            sinks.append(bus.publish)
        if sinks:
            from repro.obs.stream import fanout

            tracer.set_sink(fanout(*sinks))
    sample_period = args.sample_resources
    if sample_period is None and args.live:
        sample_period = 0.5
    if tracer is not None and sample_period:
        from repro.obs.resource import ResourceSampler

        sampler = ResourceSampler(tracer, period=sample_period)
        sampler.start()
    try:
        stats = run_method(
            network, args.method, config_overrides=overrides, tracer=tracer
        )
        substats = stats.get("stats") or {}
        budget_report = substats.get("budget_report")
        if budget_report and budget_report.get("stopped"):
            print(
                f"# budget stop: {budget_report['reason']} after "
                f"{budget_report['elapsed_seconds']:.2f}s "
                f"({budget_report['divide_calls']} divide calls)",
                file=sys.stderr,
            )
        if substats.get("commits_rolled_back"):
            print(
                f"# {substats['commits_rolled_back']} commit(s) rolled "
                f"back and quarantined (see --stats-json incidents)",
                file=sys.stderr,
            )

        if not args.no_verify:
            from repro.obs.tracer import as_tracer

            backend = args.verify_backend or "auto"
            with as_tracer(tracer).span(
                "verify", check="final-equivalence", backend=backend
            ) as verify_span:
                ok = exact_equivalent(
                    reference, network, backend=backend, tracer=tracer
                )
                verify_span.annotate(ok=ok)
            if not ok:
                print(
                    "ERROR: optimized network is NOT equivalent",
                    file=sys.stderr,
                )
                return 1
    finally:
        # Telemetry teardown in dependency order: stop the sampler
        # thread (its closing sample still flows through the sink),
        # release the live TTY line, then flush + close the trace
        # file so every recorded span is durable.
        if sampler is not None:
            sampler.stop()
        if live_view is not None:
            live_view.close()
        if bus is not None:
            bus.close()
        if trace_sink is not None:
            trace_sink.close()

    blif = to_blif_str(network)
    if args.output:
        with open(args.output, "w") as handle:
            handle.write(blif)
    else:
        sys.stdout.write(blif)
    if tracer is not None:
        if args.trace:
            # The streaming sink already wrote (and closed) the file.
            print(
                f"# trace: {len(tracer.events)} spans -> {args.trace}",
                file=sys.stderr,
            )
        if args.profile or args.profile_json:
            from repro.obs.profile import format_profile, profile_events

            rollup = profile_events(tracer.events)
            if args.profile:
                print(format_profile(rollup), file=sys.stderr)
            if args.profile_json:
                import json

                with open(args.profile_json, "w") as handle:
                    json.dump(rollup, handle, indent=2, sort_keys=True)
                    handle.write("\n")
    if args.stats_json:
        import json

        report = {
            "circuit": network.name,
            "method": args.method,
            "script": args.script,
            "jobs": args.jobs if args.jobs is not None else 1,
            "literals_initial": initial,
            "literals_final": int(stats["literals"]),
            "cpu_seconds": stats["cpu"],
            "substitution": stats.get("stats"),
            "metrics": stats.get("metrics"),
        }
        with open(args.stats_json, "w") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
    if args.history:
        from repro.obs.history import append_record, make_record

        if stats.get("metrics") is None:
            print(
                "error: --history needs a metrics-producing method",
                file=sys.stderr,
            )
            return 2
        append_record(
            make_record(
                bench="cli-optimize",
                circuit=network.name,
                metrics=stats["metrics"],
                config=stats.get("config"),
                wall_seconds=stats["cpu"],
                extra={
                    "method": args.method,
                    "script": args.script,
                    "literals_initial": initial,
                    "literals_final": int(stats["literals"]),
                },
            ),
            path=args.history,
        )
        print(f"# history: appended -> {args.history}", file=sys.stderr)
    print(
        f"# {network.name}: {initial} -> {int(stats['literals'])} "
        f"factored literals ({args.method}, {stats['cpu']:.2f}s)",
        file=sys.stderr,
    )
    return 0


def _method_table():
    from repro.scripts.flows import METHODS

    return METHODS


def _trace_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description=(
            "Analyze or convert a --trace JSONL file: 'report' prints "
            "the critical path, per-kind rollup and worker "
            "utilization; 'chrome' converts losslessly to Chrome "
            "trace-event / Perfetto JSON; 'flame' emits folded "
            "flamegraph.pl stack lines weighted by self wall time."
        ),
    )
    parser.add_argument("verb", choices=["report", "chrome", "flame"])
    parser.add_argument("file", help="trace file written by --trace")
    parser.add_argument(
        "-o",
        "--output",
        help="write here instead of stdout",
    )
    parser.add_argument(
        "--top",
        type=int,
        default=10,
        metavar="N",
        help="slowest spans listed per kind in 'report' (default: 10)",
    )
    args = parser.parse_args(argv)
    if args.top < 0:
        parser.error("--top must be >= 0")

    from repro.obs.tracer import read_jsonl

    def _warn(message: str) -> None:
        print(f"warning: {message}", file=sys.stderr)

    try:
        events = read_jsonl(args.file, tolerant=True, on_warning=_warn)
    except OSError as exc:
        print(f"error: cannot read {args.file!r}: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    if not events:
        print(f"error: {args.file}: empty trace file", file=sys.stderr)
        return 2

    if args.verb == "report":
        from repro.obs.analyze import analyze_trace, format_report

        text = format_report(analyze_trace(events, top_n=args.top)) + "\n"
        if args.output:
            with open(args.output, "w") as handle:
                handle.write(text)
        else:
            sys.stdout.write(text)
    elif args.verb == "chrome":
        from repro.obs.export import export_chrome_trace

        export_chrome_trace(events, args.output or sys.stdout)
    else:
        from repro.obs.export import export_folded_stacks

        export_folded_stacks(events, args.output or sys.stdout)
    if args.output:
        print(
            f"# {args.verb}: {len(events)} spans -> {args.output}",
            file=sys.stderr,
        )
    return 0


def _tail_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro tail",
        description=(
            "Follow a streaming --trace JSONL file in real time: "
            "prints a line per completed pass, stall warnings, and a "
            "live counter footer, until the run span arrives (or EOF "
            "with --no-follow)."
        ),
    )
    parser.add_argument("file", help="trace file being written by --trace")
    parser.add_argument(
        "--poll",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="poll interval while waiting for new lines (default: 0.2)",
    )
    parser.add_argument(
        "--no-follow",
        action="store_true",
        help="replay what is on disk and exit instead of following",
    )
    parser.add_argument(
        "--max-idle",
        type=float,
        default=None,
        metavar="SECONDS",
        help=(
            "give up after SECONDS without new data (default: follow "
            "forever)"
        ),
    )
    args = parser.parse_args(argv)
    if args.poll <= 0:
        parser.error("--poll must be > 0")
    if args.max_idle is not None and args.max_idle <= 0:
        parser.error("--max-idle must be > 0")

    import os

    from repro.obs.live import LiveProgress, TailReporter, follow_trace

    if not os.path.exists(args.file):
        print(
            f"error: cannot read {args.file!r}: no such file",
            file=sys.stderr,
        )
        return 2

    def _warn(message: str) -> None:
        print(f"warning: {message}", file=sys.stderr)

    progress = LiveProgress()
    reporter = TailReporter(progress)
    try:
        delivered = follow_trace(
            args.file,
            reporter.on_event,
            follow=not args.no_follow,
            poll_seconds=args.poll,
            max_idle_seconds=args.max_idle,
            on_warning=_warn,
        )
    except OSError as exc:
        print(f"error: cannot read {args.file!r}: {exc}", file=sys.stderr)
        return 2
    except KeyboardInterrupt:
        progress.close()
        return 0
    progress.close()
    if delivered == 0 and args.no_follow:
        print(f"error: {args.file}: empty trace file", file=sys.stderr)
        return 2
    return 0


def _compare_main(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro compare",
        description=(
            "Diff two run snapshots for regressions.  Deterministic "
            "counters (divide_calls, accepted, literal counts) must "
            "match exactly; wall times are gated only with "
            "--fail-on-regression.  BASE/NEW are --stats-json "
            "reports, raw metrics snapshots, or *.jsonl run-history "
            "ledgers (latest record, optionally --circuit filtered)."
        ),
    )
    parser.add_argument("base", help="baseline snapshot or history ledger")
    parser.add_argument("new", help="candidate snapshot or history ledger")
    parser.add_argument(
        "--circuit",
        help="pick the latest history record for this circuit id",
    )
    parser.add_argument(
        "--fail-on-regression",
        type=float,
        default=None,
        metavar="PCT",
        help=(
            "also fail when a wall-time metric worsens by more than "
            "PCT percent (only meaningful for runs from the same "
            "machine)"
        ),
    )
    parser.add_argument(
        "--json",
        metavar="PATH",
        help="also write the full comparison report as JSON",
    )
    args = parser.parse_args(argv)
    if args.fail_on_regression is not None and args.fail_on_regression < 0:
        parser.error("--fail-on-regression must be >= 0")

    import json

    from repro.obs.regress import (
        compare_snapshots,
        format_comparison,
        load_comparable,
    )

    try:
        base_snapshot, base_wall, base_label = load_comparable(
            args.base, circuit=args.circuit
        )
        new_snapshot, new_wall, new_label = load_comparable(
            args.new, circuit=args.circuit
        )
    except OSError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = compare_snapshots(
        base_snapshot,
        new_snapshot,
        time_slack_pct=args.fail_on_regression,
        base_wall=base_wall,
        new_wall=new_wall,
    )
    print(format_comparison(report, base_label, new_label))
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report.as_dict(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    return 0 if report.ok else 1


def main(argv: List[str] = None) -> int:
    """CLI entry point; see the module docstring for usage."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "optimize":
        return _optimize_main(argv[1:])
    if argv and argv[0] == "trace":
        return _trace_main(argv[1:])
    if argv and argv[0] == "tail":
        return _tail_main(argv[1:])
    if argv and argv[0] == "compare":
        return _compare_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Reproduce the experiment tables of 'Efficient Boolean "
            "Division and Substitution Using Redundancy Addition and "
            "Removing' (Chang & Cheng, DAC'98/TCAD'99)."
        ),
    )
    parser.add_argument(
        "tables",
        nargs="+",
        choices=["table2", "table3", "table4", "table5", "all"],
        help="which experiment table(s) to regenerate",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="use the smaller quick suite",
    )
    parser.add_argument(
        "--circuits",
        help="comma-separated circuit names (overrides the suite)",
    )
    parser.add_argument(
        "--methods",
        help=f"comma-separated subset of {','.join(_ALL_METHODS)}",
    )
    parser.add_argument(
        "--no-verify",
        action="store_true",
        help="skip per-run equivalence checking (faster)",
    )
    args = parser.parse_args(argv)

    if args.circuits:
        names = [n.strip() for n in args.circuits.split(",") if n.strip()]
    else:
        names = benchmark_suite(quick=args.quick)
    methods = _ALL_METHODS
    if args.methods:
        methods = [m.strip() for m in args.methods.split(",") if m.strip()]
        unknown = [m for m in methods if m not in _ALL_METHODS]
        if unknown:
            parser.error(f"unknown methods: {unknown}")

    tables = args.tables
    if "all" in tables:
        tables = ["table2", "table3", "table4", "table5"]
    for table in tables:
        print(_run_one(table, names, methods, verify=not args.no_verify))
        print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
