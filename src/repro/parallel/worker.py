"""Worker side of the speculative division engine.

A worker owns a private, frozen copy of the network (unpickled once per
process via the pool initializer, or a plain in-process copy for the
``serial`` backend) plus an optional :class:`DivisorFilter` rebuilt
from the main process's signature snapshot — so workers prune with the
exact signatures the main process had at snapshot time instead of
re-simulating from scratch.

Every entry point here is module-level and operates on picklable data
only: that is the worker-serialization contract
(``tests/parallel/test_pickle_roundtrip.py`` guards the types it
rests on).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DivisionConfig
from repro.core.division import (
    DivisionResult,
    build_analysis_circuit,
    enabled_attempts,
    evaluate_division,
)
from repro.network.network import Network
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.resilience import inject
from repro.sim.filter import DivisorFilter
from repro.sim.signature import SignatureSimulator


@dataclasses.dataclass
class PairOutcome:
    """Speculative evaluation of one (dividend, divisor) pair.

    ``pruned`` means the worker's signature filter refuted every
    variant (the pair would be skipped outright); otherwise
    ``divide_calls``/``variants_pruned`` replay the serial loop's
    bookkeeping and ``result`` is what :func:`divide_node_pair` returned
    against the snapshot (``None`` = no profitable division).
    """

    f_name: str
    d_name: str
    pruned: bool
    divide_calls: int
    variants_pruned: int
    result: Optional[DivisionResult]


class WorkerContext:
    """Per-process evaluation state: frozen network, config, filter.

    *injection* is an optional test-only
    :class:`~repro.resilience.inject.InjectionPlan` whose hooks fire on
    exact batch indices (see :mod:`repro.resilience.inject`); it is
    ``None`` in every production path.
    """

    def __init__(self, payload: bytes, injection=None):
        network, config, sim_snapshot, trace = pickle.loads(payload)
        self.network: Network = network
        self.config: DivisionConfig = config
        self.injection = injection
        self.filter: Optional[DivisorFilter] = None
        if sim_snapshot is not None:
            sim = SignatureSimulator.from_snapshot(network, sim_snapshot)
            self.filter = DivisorFilter(network, config, sim=sim)
        self._n_enabled = len(enabled_attempts(config))
        #: Worker-local tracer: spans recorded here are drained after
        #: each batch and shipped back with the shard result, so the
        #: main process can merge one trace for the whole run.  The
        #: label stays unique even for the in-process serial backend
        #: (same pid, different label).
        self.tracer = (
            Tracer(proc=f"worker-{os.getpid()}") if trace else NULL_TRACER
        )
        # GDC analysis circuits are divisor-independent, so they are
        # cached per dividend for the lifetime of the (frozen) snapshot.
        self._circuits: Dict[str, object] = {}

    def evaluate(
        self, pairs: Sequence[Tuple[str, str]], batch_index: int = 0
    ) -> List[PairOutcome]:
        inject.fire_batch_hooks(self.injection, batch_index)
        network, config, tracer = self.network, self.config, self.tracer
        out: List[PairOutcome] = []
        with tracer.span(
            "worker_batch", batch=batch_index, pairs=len(pairs)
        ):
            for f_name, d_name in pairs:
                with tracer.span(
                    "pair", f=f_name, d=d_name, speculative=True
                ) as pair_span:
                    attempts = None
                    if self.filter is not None:
                        attempts = self.filter.viable_attempts(
                            f_name, d_name
                        )
                        if not attempts:
                            out.append(
                                PairOutcome(f_name, d_name, True, 0, 0, None)
                            )
                            pair_span.annotate(pruned=True)
                            continue
                    divide_calls = (
                        self._n_enabled if attempts is None else len(attempts)
                    )
                    variants_pruned = (
                        0
                        if attempts is None
                        else self._n_enabled - len(attempts)
                    )
                    circuit = None
                    if config.global_dc:
                        circuit = self._circuits.get(f_name)
                        if circuit is None:
                            circuit = build_analysis_circuit(
                                network, f_name, [], config
                            )
                            self._circuits[f_name] = circuit
                    result = evaluate_division(
                        network,
                        f_name,
                        d_name,
                        config,
                        attempts=attempts,
                        circuit=circuit,
                        tracer=tracer,
                    )
                    out.append(
                        PairOutcome(
                            f_name,
                            d_name,
                            False,
                            divide_calls,
                            variants_pruned,
                            result,
                        )
                    )
        inject.corrupt_outcomes(self.injection, batch_index, out)
        return out


def make_payload(
    network: Network,
    config: DivisionConfig,
    sim_snapshot: Optional[Dict[str, object]],
    trace: bool = False,
) -> bytes:
    """Pickle the frozen snapshot shipped to every worker once.

    *trace* arms the workers' local tracers; their spans come back
    with each shard result (see :func:`_pool_evaluate`).
    """
    return pickle.dumps(
        (network, config, sim_snapshot, trace), pickle.HIGHEST_PROTOCOL
    )


# ----------------------------------------------------------------------
# Process-pool plumbing (module-level so it pickles by reference)
# ----------------------------------------------------------------------
_CONTEXT: Optional[WorkerContext] = None


def _pool_init(payload: bytes, injection=None) -> None:
    global _CONTEXT
    _CONTEXT = WorkerContext(payload, injection=injection)


def _pool_evaluate(
    batch_index: int, pairs: Sequence[Tuple[str, str]]
) -> Tuple[List[PairOutcome], List[dict]]:
    """Evaluate one shard; returns (outcomes, worker trace events)."""
    assert _CONTEXT is not None, "worker used before initialization"
    outcomes = _CONTEXT.evaluate(pairs, batch_index=batch_index)
    return outcomes, _CONTEXT.tracer.drain()
