"""Worker side of the speculative division engine.

A worker owns a private copy of the network, unpickled **once per
process lifetime** from the base snapshot payload (pool initializer,
or a plain in-process copy for the ``serial`` backend), plus an
optional :class:`DivisorFilter` whose signatures come either from an
inline snapshot dict or — the persistent-pool default — from a
:class:`~repro.sim.signature.SharedSignatureRef` pointing at the
bitmaps in shared memory (the worker attaches, reads, and closes the
mapping; only the main process ever unlinks the segment).

Across substitution passes the worker stays resident: instead of fresh
snapshot pickles it receives :class:`~repro.parallel.delta.DeltaRecord`
lists with each batch, applies the ones newer than its current
mutation generation, and refreshes its signatures incrementally
(:meth:`SignatureSimulator.refresh` — the generation-keyed caches in
the filter invalidate themselves).  The per-dividend GDC circuit cache
survives batches within a generation and is dropped when a delta
lands (global don't cares see the whole network, so any rewrite
invalidates every cached analysis circuit).

Every entry point here is module-level and operates on picklable data
only: that is the worker-serialization contract
(``tests/parallel/test_pickle_roundtrip.py`` guards the types it
rests on).
"""

from __future__ import annotations

import dataclasses
import os
import pickle
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DivisionConfig
from repro.core.division import (
    DivisionResult,
    build_analysis_circuit,
    enabled_attempts,
    evaluate_division,
)
from repro.network.network import Network
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.parallel.delta import DeltaRecord, apply_pending
from repro.resilience import inject
from repro.sim.filter import DivisorFilter
from repro.sim.signature import SharedSignatureRef, SignatureSimulator


@dataclasses.dataclass
class PairOutcome:
    """Speculative evaluation of one (dividend, divisor) pair.

    ``pruned`` means the worker's signature filter refuted every
    variant (the pair would be skipped outright); otherwise
    ``divide_calls``/``variants_pruned`` replay the serial loop's
    bookkeeping and ``result`` is what :func:`divide_node_pair` returned
    against the snapshot (``None`` = no profitable division).
    """

    f_name: str
    d_name: str
    pruned: bool
    divide_calls: int
    variants_pruned: int
    result: Optional[DivisionResult]


class WorkerContext:
    """Per-process evaluation state: network, config, filter, deltas.

    *injection* is an optional test-only
    :class:`~repro.resilience.inject.InjectionPlan` whose hooks fire on
    exact batch indices (see :mod:`repro.resilience.inject`); it is
    ``None`` in every production path.
    """

    def __init__(self, payload: bytes, injection=None):
        build_start = time.perf_counter()
        network, config, sim_ref, trace, heartbeat_dir = pickle.loads(
            payload
        )
        self.network: Network = network
        self.config: DivisionConfig = config
        self.injection = injection
        #: Liveness channel: when set, a per-pid heartbeat file in this
        #: directory is overwritten at every batch boundary (see
        #: :mod:`repro.obs.health`).
        self.heartbeat_dir: Optional[str] = heartbeat_dir
        self.batches_evaluated = 0
        self.pairs_done = 0
        self.filter: Optional[DivisorFilter] = None
        if sim_ref is not None:
            if isinstance(sim_ref, SharedSignatureRef):
                sim = SignatureSimulator.from_shared(network, sim_ref)
            else:
                sim = SignatureSimulator.from_snapshot(network, sim_ref)
            self.filter = DivisorFilter(network, config, sim=sim)
        self._n_enabled = len(enabled_attempts(config))
        #: Mutation generation of the held network copy; batches carry
        #: the delta log and :meth:`apply_deltas` replays anything
        #: newer (0 = the base snapshot).
        self.generation = 0
        #: Deltas applied over the context's lifetime (observability).
        self.deltas_applied = 0
        #: Worker-local tracer: spans recorded here are drained after
        #: each batch and shipped back with the shard result, so the
        #: main process can merge one trace for the whole run.  The
        #: label stays unique even for the in-process serial backend
        #: (same pid, different label).
        self.tracer = (
            Tracer(proc=f"worker-{os.getpid()}") if trace else NULL_TRACER
        )
        # GDC analysis circuits are divisor-independent, so they are
        # cached per dividend for as long as the network generation
        # holds (dropped on every applied delta).
        self._circuits: Dict[str, object] = {}
        self.build_seconds = time.perf_counter() - build_start
        self._build_reported = False

    # ------------------------------------------------------------------
    # Delta replay
    # ------------------------------------------------------------------
    def apply_deltas(self, deltas: Sequence[DeltaRecord]) -> int:
        """Apply every record newer than the held generation, in order.

        Returns the number of records applied.  Idempotent: the full
        delta log travels with every batch, so a worker that already
        saw a pass's record skips it, while a freshly respawned worker
        replays the whole log from the base snapshot.
        """
        if not deltas:
            return 0
        before = self.generation
        with self.tracer.span(
            "delta_apply", from_generation=before
        ) as span:
            self.generation, roots = apply_pending(
                self.network, deltas, before
            )
            applied = sum(
                1 for record in deltas if record.generation > before
            )
            if applied:
                self._circuits.clear()
                if self.filter is not None:
                    self.filter.note_mutation(roots)
                self.deltas_applied += applied
            span.annotate(
                applied=applied,
                to_generation=self.generation,
                roots=len(roots),
            )
        return applied

    def evaluate(
        self,
        pairs: Sequence[Tuple[str, str]],
        batch_index: int = 0,
        deltas: Sequence[DeltaRecord] = (),
    ) -> List[PairOutcome]:
        inject.fire_batch_hooks(self.injection, batch_index)
        self.apply_deltas(deltas)
        network, config, tracer = self.network, self.config, self.tracer
        out: List[PairOutcome] = []
        #: Greedy short-circuit: once a dividend yields a profitable
        #: division, the commit loop will almost surely accept it and
        #: rewrite the dividend, invalidating every later outcome for
        #: the same dividend — so evaluating them here is wasted work
        #: (they would be re-evaluated live anyway).  The skip is
        #: per-shard state, keeping each shard's outcomes a pure
        #: function of (pairs, generation) — worker identity and
        #: history never leak into the results.
        skip_dividend: Optional[str] = None
        with tracer.span(
            "worker_batch",
            batch=batch_index,
            pairs=len(pairs),
            generation=self.generation,
        ):
            for f_name, d_name in pairs:
                if f_name == skip_dividend:
                    continue
                with tracer.span(
                    "pair", f=f_name, d=d_name, speculative=True
                ) as pair_span:
                    attempts = None
                    if self.filter is not None:
                        attempts = self.filter.viable_attempts(
                            f_name, d_name
                        )
                        if not attempts:
                            out.append(
                                PairOutcome(f_name, d_name, True, 0, 0, None)
                            )
                            pair_span.annotate(pruned=True)
                            continue
                    divide_calls = (
                        self._n_enabled if attempts is None else len(attempts)
                    )
                    variants_pruned = (
                        0
                        if attempts is None
                        else self._n_enabled - len(attempts)
                    )
                    circuit = None
                    if config.global_dc:
                        circuit = self._circuits.get(f_name)
                        if circuit is None:
                            circuit = build_analysis_circuit(
                                network, f_name, [], config
                            )
                            self._circuits[f_name] = circuit
                    result = evaluate_division(
                        network,
                        f_name,
                        d_name,
                        config,
                        attempts=attempts,
                        circuit=circuit,
                        tracer=tracer,
                    )
                    out.append(
                        PairOutcome(
                            f_name,
                            d_name,
                            False,
                            divide_calls,
                            variants_pruned,
                            result,
                        )
                    )
                    if result is not None:
                        skip_dividend = f_name
        inject.corrupt_outcomes(self.injection, batch_index, out)
        self.batches_evaluated += 1
        self.pairs_done += len(pairs)
        self._mark_liveness(batch_index)
        return out

    def _mark_liveness(self, batch_index: int) -> None:
        """Batch-boundary telemetry: heartbeat + resource sample.

        Both are pure observability — no control-flow influence — and
        both are batch-synchronous (no worker threads), so outcomes
        remain a pure function of (pairs, generation).
        """
        if self.heartbeat_dir is not None:
            # Imported lazily: obs.health is only needed on the
            # liveness path, never in the default pickle contract.
            from repro.obs.health import write_heartbeat

            write_heartbeat(
                self.heartbeat_dir,
                os.getpid(),
                batch=batch_index,
                pairs_done=self.pairs_done,
                generation=self.generation,
            )
        if self.tracer.enabled:
            from repro.obs.resource import sample_attrs

            self.tracer.instant(
                "heartbeat",
                batch=batch_index,
                pairs_done=self.pairs_done,
                generation=self.generation,
                pid=os.getpid(),
            )
            self.tracer.instant("resource_sample", **sample_attrs())

    def shard_meta(self, eval_seconds: float) -> Dict[str, float]:
        """Per-shard bookkeeping shipped back with the outcomes.

        ``build_seconds`` is reported once per context so the engine's
        phase accounting sums worker build cost without double counts.
        """
        build = 0.0 if self._build_reported else self.build_seconds
        self._build_reported = True
        return {
            "build_seconds": build,
            "eval_seconds": eval_seconds,
            "generation": float(self.generation),
            # Heartbeat mark piggybacked on the result channel: pid +
            # wall timestamp + cumulative progress.  The executor
            # counts these into ``health.heartbeats_recorded``.
            "heartbeat": 1.0,
            "pid": float(os.getpid()),
            "heartbeat_ts": time.time(),
            "pairs_done": float(self.pairs_done),
        }


def make_payload(
    network: Network,
    config: DivisionConfig,
    sim_snapshot,
    trace: bool = False,
    heartbeat_dir: Optional[str] = None,
) -> bytes:
    """Pickle the base snapshot shipped to every worker exactly once.

    *sim_snapshot* is ``None``, an inline
    :meth:`~repro.sim.signature.SignatureSimulator.snapshot` dict, or a
    :class:`~repro.sim.signature.SharedSignatureRef` (the bitmaps stay
    in shared memory and only the small ref rides in the pickle).
    *trace* arms the workers' local tracers; their spans come back
    with each shard result (see :func:`_pool_evaluate`).
    *heartbeat_dir* arms the per-batch heartbeat files.
    """
    return pickle.dumps(
        (network, config, sim_snapshot, trace, heartbeat_dir),
        pickle.HIGHEST_PROTOCOL,
    )


# ----------------------------------------------------------------------
# Process-pool plumbing (module-level so it pickles by reference)
# ----------------------------------------------------------------------
_CONTEXT: Optional[WorkerContext] = None


def _pool_init(payload: bytes, injection=None) -> None:
    global _CONTEXT
    _CONTEXT = WorkerContext(payload, injection=injection)


def _pool_evaluate(
    batch_index: int,
    pairs: Sequence[Tuple[str, str]],
    deltas: Sequence[DeltaRecord] = (),
) -> Tuple[List[PairOutcome], List[dict], Dict[str, float]]:
    """Evaluate one shard; returns (outcomes, trace events, meta)."""
    assert _CONTEXT is not None, "worker used before initialization"
    start = time.perf_counter()
    outcomes = _CONTEXT.evaluate(pairs, batch_index=batch_index, deltas=deltas)
    meta = _CONTEXT.shard_meta(time.perf_counter() - start)
    return outcomes, _CONTEXT.tracer.drain(), meta
