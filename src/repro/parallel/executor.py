"""Executor backends for the speculative division engine.

Both backends are **persistent**: built once per ``substitute_network``
run, they hold their worker state (network copy, ``DivisorFilter``,
GDC circuit cache) across every pass.  Both consume the same pickled
base-snapshot payload, accept shards of (dividend, divisor) pairs with
a delta log (:mod:`repro.parallel.delta`), and return
:class:`~repro.parallel.worker.PairOutcome` lists — the engine above
them never knows which one it is talking to:

* :class:`ProcessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor` spawned once; the payload is unpickled once per
  worker process (pool initializer), shards travel as small name lists
  plus delta records, and results are reaped lazily so several shards
  stay in flight while the main process commits
  (:meth:`submit` / :meth:`result`).
* :class:`SerialExecutor` — the identical evaluation in-process against
  a private unpickled copy.  Used for ``parallel_backend="serial"``
  (debugging, commit-protocol tests) and as the automatic fallback
  when a process pool cannot be spawned.

Fault containment (the process backend's retry ladder):

1. every reaped future sits under ``try``; a lost worker, a broken
   pool, a pickling error or a worker-raised exception marks just that
   *shard* as failed and counts a ``worker_fault``;
2. failed shards are re-dispatched onto a **fresh** pool up to
   ``max_retries`` times (``shards_redispatched``).  A crashed
   ``ProcessPoolExecutor`` poisons every outstanding future, so on
   failure the executor first drains everything in flight, then
   rebuilds the pool once for the whole failure wave; respawned
   workers start from the base snapshot and *replay the shard's full
   delta log* (records ride with every submission), which restores the
   exact generation the shard was aimed at;
3. shards that keep failing are evaluated in-process on a persistent
   :class:`~repro.parallel.worker.WorkerContext`
   (``degraded_to_serial``), which cannot lose a process and applies
   the same delta log.

Because speculative outcomes are *hints* — the commit protocol
validates each one against the live network — any recovery path yields
the same optimized network as a serial run; only the stats differ.

Both executors are context managers; ``__exit__`` shuts the backend
down (cancelling still-queued futures when an exception is unwinding)
so an error inside the engine can never leak a live process pool.
``close()`` is idempotent and ordered: it drops the in-flight table
*before* shutting the pool down and never re-enters a pool that a
``cancel_futures`` teardown already destroyed — the rung-3 fallback
path only ever touches the pool through ``_rebuild_pool``'s
``None``-guard, so a double-close cannot happen.
"""

from __future__ import annotations

import dataclasses
import os
import time
from typing import Dict, List, Optional, Sequence, Tuple

from repro.parallel.delta import DeltaRecord
from repro.parallel.worker import (
    PairOutcome,
    WorkerContext,
    _pool_evaluate,
    _pool_init,
)

Pair = Tuple[str, str]


@dataclasses.dataclass
class _Task:
    """One submitted shard: everything needed to re-dispatch it."""

    index: int
    pairs: List[Pair]
    deltas: Tuple[DeltaRecord, ...]
    retries: int = 0

    @property
    def generation(self) -> int:
        """The mutation generation the shard was aimed at (the last
        record of the log it shipped with; 0 = base snapshot)."""
        return self.deltas[-1].generation if self.deltas else 0


class SerialExecutor:
    """In-process executor over a private, persistent snapshot copy."""

    workers = 1
    worker_faults = 0
    shards_redispatched = 0
    degraded_to_serial = 0
    #: An in-process worker cannot stall behind a pipe.
    stalls = 0
    #: Evaluation happens inline during :meth:`submit`; the dispatcher
    #: uses a window of 1 (pipelining has nothing to overlap).
    concurrent = False

    def __init__(self, payload: bytes, injection=None):
        self._context = WorkerContext(payload, injection=injection)
        self._results: Dict[int, List[PairOutcome]] = {}
        #: Worker-recorded trace events (empty when tracing is off);
        #: the engine absorbs these into the main trace.
        self.trace_events: List[dict] = []
        self.worker_build_seconds = self._context.build_seconds
        self.evaluate_seconds = 0.0
        #: One liveness mark per evaluated shard, mirroring the
        #: process backend's piggybacked heartbeats, so ``health.*``
        #: reads consistently across backends.
        self.heartbeats = 0

    # -- persistent submit/reap API ------------------------------------
    def submit(
        self,
        index: int,
        pairs: Sequence[Pair],
        deltas: Sequence[DeltaRecord] = (),
    ) -> None:
        if self._context is None:
            raise RuntimeError("executor is closed")
        start = time.perf_counter()
        self._results[index] = self._context.evaluate(
            list(pairs), batch_index=index, deltas=tuple(deltas)
        )
        self.evaluate_seconds += time.perf_counter() - start
        self.heartbeats += 1
        self.trace_events.extend(self._context.tracer.drain())

    def result(self, index: int) -> List[PairOutcome]:
        return self._results.pop(index)

    # -- batch compatibility API ---------------------------------------
    def evaluate(
        self, batches: Sequence[Sequence[Pair]]
    ) -> List[PairOutcome]:
        out: List[PairOutcome] = []
        for index, batch in enumerate(batches):
            self.submit(index, batch)
            out.extend(self.result(index))
        return out

    def close(self, cancel: bool = False) -> None:
        self._context = None
        self._results.clear()

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(cancel=exc_type is not None)


class ProcessExecutor:
    """Persistent process-pool executor; one snapshot unpickle per
    worker process for the whole run.

    Failed shards climb the retry ladder described in the module doc.
    *injection* (tests only) is forwarded to the workers through the
    pool initializer; a transient plan (``persistent=False``) is
    disarmed when the pool is rebuilt, so a redispatch models recovery
    from a one-off fault.
    """

    #: Shards really run beside the main process: the dispatcher keeps
    #: a multi-shard window in flight to overlap the commit loop.
    concurrent = True

    def __init__(
        self,
        payload: bytes,
        n_jobs: int,
        injection=None,
        max_retries: int = 2,
        stall_timeout: Optional[float] = None,
    ):
        self.workers = n_jobs
        self.max_retries = max_retries
        self.worker_faults = 0
        self.shards_redispatched = 0
        self.degraded_to_serial = 0
        #: Heartbeat marks piggybacked on reaped shard metas, and
        #: shards the watchdog flagged as silent past *stall_timeout*.
        self.heartbeats = 0
        self.stalls = 0
        self.trace_events: List[dict] = []
        self.worker_build_seconds = 0.0
        self.evaluate_seconds = 0.0
        self._payload = payload
        self._injection = injection
        self._watchdog = None
        if stall_timeout is not None:
            # Imported here (not at module top) to keep the worker
            # pickle graph identical with the watchdog disabled.
            from repro.obs.health import StallWatchdog

            self._watchdog = StallWatchdog(stall_timeout)
        #: Set when a stall made the live pool suspect: its teardown
        #: must not wait on a wedged worker (see ``_shutdown_pool``).
        self._pool_suspect = False
        self._tasks: Dict[int, _Task] = {}
        self._inflight: Dict[int, object] = {}
        self._failed: List[int] = []
        self._results: Dict[int, List[PairOutcome]] = {}
        self._fallback: Optional[WorkerContext] = None
        self._pool = self._spawn_pool()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _spawn_pool(self):
        # Imported lazily so the serial backend works even where
        # multiprocessing is unavailable (restricted sandboxes).
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_pool_init,
            initargs=(self._payload, self._injection),
        )

    def _shutdown_pool(self, pool, cancel: bool) -> None:
        """Tear one pool down; never block behind a wedged worker.

        A pool flagged suspect by the stall watchdog may hold a worker
        that will not finish its task for an arbitrarily long time, so
        ``shutdown(wait=True)`` (the default) could hang the main
        process on exactly the fault the watchdog contained.  For
        suspect pools, shut down without waiting and terminate the
        worker processes directly.
        """
        if not self._pool_suspect:
            pool.shutdown(cancel_futures=cancel)
            return
        processes = list(getattr(pool, "_processes", {}).values())
        pool.shutdown(wait=False, cancel_futures=True)
        for process in processes:
            try:
                process.terminate()
            except Exception:
                pass
        self._pool_suspect = False

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._shutdown_pool(self._pool, cancel=True)
            self._pool = None
        if self._injection is not None and not self._injection.persistent:
            self._injection = None
        self._pool = self._spawn_pool()

    def close(self, cancel: bool = False) -> None:
        # Ordering matters: forget the in-flight futures first, then
        # shut the pool down exactly once.  ``_pool`` goes ``None``
        # before anything that could re-enter (the fallback rung only
        # rebuilds through the same guard), so a close after a
        # ``cancel_futures`` teardown is a no-op, not a double-close.
        self._inflight.clear()
        self._failed.clear()
        self._fallback = None
        pool, self._pool = self._pool, None
        if pool is not None:
            self._shutdown_pool(pool, cancel=cancel)

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(cancel=exc_type is not None)

    # ------------------------------------------------------------------
    # Persistent submit/reap with the retry ladder
    # ------------------------------------------------------------------
    def submit(
        self,
        index: int,
        pairs: Sequence[Pair],
        deltas: Sequence[DeltaRecord] = (),
    ) -> None:
        """Queue one shard onto the pool (non-blocking)."""
        if self._pool is None:
            raise RuntimeError("executor is closed")
        task = _Task(index, list(pairs), tuple(deltas))
        self._tasks[index] = task
        self._submit_task(task)

    def _submit_task(self, task: _Task) -> None:
        try:
            self._inflight[task.index] = self._pool.submit(
                _pool_evaluate, task.index, task.pairs, task.deltas
            )
        except Exception:
            # Pool already broken: defer to the next failure wave.
            self._failed.append(task.index)
            return
        if self._watchdog is not None:
            self._watchdog.note_dispatch(task.index)

    def result(self, index: int) -> List[PairOutcome]:
        """Block until shard *index* is done; climb the ladder if it
        (or the pool under it) failed."""
        while index not in self._results:
            self._step(index)
        return self._results.pop(index)

    def _reap(self, index: int, future) -> bool:
        """Wait for one future and record it; returns success.

        With the watchdog armed the wait is bounded: a shard silent
        past the threshold is flagged as a ``stall`` (counted, traced)
        and joins the failure wave like any other worker fault — the
        same ladder (redispatch on a fresh pool → in-process fallback)
        contains wedged workers exactly as it contains dead ones.
        """
        watchdog = self._watchdog
        timeout = None if watchdog is None else watchdog.threshold_seconds
        try:
            value = future.result(timeout=timeout)
        except TimeoutError:
            if watchdog is None:
                # No watchdog armed: a worker-raised TimeoutError is
                # just a worker fault like any other exception.
                self._failed.append(index)
                return False
            self.stalls += 1
            self._pool_suspect = True
            self.trace_events.append(
                watchdog.flag_stall(
                    index, retries=self._tasks[index].retries
                )
            )
            future.cancel()
            self._failed.append(index)
            return False
        except Exception:
            if watchdog is not None:
                watchdog.note_result(index)
            self._failed.append(index)
            return False
        if watchdog is not None:
            watchdog.note_result(index)
        self._record(index, value)
        return True

    def _step(self, index: int) -> None:
        future = self._inflight.pop(index, None)
        if future is not None:
            if self._reap(index, future):
                return
        elif index not in self._failed:
            raise KeyError(f"shard {index} was never submitted")
        self._run_failure_wave()

    def _record(self, index: int, value) -> None:
        outcomes, events, meta = value
        task = self._tasks.get(index)
        if task is not None and meta.get("generation", 0) > task.generation:
            # Deltas are not invertible, so a context that already
            # replayed a *newer* generation (possible only after a
            # failure wave reordered shards) evaluated this shard
            # against later state than the store pinned its validity
            # to.  Discard: the pairs simply evaluate live.
            outcomes = []
        self._results[index] = outcomes
        self.trace_events.extend(events)
        self.worker_build_seconds += meta.get("build_seconds", 0.0)
        self.evaluate_seconds += meta.get("eval_seconds", 0.0)
        self.heartbeats += int(meta.get("heartbeat", 0))

    def _run_failure_wave(self) -> None:
        """Handle every failure discovered so far in one sweep.

        A broken pool poisons all outstanding futures, so first drain
        everything in flight (successes are kept — their futures
        resolved before the crash), then rebuild the pool **once** and
        re-dispatch the whole failed set, falling back in-process for
        shards that exhausted their retries.
        """
        for other, future in list(self._inflight.items()):
            self._reap(other, future)
            del self._inflight[other]
        if not self._failed:
            return
        failed, self._failed = self._failed, []
        self.worker_faults += len(failed)
        retryable: List[int] = []
        exhausted: List[int] = []
        for index in sorted(failed):
            task = self._tasks[index]
            if task.retries < self.max_retries:
                retryable.append(index)
            else:
                exhausted.append(index)
        if retryable:
            try:
                self._rebuild_pool()
            except (ImportError, OSError):
                exhausted = sorted(exhausted + retryable)
                retryable = []
        for index in retryable:
            task = self._tasks[index]
            task.retries += 1
            self.shards_redispatched += 1
            self._submit_task(task)
        if exhausted:
            # Rung 3: evaluate the stubborn shards in-process on a
            # persistent fallback context.  The injection plan rides
            # along — its destructive hooks are pid-guarded and cannot
            # fire in the parent.  The full delta log travels with
            # each task, so the fallback replays to the right
            # generation no matter when it was built.
            self.degraded_to_serial += 1
            if self._fallback is None:
                self._fallback = WorkerContext(
                    self._payload, injection=self._injection
                )
                self.worker_build_seconds += self._fallback.build_seconds
            for index in exhausted:
                task = self._tasks[index]
                if self._fallback.generation > task.generation:
                    # Same guard as ``_record``: the persistent
                    # fallback cannot rewind to this shard's older
                    # generation, so its pairs evaluate live instead.
                    self._results[index] = []
                    continue
                start = time.perf_counter()
                self._results[index] = self._fallback.evaluate(
                    task.pairs, batch_index=index, deltas=task.deltas
                )
                self.evaluate_seconds += time.perf_counter() - start
            self.trace_events.extend(self._fallback.tracer.drain())

    # ------------------------------------------------------------------
    # Batch compatibility API
    # ------------------------------------------------------------------
    def evaluate(
        self, batches: Sequence[Sequence[Pair]]
    ) -> List[PairOutcome]:
        for index, batch in enumerate(batches):
            self.submit(index, batch)
        out: List[PairOutcome] = []
        for index in range(len(batches)):
            out.extend(self.result(index))
        return out


def resolve_backend(backend: str) -> str:
    """Resolve the ``"auto"`` backend to a concrete one.

    The process pool only pays off when the machine can actually run
    workers beside the main process; on a single-core host it adds
    scheduling overhead and nothing else, so ``"auto"`` selects the
    in-process engine there — same protocol, same output, none of the
    pool cost.
    """
    if backend != "auto":
        return backend
    return "process" if (os.cpu_count() or 1) > 1 else "serial"


def make_executor(
    payload: bytes,
    n_jobs: int,
    backend: str,
    injection=None,
    max_retries: int = 2,
    stall_timeout: Optional[float] = None,
):
    """Build the configured executor over a snapshot *payload*."""
    backend = resolve_backend(backend)
    if backend == "serial" or n_jobs == 1:
        return SerialExecutor(payload, injection=injection)
    if backend == "process":
        try:
            return ProcessExecutor(
                payload,
                n_jobs,
                injection=injection,
                max_retries=max_retries,
                stall_timeout=stall_timeout,
            )
        except (ImportError, OSError):
            # No usable multiprocessing (e.g. sandboxed /dev/shm):
            # degrade to the in-process engine, same results.
            return SerialExecutor(payload, injection=injection)
    raise ValueError(f"unknown parallel backend {backend!r}")
