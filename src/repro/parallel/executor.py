"""Executor backends for the speculative division engine.

Both backends consume the same pickled snapshot payload and the same
batches of (dividend, divisor) pairs, and both return
:class:`~repro.parallel.worker.PairOutcome` lists — the engine above
them never knows which one it is talking to:

* :class:`ProcessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor`; the payload is unpickled once per worker
  process (pool initializer), batches travel as small name lists.
* :class:`SerialExecutor` — the identical evaluation in-process against
  a private unpickled copy.  Used for ``parallel_backend="serial"``
  (debugging, commit-protocol tests) and as the automatic fallback
  when a process pool cannot be spawned.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.parallel.worker import (
    PairOutcome,
    WorkerContext,
    _pool_evaluate,
    _pool_init,
)

Pair = Tuple[str, str]


class SerialExecutor:
    """In-process executor over a private snapshot copy."""

    workers = 1

    def __init__(self, payload: bytes):
        self._context = WorkerContext(payload)

    def evaluate(
        self, batches: Sequence[Sequence[Pair]]
    ) -> List[PairOutcome]:
        out: List[PairOutcome] = []
        for batch in batches:
            out.extend(self._context.evaluate(batch))
        return out

    def close(self) -> None:
        self._context = None


class ProcessExecutor:
    """Process-pool executor; one snapshot unpickle per worker."""

    def __init__(self, payload: bytes, n_jobs: int):
        # Imported lazily so the serial backend works even where
        # multiprocessing is unavailable (restricted sandboxes).
        from concurrent.futures import ProcessPoolExecutor

        self.workers = n_jobs
        self._pool = ProcessPoolExecutor(
            max_workers=n_jobs,
            initializer=_pool_init,
            initargs=(payload,),
        )

    def evaluate(
        self, batches: Sequence[Sequence[Pair]]
    ) -> List[PairOutcome]:
        futures = [
            self._pool.submit(_pool_evaluate, list(batch))
            for batch in batches
        ]
        # Collection order is irrelevant for determinism — outcomes are
        # keyed by pair and committed in serial greedy order — but
        # iterating submission order keeps failure attribution simple.
        out: List[PairOutcome] = []
        for future in futures:
            out.extend(future.result())
        return out

    def close(self) -> None:
        self._pool.shutdown()


def make_executor(payload: bytes, n_jobs: int, backend: str):
    """Build the configured executor over a snapshot *payload*."""
    if backend == "serial" or n_jobs == 1:
        return SerialExecutor(payload)
    if backend == "process":
        try:
            return ProcessExecutor(payload, n_jobs)
        except (ImportError, OSError):
            # No usable multiprocessing (e.g. sandboxed /dev/shm):
            # degrade to the in-process engine, same results.
            return SerialExecutor(payload)
    raise ValueError(f"unknown parallel backend {backend!r}")
