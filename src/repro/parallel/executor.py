"""Executor backends for the speculative division engine.

Both backends consume the same pickled snapshot payload and the same
batches of (dividend, divisor) pairs, and both return
:class:`~repro.parallel.worker.PairOutcome` lists — the engine above
them never knows which one it is talking to:

* :class:`ProcessExecutor` — a :class:`concurrent.futures.
  ProcessPoolExecutor`; the payload is unpickled once per worker
  process (pool initializer), batches travel as small name lists.
* :class:`SerialExecutor` — the identical evaluation in-process against
  a private unpickled copy.  Used for ``parallel_backend="serial"``
  (debugging, commit-protocol tests) and as the automatic fallback
  when a process pool cannot be spawned.

Fault containment (the process backend's retry ladder):

1. every future is collected under ``try``; a lost worker, a broken
   pool, a pickling error or a worker-raised exception marks just that
   *shard* (batch) as failed and counts a ``worker_fault``;
2. failed shards are re-dispatched onto a **fresh** pool up to
   ``max_retries`` times (``shards_redispatched``) — a crashed
   ``ProcessPoolExecutor`` poisons every outstanding future, so the
   pool is always rebuilt before a retry;
3. shards that keep failing are evaluated in-process on a private
   :class:`~repro.parallel.worker.WorkerContext`
   (``degraded_to_serial``), which cannot lose a process.

Because speculative outcomes are *hints* — the commit protocol
validates each one against the live network — any recovery path yields
the same optimized network as a serial run; only the stats differ.

Both executors are context managers; ``__exit__`` shuts the backend
down (cancelling still-queued futures when an exception is unwinding)
so an error inside the engine can never leak a live process pool.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

from repro.parallel.worker import (
    PairOutcome,
    WorkerContext,
    _pool_evaluate,
    _pool_init,
)

Pair = Tuple[str, str]


class SerialExecutor:
    """In-process executor over a private snapshot copy."""

    workers = 1
    worker_faults = 0
    shards_redispatched = 0
    degraded_to_serial = 0

    def __init__(self, payload: bytes, injection=None):
        self._context = WorkerContext(payload, injection=injection)
        #: Worker-recorded trace events (empty when tracing is off);
        #: the engine absorbs these into the main trace.
        self.trace_events: List[dict] = []

    def evaluate(
        self, batches: Sequence[Sequence[Pair]]
    ) -> List[PairOutcome]:
        out: List[PairOutcome] = []
        for index, batch in enumerate(batches):
            out.extend(self._context.evaluate(batch, batch_index=index))
        self.trace_events.extend(self._context.tracer.drain())
        return out

    def close(self, cancel: bool = False) -> None:
        self._context = None

    def __enter__(self) -> "SerialExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(cancel=exc_type is not None)


class ProcessExecutor:
    """Process-pool executor; one snapshot unpickle per worker.

    Failed shards climb the retry ladder described in the module doc.
    *injection* (tests only) is forwarded to the workers through the
    pool initializer; a transient plan (``persistent=False``) is
    disarmed when the pool is rebuilt, so a redispatch models recovery
    from a one-off fault.
    """

    def __init__(
        self,
        payload: bytes,
        n_jobs: int,
        injection=None,
        max_retries: int = 2,
    ):
        self.workers = n_jobs
        self.max_retries = max_retries
        self.worker_faults = 0
        self.shards_redispatched = 0
        self.degraded_to_serial = 0
        self.trace_events: List[dict] = []
        self._payload = payload
        self._injection = injection
        self._pool = self._spawn_pool()

    # ------------------------------------------------------------------
    # Pool lifecycle
    # ------------------------------------------------------------------
    def _spawn_pool(self):
        # Imported lazily so the serial backend works even where
        # multiprocessing is unavailable (restricted sandboxes).
        from concurrent.futures import ProcessPoolExecutor

        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_pool_init,
            initargs=(self._payload, self._injection),
        )

    def _rebuild_pool(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=True)
        if self._injection is not None and not self._injection.persistent:
            self._injection = None
        self._pool = self._spawn_pool()

    def close(self, cancel: bool = False) -> None:
        if self._pool is not None:
            self._pool.shutdown(cancel_futures=cancel)
            self._pool = None

    def __enter__(self) -> "ProcessExecutor":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close(cancel=exc_type is not None)

    # ------------------------------------------------------------------
    # Evaluation with the retry ladder
    # ------------------------------------------------------------------
    def _dispatch(
        self,
        pending: Dict[int, List[Pair]],
        results: Dict[int, List[PairOutcome]],
    ) -> List[int]:
        """Submit *pending* shards; return the indices that failed."""
        futures = {
            index: self._pool.submit(_pool_evaluate, index, pairs)
            for index, pairs in sorted(pending.items())
        }
        failed: List[int] = []
        for index, future in futures.items():
            try:
                outcomes, events = future.result()
                results[index] = outcomes
                self.trace_events.extend(events)
            except Exception:
                # BrokenProcessPool, PicklingError, or an exception the
                # worker raised: contain it to this shard.
                self.worker_faults += 1
                failed.append(index)
        return failed

    def evaluate(
        self, batches: Sequence[Sequence[Pair]]
    ) -> List[PairOutcome]:
        pending = {
            index: list(batch) for index, batch in enumerate(batches)
        }
        results: Dict[int, List[PairOutcome]] = {}
        failed = self._dispatch(pending, results)
        retries = 0
        while failed and retries < self.max_retries:
            retries += 1
            self.shards_redispatched += len(failed)
            try:
                self._rebuild_pool()
            except (ImportError, OSError):
                break  # cannot get a fresh pool: go straight to rung 3
            failed = self._dispatch(
                {index: pending[index] for index in failed}, results
            )
        if failed:
            # Rung 3: evaluate the stubborn shards in-process.  The
            # injection plan rides along — its destructive hooks are
            # pid-guarded and cannot fire in the parent.
            self.degraded_to_serial += 1
            fallback = WorkerContext(
                self._payload, injection=self._injection
            )
            for index in sorted(failed):
                results[index] = fallback.evaluate(
                    pending[index], batch_index=index
                )
            self.trace_events.extend(fallback.tracer.drain())
        out: List[PairOutcome] = []
        for index in sorted(results):
            out.extend(results[index])
        return out


def make_executor(
    payload: bytes,
    n_jobs: int,
    backend: str,
    injection=None,
    max_retries: int = 2,
):
    """Build the configured executor over a snapshot *payload*."""
    if backend == "serial" or n_jobs == 1:
        return SerialExecutor(payload, injection=injection)
    if backend == "process":
        try:
            return ProcessExecutor(
                payload, n_jobs, injection=injection, max_retries=max_retries
            )
        except (ImportError, OSError):
            # No usable multiprocessing (e.g. sandboxed /dev/shm):
            # degrade to the in-process engine, same results.
            return SerialExecutor(payload, injection=injection)
    raise ValueError(f"unknown parallel backend {backend!r}")
