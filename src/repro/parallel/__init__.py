"""Process-parallel speculative evaluation for Boolean substitution.

* :mod:`repro.parallel.engine` — snapshot, candidate sharding, and the
  deterministic commit protocol (:class:`SpeculativeStore`),
* :mod:`repro.parallel.executor` — the process-pool and in-process
  backends behind one interface,
* :mod:`repro.parallel.worker` — the pickle-safe worker entry points.

Enabled with ``DivisionConfig.n_jobs > 1`` (CLI: ``--jobs``); output is
byte-identical to the serial path by construction.
"""

from repro.parallel.engine import (
    SpeculativeEngine,
    SpeculativeStore,
    enumerate_candidate_pairs,
    shard_pairs,
)
from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
)
from repro.parallel.worker import PairOutcome, WorkerContext, make_payload

__all__ = [
    "SpeculativeEngine",
    "SpeculativeStore",
    "enumerate_candidate_pairs",
    "shard_pairs",
    "ProcessExecutor",
    "SerialExecutor",
    "make_executor",
    "PairOutcome",
    "WorkerContext",
    "make_payload",
]
