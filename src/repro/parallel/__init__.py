"""Process-parallel speculative evaluation for Boolean substitution.

* :mod:`repro.parallel.engine` — the persistent-pool driver, pipelined
  shard dispatch, and the deterministic commit protocol
  (:class:`SpeculativeStore`),
* :mod:`repro.parallel.delta` — incremental network deltas shipped to
  resident workers instead of fresh snapshots,
* :mod:`repro.parallel.executor` — the process-pool and in-process
  backends behind one persistent submit/reap interface,
* :mod:`repro.parallel.worker` — the pickle-safe worker entry points.

Enabled with ``DivisionConfig.n_jobs > 1`` (CLI: ``--jobs``); output is
byte-identical to the serial path by construction.
"""

from repro.parallel.delta import (
    DeltaRecord,
    NodeUpdate,
    apply_pending,
    apply_record,
    capture_states,
    cumulative_record,
    diff_network,
)
from repro.parallel.engine import (
    SHM_PREFIX,
    ShardDispatcher,
    SpeculativeEngine,
    SpeculativeStore,
    enumerate_candidate_pairs,
    shard_pairs,
)
from repro.parallel.executor import (
    ProcessExecutor,
    SerialExecutor,
    make_executor,
    resolve_backend,
)
from repro.parallel.worker import PairOutcome, WorkerContext, make_payload

__all__ = [
    "DeltaRecord",
    "NodeUpdate",
    "apply_pending",
    "apply_record",
    "capture_states",
    "cumulative_record",
    "diff_network",
    "SHM_PREFIX",
    "ShardDispatcher",
    "SpeculativeEngine",
    "SpeculativeStore",
    "enumerate_candidate_pairs",
    "shard_pairs",
    "ProcessExecutor",
    "SerialExecutor",
    "make_executor",
    "resolve_backend",
    "PairOutcome",
    "WorkerContext",
    "make_payload",
]
