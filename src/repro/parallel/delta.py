"""Incremental network deltas for the persistent worker pool.

The batch-scoped protocol (PR 2) re-pickled the whole network into
every worker once per pass.  The persistent pool instead ships the
frozen network **once** (plus the signature bitmaps, via shared
memory) and afterwards sends only what changed: one
:class:`DeltaRecord` per substitution pass, carrying the committed
node rewrites and deletions keyed by a monotonically increasing
*mutation generation*.

Workers hold their network copy at some generation ``g`` and apply any
record with ``generation > g`` before evaluating a batch; records at
or below ``g`` are skipped.  What rides with each batch is a single
**cumulative** record (:func:`cumulative_record`): the diff of the
live network against the *base snapshot*, extended so it corrects a
worker holding *any* previously shipped generation — every node that
was ever shipped changed stays in ``updates`` (a worker may still hold
an old state for it; re-applying the current state is a no-op skip for
everyone else), and ``deletions`` cover every name a worker could
possibly have (base or ever-shipped) that no longer exists.  The wire
cost is therefore bounded by the number of distinct nodes ever
rewritten, not by the number of ships, and a freshly respawned worker
restores the exact live state from the base snapshot with one
application.  Replay is exact by construction:

* updates are computed by diffing the live network against the state
  last shipped, in network iteration order, so applying them
  reproduces both the ``(fanins, cover)`` state of every node *and*
  the dict insertion order (in-place rewrites keep their slot, new
  nodes append in creation order) — the order-sensitive parts of
  GDC analysis see the same network a full re-pickle would give;
* deletions are applied by raw removal (the shipped state is a
  consistent network, so no referential validation is needed);
* after application the worker's incremental
  :class:`~repro.sim.signature.SignatureSimulator` refreshes only the
  touched fanout cones (its generation-keyed caches invalidate
  themselves), instead of restoring a fresh snapshot.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Sequence, Tuple

from repro.network.network import Network
from repro.network.node import Node

#: A node's division-relevant state: fanin names plus the (immutable)
#: cover object.  Shared with :mod:`repro.parallel.engine`.
NodeState = Tuple[Tuple[str, ...], object]


@dataclasses.dataclass(frozen=True)
class NodeUpdate:
    """One rewritten (or newly created) node: its full current state."""

    name: str
    fanins: Tuple[str, ...]
    cover: object


@dataclasses.dataclass(frozen=True)
class DeltaRecord:
    """Committed rewrites between two consecutive pass snapshots.

    ``generation`` numbers the snapshot this record produces; workers
    apply records in order and skip any at or below their current
    generation (idempotent replay).
    """

    generation: int
    updates: Tuple[NodeUpdate, ...]
    deletions: Tuple[str, ...]

    def node_count(self) -> int:
        return len(self.updates) + len(self.deletions)


def capture_states(network: Network) -> Dict[str, NodeState]:
    """The per-node state map a delta diff runs against."""
    return {
        name: (tuple(node.fanins), node.cover)
        for name, node in network.nodes.items()
    }


def diff_network(
    network: Network, shipped: Dict[str, NodeState], generation: int
) -> Tuple[DeltaRecord, Dict[str, NodeState]]:
    """Diff *network* against the *shipped* state map.

    Returns ``(record, new_states)`` where *record* (possibly empty)
    carries every changed/added node in network iteration order plus
    the names that disappeared, and *new_states* is the state map to
    diff the next pass against.
    """
    updates: List[NodeUpdate] = []
    states: Dict[str, NodeState] = {}
    for name, node in network.nodes.items():
        state = (tuple(node.fanins), node.cover)
        states[name] = state
        if shipped.get(name) != state:
            updates.append(NodeUpdate(name, state[0], state[1]))
    deletions = tuple(name for name in shipped if name not in states)
    record = DeltaRecord(generation, tuple(updates), deletions)
    return record, states


def cumulative_record(
    network: Network,
    base_states: Dict[str, NodeState],
    ever_updated: Sequence[str],
    generation: int,
) -> DeltaRecord:
    """One record that brings a worker at *any* shipped generation
    (including a respawned one at the base snapshot) to the live state.

    ``updates`` carry every node that differs from the base snapshot
    *plus* every name in *ever_updated* that still exists — a worker
    behind the current generation may hold a stale shipped state for
    those even when they have since reverted to their base state.
    ``deletions`` are every name a worker could possibly hold (base or
    ever-updated) that no longer exists; applying them is an
    unconditional pop, so they are harmless for workers that never saw
    the node.
    """
    updates: List[NodeUpdate] = []
    ever = set(ever_updated)
    for name, node in network.nodes.items():
        state = (tuple(node.fanins), node.cover)
        if name in ever or base_states.get(name) != state:
            updates.append(NodeUpdate(name, state[0], state[1]))
    gone = [name for name in base_states if name not in network.nodes]
    gone.extend(
        sorted(
            name
            for name in ever
            if name not in network.nodes and name not in base_states
        )
    )
    return DeltaRecord(generation, tuple(updates), tuple(gone))


def apply_record(network: Network, record: DeltaRecord) -> List[str]:
    """Apply one :class:`DeltaRecord` to a worker's network copy.

    Returns the updated node names — the dirty roots for the worker's
    incremental signature refresh (deletions and additions are
    discovered by the refresh itself).
    """
    roots: List[str] = []
    for update in record.updates:
        node = network.nodes.get(update.name)
        if node is None:
            # New nodes append in the shipped (creation) order; raw
            # insertion mirrors what unpickling a fresh snapshot does
            # — the diffed state is a consistent network, so per-node
            # validation would only re-prove that.
            network.nodes[update.name] = Node(
                update.name, list(update.fanins), update.cover
            )
        else:
            if (
                tuple(node.fanins) == update.fanins
                and node.cover == update.cover
            ):
                # A cumulative record re-lists every node ever shipped
                # changed; nodes already at the target state must not
                # become dirty roots (the incremental signature refresh
                # would resim their whole fanout cones for nothing).
                continue
            node.set_function(list(update.fanins), update.cover)
        roots.append(update.name)
    for name in record.deletions:
        network.nodes.pop(name, None)
    return roots


def apply_pending(
    network: Network,
    records: Sequence[DeltaRecord],
    current_generation: int,
) -> Tuple[int, List[str]]:
    """Apply every record newer than *current_generation*, in order.

    Returns ``(new_generation, touched_roots)``.  Safe to call with
    the full delta log on every batch — already-applied records are
    skipped, which is what lets a respawned worker replay from the
    base snapshot with the same call.
    """
    roots: List[str] = []
    generation = current_generation
    for record in sorted(records, key=lambda r: r.generation):
        if record.generation <= generation:
            continue
        roots.extend(apply_record(network, record))
        generation = record.generation
    return generation, roots
