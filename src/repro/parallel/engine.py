"""Speculative evaluation + deterministic commit for substitution.

The paper's substitution loop is embarrassingly parallel at the
candidate level: each (dividend, divisor) division attempt is an
independent read-only computation until one is accepted.  The engine
exploits that in two phases per substitution pass:

**Speculate.**  :func:`build_speculative_store` freezes the network (a
pickle is the snapshot), enumerates the same candidate pairs the serial
greedy loop would visit, shards them into batches, and evaluates every
pair against the snapshot on an executor
(:mod:`repro.parallel.executor`).  Workers apply the signature filter
themselves — the main process ships its
:meth:`~repro.sim.signature.SignatureSimulator.snapshot` along with the
network — so pruning cost parallelizes too.

**Commit.**  The serial loop in
:func:`~repro.core.substitution.substitute_pass` then runs unchanged,
except that before evaluating a pair it asks the
:class:`SpeculativeStore` for a still-valid speculative outcome:

* without global don't cares, a division's outcome is a pure function
  of the dividend's and divisor's ``(fanins, cover)`` state, so an
  outcome stays valid exactly while *both* nodes are byte-identical to
  the snapshot — any committed rewrite that touched either node
  invalidates it and the pair is re-evaluated against the mutated
  network;
* with global don't cares (or the BDD oracle), implications flow
  through the whole circuit, so *any* committed rewrite invalidates all
  remaining speculation for the pass.

Because commits are applied in the identical greedy order at identical
network states, the optimized network — and the BLIF it prints — is
byte-identical to a serial run (``tests/parallel/`` holds the
differential fuzz suite and the commit-protocol property tests).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.config import DivisionConfig
from repro.network.network import Network
from repro.obs.tracer import as_tracer
from repro.parallel.executor import make_executor
from repro.parallel.worker import PairOutcome, make_payload
from repro.resilience import inject

Pair = Tuple[str, str]

#: A node's division-relevant state: fanin names plus the (immutable)
#: cover object.  Two states compare equal iff every division outcome
#: involving the node is unchanged (non-GDC modes).
NodeState = Tuple[Tuple[str, ...], object]


def _node_state(network: Network, name: str) -> Optional[NodeState]:
    node = network.nodes.get(name)
    if node is None:
        return None
    return (tuple(node.fanins), node.cover)


class SpeculativeStore:
    """Snapshot-validity ledger for speculative division outcomes.

    Records the snapshot-time state of every node plus one
    :class:`PairOutcome` per evaluated pair; :meth:`lookup` returns an
    outcome only while it is provably identical to what a fresh
    evaluation on the live network would produce, and counts the
    reuse/invalidation traffic for the run statistics.
    """

    def __init__(self, network: Network, whole_network_sensitive: bool):
        #: With global don't cares / oracle mode every outcome depends
        #: on the whole network, so any commit invalidates everything.
        self.whole_network_sensitive = whole_network_sensitive
        self._states: Dict[str, NodeState] = {
            name: (tuple(node.fanins), node.cover)
            for name, node in network.nodes.items()
        }
        self._outcomes: Dict[Pair, PairOutcome] = {}
        self.reused = 0
        self.invalidated = 0

    def record(self, outcome: PairOutcome) -> None:
        self._outcomes[(outcome.f_name, outcome.d_name)] = outcome

    def __len__(self) -> int:
        return len(self._outcomes)

    def _unchanged(self, network: Network, name: str) -> bool:
        return self._states.get(name) == _node_state(network, name)

    def lookup(
        self,
        network: Network,
        f_name: str,
        d_name: str,
        mutated: bool,
    ) -> Optional[PairOutcome]:
        """The pair's speculative outcome, iff still valid.

        *mutated* is True once any rewrite has been committed since the
        snapshot (the caller tracks accepted rewrites); it is the
        whole-network invalidation trigger for GDC/oracle modes.
        ``None`` means the pair was never evaluated or its outcome is
        stale — either way the caller must evaluate against the live
        network, exactly as the serial loop would.
        """
        outcome = self._outcomes.get((f_name, d_name))
        if outcome is None:
            return None
        if self.whole_network_sensitive:
            valid = not mutated
        else:
            valid = self._unchanged(network, f_name) and self._unchanged(
                network, d_name
            )
        if not valid:
            self.invalidated += 1
            return None
        self.reused += 1
        return outcome


def enumerate_candidate_pairs(
    network: Network, config: DivisionConfig
) -> List[Pair]:
    """The (dividend, divisor) pairs a serial pass would start from.

    Mirrors the serial loop's enumeration on the snapshot; rewrites
    during the commit phase can change later dividends' candidate
    lists, in which case the missing pairs simply evaluate live.
    """
    # Imported here: repro.core.substitution lazily imports this module,
    # so a top-level import back into it would be circular.
    from repro.core.substitution import _candidate_divisors

    pairs: List[Pair] = []
    for node in network.internal_nodes():
        if node.is_constant() or node.cover is None:
            continue
        for d_name in _candidate_divisors(network, node.name, config):
            pairs.append((node.name, d_name))
    return pairs


def shard_pairs(
    pairs: Sequence[Pair], batch_size: int
) -> List[List[Pair]]:
    """Contiguous batches, never splitting one dividend's run of pairs
    across a batch boundary unless it alone exceeds *batch_size* (keeps
    the workers' per-dividend GDC circuit cache effective)."""
    batches: List[List[Pair]] = []
    current: List[Pair] = []
    i = 0
    while i < len(pairs):
        f_name = pairs[i][0]
        j = i
        while j < len(pairs) and pairs[j][0] == f_name:
            j += 1
        group = list(pairs[i:j])
        if current and len(current) + len(group) > batch_size:
            batches.append(current)
            current = []
        current.extend(group)
        while len(current) >= batch_size:
            batches.append(current[:batch_size])
            current = current[batch_size:]
        i = j
    if current:
        batches.append(current)
    return batches


class SpeculativeEngine:
    """Per-run driver: one speculate/commit cycle per substitution pass.

    Accumulates executor statistics across passes so
    :func:`~repro.core.substitution.substitute_network` can fold them
    into its :class:`SubstitutionStats` once at the end.
    """

    def __init__(self, config: DivisionConfig):
        self.config = config
        self.jobs = config.n_jobs
        self.batches = 0
        self.pairs_evaluated = 0
        self.reused = 0
        self.invalidated = 0
        #: Fault-containment traffic (see the executor's retry ladder).
        self.worker_faults = 0
        self.shards_redispatched = 0
        self.degraded_to_serial = 0
        #: Passes whose speculation was abandoned outright because the
        #: executor itself failed; the pass then evaluates every pair
        #: live (the serial path), so only throughput is lost.
        self.speculation_failures = 0
        self._stores: List[SpeculativeStore] = []

    def precompute(
        self, network: Network, sim_filter=None, tracer=None
    ) -> SpeculativeStore:
        """Freeze *network*, evaluate all candidate pairs, build a store.

        With an enabled *tracer*, the enumeration and the speculative
        evaluation record ``enumerate``/``speculate`` spans, and every
        worker's locally-recorded spans are absorbed into the main
        trace (tagged with the worker's ``proc`` label).
        """
        tracer = as_tracer(tracer)
        config = self.config
        store = SpeculativeStore(
            network,
            whole_network_sensitive=config.global_dc or config.oracle_dc,
        )
        self._stores.append(store)
        with tracer.span("enumerate", scope="speculative") as enum_span:
            pairs = enumerate_candidate_pairs(network, config)
            enum_span.annotate(pairs=len(pairs))
        if not pairs:
            return store
        sim_snapshot = (
            sim_filter.sim.snapshot() if sim_filter is not None else None
        )
        payload = make_payload(
            network, config, sim_snapshot, trace=tracer.enabled
        )
        batches = shard_pairs(pairs, config.batch_size)
        with tracer.span(
            "speculate", batches=len(batches), pairs=len(pairs)
        ) as spec_span:
            try:
                # The with-block guarantees the pool is shut down
                # (queued futures cancelled) even when evaluation
                # raises, so an engine error can never leak live
                # worker processes.
                with make_executor(
                    payload,
                    config.n_jobs,
                    config.parallel_backend,
                    injection=inject.active(),
                    max_retries=config.max_shard_retries,
                ) as executor:
                    outcomes = executor.evaluate(batches)
                    self.jobs = getattr(executor, "workers", config.n_jobs)
                    self.worker_faults += executor.worker_faults
                    self.shards_redispatched += executor.shards_redispatched
                    self.degraded_to_serial += executor.degraded_to_serial
                    tracer.absorb(executor.trace_events)
            except Exception:
                # Final containment rung: speculation for this pass is
                # abandoned; the store stays empty and substitute_pass
                # evaluates every pair live, exactly as a serial run.
                self.speculation_failures += 1
                self.worker_faults += 1
                self.degraded_to_serial += 1
                spec_span.annotate(failed=True)
                return store
        for outcome in outcomes:
            store.record(outcome)
        self.batches += len(batches)
        self.pairs_evaluated += len(outcomes)
        return store

    def collect(self) -> None:
        """Fold per-store reuse counters into the engine totals."""
        for store in self._stores:
            self.reused += store.reused
            self.invalidated += store.invalidated
            store.reused = 0
            store.invalidated = 0
