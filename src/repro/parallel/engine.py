"""Speculative evaluation + deterministic commit for substitution.

The paper's substitution loop is embarrassingly parallel at the
candidate level: each (dividend, divisor) division attempt is an
independent read-only computation until one is accepted.  The engine
exploits that with a **persistent worker-pool runtime** — one pool per
:func:`~repro.core.substitution.substitute_network` run — and two
overlapping phases per substitution pass:

**Speculate.**  On the first pass :meth:`SpeculativeEngine.precompute`
freezes the network into a base payload (shipped once — signature
bitmaps ride in a ``multiprocessing.shared_memory`` segment when
available), spawns the executor, and enumerates the same candidate
pairs the serial greedy loop would visit.  From then on only
:class:`~repro.parallel.delta.DeltaRecord` lists of the committed
rewrites ever cross the process boundary — at every pass start *and*
mid-pass, right before each shard submitted after a commit — and the
workers replay them onto their resident copies, refreshing their
signatures incrementally.  The pairs are sharded into batches and
**pipelined**: the :class:`ShardDispatcher` keeps a window of shards
in flight and reaps each one lazily, the first time the commit loop
asks about one of its pairs — worker evaluation overlaps main-process
commits instead of meeting them at a pass-start barrier, and because
later shards are evaluated against the freshly-shipped state, their
outcomes survive the commits that would have invalidated pass-start
speculation.

**Commit.**  The serial loop in
:func:`~repro.core.substitution.substitute_pass` then runs unchanged,
except that before evaluating a pair it asks the
:class:`SpeculativeStore` for a still-valid speculative outcome:

* without global don't cares, a division's outcome is a pure function
  of the dividend's and divisor's ``(fanins, cover)`` state, so an
  outcome stays valid exactly while *both* nodes are byte-identical to
  what the worker evaluated — the pass snapshot, or the submit-time
  state for shards shipped after a mid-pass delta — and any committed
  rewrite that touched either node invalidates it, so the pair is
  re-evaluated against the mutated network;
* with global don't cares (or the BDD oracle), implications flow
  through the whole circuit, so *any* committed rewrite invalidates all
  remaining speculation for the pass (and stops further dispatch).

Determinism note: shards are submitted and reaped only at points the
greedy loop itself reaches (the pass-start window fill, the blocking
lookup of a pair's shard, and the refill right after) — never on
worker-completion events — so every counter this module maintains is a
pure function of the input network and config, and the regression
gate compares them exactly.

Because commits are applied in the identical greedy order at identical
network states, the optimized network — and the BLIF it prints — is
byte-identical to a serial run (``tests/parallel/`` holds the
differential fuzz suite and the commit-protocol property tests).
"""

from __future__ import annotations

import os
import pickle
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.core.config import DivisionConfig
from repro.network.network import Network
from repro.obs.tracer import as_tracer
from repro.parallel.delta import (
    DeltaRecord,
    capture_states,
    cumulative_record,
    diff_network,
)
from repro.parallel.executor import make_executor, resolve_backend
from repro.parallel.worker import PairOutcome, make_payload
from repro.resilience import inject

Pair = Tuple[str, str]

#: A node's division-relevant state: fanin names plus the (immutable)
#: cover object.  Two states compare equal iff every division outcome
#: involving the node is unchanged (non-GDC modes).
NodeState = Tuple[Tuple[str, ...], object]

#: Prefix of every shared-memory segment the engine creates, so the
#: hygiene tests can scan ``/dev/shm`` for leaks.
SHM_PREFIX = "repro_sig_"


def _node_state(network: Network, name: str) -> Optional[NodeState]:
    node = network.nodes.get(name)
    if node is None:
        return None
    return (tuple(node.fanins), node.cover)


class SpeculativeStore:
    """Snapshot-validity ledger for speculative division outcomes.

    Records the snapshot-time state of every node plus one
    :class:`PairOutcome` per evaluated pair; :meth:`lookup` returns an
    outcome only while it is provably identical to what a fresh
    evaluation on the live network would produce, and counts the
    reuse/invalidation traffic for the run statistics.

    With a :class:`ShardDispatcher` attached, outcomes materialize
    lazily: a lookup first lets the dispatcher pull the pair's shard in
    (blocking on the pool only for that shard).  Pairs the dispatcher
    pruned at submit time — their endpoints were already rewritten, so
    the snapshot evaluation could never be served — are *stale
    tombstones*: they count as invalidations, exactly as their evaluated
    outcome would have.
    """

    def __init__(self, network: Network, whole_network_sensitive: bool):
        #: With global don't cares / oracle mode every outcome depends
        #: on the whole network, so any commit invalidates everything.
        self.whole_network_sensitive = whole_network_sensitive
        self._states: Dict[str, NodeState] = {
            name: (tuple(node.fanins), node.cover)
            for name, node in network.nodes.items()
        }
        self._outcomes: Dict[Pair, PairOutcome] = {}
        self._stale: Set[Pair] = set()
        #: Submit-time endpoint states for pairs shipped after mid-pass
        #: deltas: the outcome is valid iff the live endpoints still
        #: match these (instead of the pass-start snapshot).
        self._expected: Dict[Pair, Tuple[NodeState, NodeState]] = {}
        self._dispatcher: Optional["ShardDispatcher"] = None
        self.reused = 0
        self.invalidated = 0

    def attach(self, dispatcher: Optional["ShardDispatcher"]) -> None:
        self._dispatcher = dispatcher

    def record(self, outcome: PairOutcome) -> None:
        self._outcomes[(outcome.f_name, outcome.d_name)] = outcome

    def mark_stale(self, pair: Pair) -> None:
        self._stale.add(pair)

    def expect(
        self, pair: Pair, states: Tuple[NodeState, NodeState]
    ) -> None:
        """Pin *pair*'s validity to *states* (its endpoints as the
        worker will see them) rather than the pass-start snapshot."""
        self._expected[pair] = states

    def __len__(self) -> int:
        return len(self._outcomes)

    def _unchanged(self, network: Network, name: str) -> bool:
        return self._states.get(name) == _node_state(network, name)

    def endpoints_unchanged(self, network: Network, pair: Pair) -> bool:
        return self._unchanged(network, pair[0]) and self._unchanged(
            network, pair[1]
        )

    def lookup(
        self,
        network: Network,
        f_name: str,
        d_name: str,
        mutated: bool,
    ) -> Optional[PairOutcome]:
        """The pair's speculative outcome, iff still valid.

        *mutated* is True once any rewrite has been committed since the
        snapshot (the caller tracks accepted rewrites); it is the
        whole-network invalidation trigger for GDC/oracle modes.
        ``None`` means the pair was never evaluated or its outcome is
        stale — either way the caller must evaluate against the live
        network, exactly as the serial loop would.
        """
        pair = (f_name, d_name)
        if self._dispatcher is not None:
            self._dispatcher.ensure(network, pair, mutated)
        outcome = self._outcomes.get(pair)
        if outcome is None:
            if pair in self._stale:
                self.invalidated += 1
            return None
        if self.whole_network_sensitive:
            valid = not mutated
        else:
            expected = self._expected.get(pair)
            if expected is not None:
                valid = expected == (
                    _node_state(network, f_name),
                    _node_state(network, d_name),
                )
            else:
                valid = self._unchanged(
                    network, f_name
                ) and self._unchanged(network, d_name)
        if not valid:
            self.invalidated += 1
            return None
        self.reused += 1
        return outcome


def enumerate_candidate_pairs(
    network: Network, config: DivisionConfig
) -> List[Pair]:
    """The (dividend, divisor) pairs a serial pass would start from.

    Mirrors the serial loop's enumeration on the snapshot; rewrites
    during the commit phase can change later dividends' candidate
    lists, in which case the missing pairs simply evaluate live.
    """
    # Imported here: repro.core.substitution lazily imports this module,
    # so a top-level import back into it would be circular.
    from repro.core.substitution import _candidate_divisors

    pairs: List[Pair] = []
    for node in network.internal_nodes():
        if node.is_constant() or node.cover is None:
            continue
        for d_name in _candidate_divisors(network, node.name, config):
            pairs.append((node.name, d_name))
    return pairs


def shard_pairs(
    pairs: Sequence[Pair], batch_size: int
) -> List[List[Pair]]:
    """Contiguous batches, never splitting one dividend's run of pairs
    across a batch boundary unless it alone exceeds *batch_size* (keeps
    the workers' per-dividend GDC circuit cache effective)."""
    batches: List[List[Pair]] = []
    current: List[Pair] = []
    i = 0
    while i < len(pairs):
        f_name = pairs[i][0]
        j = i
        while j < len(pairs) and pairs[j][0] == f_name:
            j += 1
        group = list(pairs[i:j])
        if current and len(current) + len(group) > batch_size:
            batches.append(current)
            current = []
        current.extend(group)
        while len(current) >= batch_size:
            batches.append(current[:batch_size])
            current = current[batch_size:]
        i = j
    if current:
        batches.append(current)
    return batches


class ShardDispatcher:
    """Pipelined shard dispatch for one substitution pass.

    Keeps up to ``window = max(2, n_jobs * pipeline_depth)`` shards in
    flight on the engine's persistent executor and reaps them lazily:
    :meth:`ensure` blocks only until the shard holding the requested
    pair is done, then refills the window, so workers keep evaluating
    while the main process commits.  Dispatch points are all reached by
    the greedy loop itself, which is what keeps the counters
    deterministic (see the module doc).

    Mid-pass delta shipping: once the commit loop has rewritten
    anything, every later shard submission first ships a
    :class:`~repro.parallel.delta.DeltaRecord` of the commits so far,
    so the resident workers evaluate those shards against the *current*
    network rather than the pass-start snapshot.  Each such pair's
    expected endpoint states are recorded in the store
    (:meth:`SpeculativeStore.expect`): its outcome is served exactly
    while the live endpoints still match what the worker saw —
    speculation stays useful deep into a heavily-committing pass
    instead of dying with the first rewrites.  Pairs that are no longer
    evaluable at submit time (an endpoint was deleted or collapsed to a
    constant) become stale tombstones instead of wasted worker CPU.  In
    whole-network-sensitive mode nothing can be re-validated pair-wise,
    so the first commit kills *all* remaining speculation and
    undispatched shards are tombstoned wholesale.
    """

    def __init__(
        self,
        engine: "SpeculativeEngine",
        store: SpeculativeStore,
        batches: List[List[Pair]],
        tracer,
    ):
        self.engine = engine
        self.store = store
        self.batches = batches
        self.tracer = tracer
        self._shard_of: Dict[Pair, int] = {}
        for index, batch in enumerate(batches):
            for pair in batch:
                self._shard_of[pair] = index
        self._next = 0
        self._submitted: Set[int] = set()
        self._reaped: Set[int] = set()
        self._inflight = 0
        config = engine.config
        if getattr(engine.executor, "concurrent", True):
            self.window = max(2, config.n_jobs * config.pipeline_depth)
        else:
            # The in-process backend evaluates synchronously at submit
            # time: there is nothing to overlap, and a deeper window
            # only makes its speculation staler.  Just-in-time shards
            # see every commit (the delta ships right before each
            # evaluation), so nearly every outcome is served.
            self.window = 1
        #: Commits observed this pass vs. commits already covered by a
        #: delta ship: a submission only pays for a network diff when
        #: the counts differ (``mutated`` arrives as the commit count).
        self._mutations_seen = 0
        self._mutations_shipped = 0
        #: First commit observed in whole-network-sensitive mode: all
        #: speculation is dead, stop dispatching.
        self.dead = False
        #: Executor failed beyond containment: speculation abandoned
        #: for the pass, every remaining lookup evaluates live.
        self.failed = False

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------
    def prime(self) -> None:
        """Fill the pipeline window at pass start."""
        self._fill()

    def _fill(self) -> None:
        while (
            self._inflight < self.window
            and self._next < len(self.batches)
            and not self.failed
        ):
            self._submit_next()

    def _submit_next(self) -> None:
        index = self._next
        self._next += 1
        batch = self.batches[index]
        engine, store = self.engine, self.store
        if self.dead:
            # Sensitive store after a commit: the outcome could never
            # be served, so the whole shard becomes tombstones (each
            # later lookup counts one invalidation, exactly as its
            # evaluated-then-invalidated outcome would have).
            for pair in batch:
                store.mark_stale(pair)
            engine.pairs_stale_skipped += len(batch)
            self._reaped.add(index)
            return
        if store.whole_network_sensitive:
            live = list(batch)
        else:
            if self._mutations_seen > self._mutations_shipped:
                # Ship the commits so far: the workers evaluate this
                # shard against the current network, and the store pins
                # each pair's validity to its submit-time states.
                engine._ship_delta(engine.network, self.tracer)
                self._mutations_shipped = self._mutations_seen
            live = []
            for pair in batch:
                states = engine.evaluable_states(pair)
                if states is None:
                    # An endpoint was deleted or collapsed to a
                    # constant: the worker could not evaluate it, and
                    # the serial loop would re-enumerate anyway.
                    store.mark_stale(pair)
                    engine.pairs_stale_skipped += 1
                else:
                    live.append(pair)
                    if self._mutations_seen:
                        store.expect(pair, states)
        if not live:
            self._reaped.add(index)
            return
        engine.note_batch_bytes(live)
        engine.executor.submit(index, live, deltas=engine.delta_log)
        engine.batches += 1
        self._submitted.add(index)
        self._inflight += 1

    # ------------------------------------------------------------------
    # Lazy reaping
    # ------------------------------------------------------------------
    def ensure(self, network: Network, pair: Pair, mutated: bool) -> None:
        """Make *pair*'s outcome (or tombstone) present in the store,
        dispatching and reaping whatever that takes."""
        if self.failed:
            return
        if mutated:
            self._mutations_seen = max(self._mutations_seen, int(mutated))
            if self.store.whole_network_sensitive and not self.dead:
                self.dead = True
        index = self._shard_of.get(pair)
        if index is None or index in self._reaped:
            return
        try:
            while self._next <= index:
                self._submit_next()
            if index in self._submitted and index not in self._reaped:
                self._reap(index)
                self._fill()
        except Exception:
            self._abandon()

    def _reap(self, index: int) -> None:
        engine = self.engine
        wait_start = time.perf_counter()
        outcomes = engine.executor.result(index)
        engine.phase_seconds["dispatch_wait"] += (
            time.perf_counter() - wait_start
        )
        self._reaped.add(index)
        self._inflight -= 1
        for outcome in outcomes:
            self.store.record(outcome)
        engine.pairs_evaluated += len(outcomes)
        engine.absorb_worker_trace(self.tracer)

    def finish(self) -> None:
        """Drain in-flight shards at pass end (never submits more)."""
        pendings = sorted(self._submitted - self._reaped)
        try:
            for index in pendings:
                self._reap(index)
        except Exception:
            self._abandon()
        self.store.attach(None)

    def _abandon(self) -> None:
        """Engine-level containment: the executor failed under us.

        Outcomes already recorded stay (they are genuinely valid
        snapshot evaluations); everything else evaluates live.  The
        executor is torn down — the next pass re-establishes it from a
        fresh base snapshot.
        """
        if self.failed:
            return
        self.failed = True
        engine = self.engine
        engine.speculation_failures += 1
        engine.worker_faults += 1
        engine.degraded_to_serial += 1
        engine.teardown_executor()
        self._submitted.clear()
        self._inflight = 0


class SpeculativeEngine:
    """Per-run driver of the persistent pool: spawned on the first
    pass, it keeps the executor, the shared-memory signature segment,
    the shipped-state map and the delta log alive across passes, and
    accumulates executor statistics so
    :func:`~repro.core.substitution.substitute_network` can fold them
    into its :class:`SubstitutionStats` once at the end.

    Lifecycle: ``precompute`` per pass → ``finish_pass`` per pass →
    ``close`` exactly once (the caller holds it in a ``finally``), which
    shuts the pool down and unlinks the shared-memory segment.
    """

    def __init__(self, config: DivisionConfig):
        self.config = config
        self.jobs = config.n_jobs
        self.batches = 0
        self.pairs_evaluated = 0
        self.reused = 0
        self.invalidated = 0
        #: Fault-containment traffic (see the executor's retry ladder).
        self.worker_faults = 0
        self.shards_redispatched = 0
        self.degraded_to_serial = 0
        #: Liveness traffic: heartbeat marks reaped from shard metas
        #: and watchdog-flagged stalls (``health.*`` namespace).
        self.heartbeats = 0
        self.stalls = 0
        #: Passes whose speculation was abandoned outright because the
        #: executor itself failed; the pass then evaluates every pair
        #: live (the serial path), so only throughput is lost.
        self.speculation_failures = 0
        #: Delta-protocol traffic: records shipped to the pool and the
        #: node rewrites they carried.
        self.deltas_shipped = 0
        self.delta_nodes = 0
        #: Pairs pruned at submit time because a commit already
        #: rewrote one of their endpoints (stale tombstones).
        self.pairs_stale_skipped = 0
        #: Wire accounting: bytes of the one-time base payload and the
        #: summed per-shard payloads (pair lists + delta log).
        self.snapshot_bytes = 0
        self.batch_bytes = 0
        #: Per-phase wall seconds (snapshot/ship, worker build, worker
        #: evaluate, main-process wait on shard results).
        self.phase_seconds: Dict[str, float] = {
            "snapshot_ship": 0.0,
            "worker_build": 0.0,
            "evaluate": 0.0,
            "dispatch_wait": 0.0,
        }
        self.network: Optional[Network] = None
        self.executor = None
        self._shm = None
        self._shm_serial = 0
        #: States as of the last ship (change detection + per-ship
        #: node counting) and as of the base snapshot (what respawned
        #: workers start from — the cumulative record diffs against
        #: this).
        self._shipped: Optional[Dict[str, NodeState]] = None
        self._base_states: Optional[Dict[str, NodeState]] = None
        #: Names ever shipped inside an update: a worker behind the
        #: current generation may hold a stale state for any of them.
        self._ever_updated: Set[str] = set()
        self._cumulative: Optional[DeltaRecord] = None
        self._cumulative_bytes = 0
        self._generation = 0
        self._dispatcher: Optional[ShardDispatcher] = None
        self._stores: List[SpeculativeStore] = []

    # ------------------------------------------------------------------
    # Persistent-pool plumbing
    # ------------------------------------------------------------------
    @property
    def delta_log(self) -> Tuple[DeltaRecord, ...]:
        """What rides with every shard: one cumulative record (or
        nothing before the first ship)."""
        if self._cumulative is None:
            return ()
        return (self._cumulative,)

    def _establish(self, network: Network, sim_filter, tracer) -> None:
        """First pass (or after a teardown): ship the base snapshot and
        spawn the persistent executor."""
        config = self.config
        sim_ref = None
        if sim_filter is not None:
            sim_ref = self._share_signatures(sim_filter.sim, tracer)
            if sim_ref is None:
                sim_ref = sim_filter.sim.snapshot()
        payload = make_payload(
            network,
            config,
            sim_ref,
            trace=tracer.enabled,
            heartbeat_dir=config.heartbeat_dir,
        )
        self.snapshot_bytes += len(payload)
        self.executor = make_executor(
            payload,
            config.n_jobs,
            config.parallel_backend,
            injection=inject.active(),
            max_retries=config.max_shard_retries,
            stall_timeout=config.stall_timeout_seconds,
        )
        self._shipped = capture_states(network)
        self._base_states = dict(self._shipped)
        self._ever_updated = set()
        self._cumulative = None
        self._cumulative_bytes = 0
        self._generation = 0

    def _share_signatures(self, sim, tracer):
        """Try to park the signature bitmaps in shared memory; ``None``
        falls back to the inline snapshot dict."""
        if not self.config.share_signatures:
            return None
        if resolve_backend(self.config.parallel_backend) != "process":
            # In-process backends read the parent's memory anyway; a
            # segment would only add lifecycle risk.
            return None
        self._release_shm()
        self._shm_serial += 1
        name = f"{SHM_PREFIX}{os.getpid()}_{self._shm_serial}"
        try:
            with tracer.span("shm_publish", name=name) as span:
                shm, ref = sim.to_shared(name)
                span.annotate(bytes=shm.size, nodes=len(ref.names))
        except (ImportError, OSError):
            return None
        self._shm = shm
        return ref

    def _release_shm(self) -> None:
        shm, self._shm = self._shm, None
        if shm is None:
            return
        try:
            shm.close()
            shm.unlink()
        except FileNotFoundError:
            pass

    def teardown_executor(self) -> None:
        """Shut the executor down and release the segment; the next
        pass starts over from a fresh base snapshot."""
        executor, self.executor = self.executor, None
        if executor is not None:
            self._fold_executor(executor)
            executor.close(cancel=True)
        self._release_shm()
        self._shipped = None
        self._base_states = None
        self._ever_updated = set()
        self._cumulative = None
        self._cumulative_bytes = 0

    def _fold_executor(self, executor) -> None:
        """Move the executor's counters into the engine (idempotent —
        the executor's own counters are zeroed)."""
        # The *requested* job count — backend resolution ("auto" on a
        # single-core host picks the in-process engine) must not make
        # the reported stats machine-dependent.
        self.jobs = self.config.n_jobs
        self.worker_faults += executor.worker_faults
        self.shards_redispatched += executor.shards_redispatched
        self.degraded_to_serial += executor.degraded_to_serial
        self.heartbeats += executor.heartbeats
        self.stalls += executor.stalls
        executor.worker_faults = 0
        executor.shards_redispatched = 0
        executor.degraded_to_serial = 0
        executor.heartbeats = 0
        executor.stalls = 0
        self.phase_seconds["worker_build"] += executor.worker_build_seconds
        self.phase_seconds["evaluate"] += executor.evaluate_seconds
        executor.worker_build_seconds = 0.0
        executor.evaluate_seconds = 0.0

    def absorb_worker_trace(self, tracer) -> None:
        executor = self.executor
        if executor is None or not executor.trace_events:
            return
        tracer.absorb(executor.trace_events)
        executor.trace_events = []

    def evaluable_states(
        self, pair: Pair
    ) -> Optional[Tuple[NodeState, NodeState]]:
        """The pair's current endpoint states iff a worker can still
        evaluate it: both nodes present, non-constant, with covers."""
        network = self.network
        f = network.nodes.get(pair[0])
        d = network.nodes.get(pair[1])
        if (
            f is None
            or d is None
            or f.cover is None
            or d.cover is None
            or f.is_constant()
            or d.is_constant()
        ):
            return None
        return (
            (tuple(f.fanins), f.cover),
            (tuple(d.fanins), d.cover),
        )

    def note_batch_bytes(self, pairs: Sequence[Pair]) -> None:
        """Account one shard's wire payload: its pair list plus the
        cumulative delta record riding along (record bytes are
        measured once per ship, not per shard)."""
        self.batch_bytes += (
            len(pickle.dumps(pairs, pickle.HIGHEST_PROTOCOL))
            + self._cumulative_bytes
        )

    # ------------------------------------------------------------------
    # Per-pass cycle
    # ------------------------------------------------------------------
    def precompute(
        self, network: Network, sim_filter=None, tracer=None
    ) -> SpeculativeStore:
        """Start one pass: ship what changed, prime the pipeline, and
        return the pass's lazily-filling store.

        With an enabled *tracer*, the enumeration and the speculative
        dispatch record ``enumerate``/``speculate`` spans, and every
        worker's locally-recorded spans are absorbed into the main
        trace (tagged with the worker's ``proc`` label) as shards are
        reaped.
        """
        tracer = as_tracer(tracer)
        config = self.config
        self.network = network
        store = SpeculativeStore(
            network,
            whole_network_sensitive=config.global_dc or config.oracle_dc,
        )
        self._stores.append(store)
        with tracer.span("enumerate", scope="speculative") as enum_span:
            pairs = enumerate_candidate_pairs(network, config)
            enum_span.annotate(pairs=len(pairs))
        if not pairs:
            return store
        batches = shard_pairs(pairs, config.batch_size)
        with tracer.span(
            "speculate", batches=len(batches), pairs=len(pairs)
        ) as spec_span:
            try:
                ship_start = time.perf_counter()
                if self.executor is None:
                    self._establish(network, sim_filter, tracer)
                else:
                    self._ship_delta(network, tracer)
                self.phase_seconds["snapshot_ship"] += (
                    time.perf_counter() - ship_start
                )
                dispatcher = ShardDispatcher(self, store, batches, tracer)
                store.attach(dispatcher)
                self._dispatcher = dispatcher
                dispatcher.prime()
            except Exception:
                # Final containment rung: speculation for this pass is
                # abandoned; the store stays empty and substitute_pass
                # evaluates every pair live, exactly as a serial run.
                self.speculation_failures += 1
                self.worker_faults += 1
                self.degraded_to_serial += 1
                spec_span.annotate(failed=True)
                store.attach(None)
                self._dispatcher = None
                self.teardown_executor()
                return store
            spec_span.annotate(
                window=dispatcher.window, generation=self._generation
            )
        return store

    def _ship_delta(self, network: Network, tracer) -> None:
        """Refresh the cumulative delta if the live network moved past
        what the pool last saw.

        The fresh diff (against the last-shipped states) detects the
        change and counts the newly rewritten nodes; what actually
        rides with the shards is the *cumulative* record — live state
        vs. the base snapshot, correct for a worker at any shipped
        generation (see :func:`~repro.parallel.delta.cumulative_record`).
        """
        fresh, states = diff_network(
            network, self._shipped, self._generation + 1
        )
        if fresh.node_count() == 0:
            return
        record = cumulative_record(
            network, self._base_states, self._ever_updated, fresh.generation
        )
        with tracer.span(
            "delta_ship",
            generation=record.generation,
            nodes=fresh.node_count(),
            cumulative_nodes=record.node_count(),
        ):
            self._generation = record.generation
            self._shipped = states
            self._cumulative = record
            self._ever_updated.update(u.name for u in record.updates)
            self._cumulative_bytes = len(
                pickle.dumps(record, pickle.HIGHEST_PROTOCOL)
            )
            self.deltas_shipped += 1
            self.delta_nodes += fresh.node_count()

    def finish_pass(self, store: SpeculativeStore) -> None:
        """End one pass: drain in-flight shards, detach the store."""
        dispatcher, self._dispatcher = self._dispatcher, None
        if dispatcher is not None:
            dispatcher.finish()
        else:
            store.attach(None)
        if self.executor is not None:
            self._fold_executor(self.executor)

    def close(self) -> None:
        """Run teardown: shut the pool down, unlink shared memory.

        Idempotent; the caller invokes it from a ``finally`` so a
        budget stop or an engine error can never leak worker processes
        or a ``/dev/shm`` segment."""
        self._dispatcher = None
        self.teardown_executor()

    def collect(self) -> None:
        """Fold per-store reuse counters into the engine totals."""
        for store in self._stores:
            self.reused += store.reused
            self.invalidated += store.invalidated
            store.reused = 0
            store.invalidated = 0
