"""A small LRU cache with hit/miss accounting.

Used by the signature filter for cube-signature and containment-verdict
queries.  Entries are keyed on ``(node name, generation, ...)`` tuples
(see :mod:`repro.sim.filter`), so invalidation on network mutation is
handled by bumping the owning node's generation — stale keys simply
stop matching and age out of the LRU order.  :meth:`clear` is the
explicit whole-cache invalidation hatch.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class LRUCache:
    """Bounded mapping with least-recently-used eviction."""

    __slots__ = ("capacity", "hits", "misses", "_data")

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable, default: Any = None) -> Optional[Any]:
        """Look up *key*, counting a hit or miss and refreshing LRU order."""
        try:
            value = self._data[key]
        except KeyError:
            self.misses += 1
            return default
        self._data.move_to_end(key)
        self.hits += 1
        return value

    def put(self, key: Hashable, value: Any) -> None:
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.capacity:
            self._data.popitem(last=False)

    def clear(self) -> None:
        """Explicitly invalidate every entry (counters are kept)."""
        self._data.clear()
