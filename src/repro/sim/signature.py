"""Incremental bit-parallel simulation signatures for a whole network.

A *signature* is one Python integer per signal packing the signal's
value under ``num_patterns`` random primary-input patterns (bit ``k``
of the integer = value under pattern ``k`` — the same positional
bitmask idiom as :mod:`repro.twolevel.cube`).  Signatures give a cheap,
sound one-way test for the containment relations Boolean division
rests on: a pattern where cube ``c`` evaluates 1 while cover ``g``
evaluates 0 *proves* no cube of ``g`` contains ``c``; agreement on all
sampled patterns proves nothing (and triggers the exact check).

Per-PI patterns are derived deterministically from ``(seed, PI name)``,
so an incrementally maintained simulator and a from-scratch one over
the same network agree bit-for-bit — the invariant the test suite
checks after every mutation.

:meth:`SignatureSimulator.refresh` maintains the signatures
incrementally: after a network mutation only the dirty nodes and the
part of their transitive fanout whose values actually change are
re-evaluated (propagation stops at nodes whose packed value is
unchanged).
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, Iterable, List, Tuple

from repro.network.network import Network, eval_cover_packed


@dataclasses.dataclass(frozen=True)
class SharedSignatureRef:
    """Picklable handle to signature bitmaps parked in shared memory.

    The bitmaps — one ``patterns``-bit integer per signal, the bulk of
    a :meth:`SignatureSimulator.snapshot` — live in a POSIX shared
    memory segment (``multiprocessing.shared_memory``); this ref
    carries only the segment name plus the small per-node metadata, so
    shipping a simulator to a pool of workers costs one buffer write
    total instead of one pickled copy per worker.

    Lifecycle contract (see :meth:`SignatureSimulator.to_shared` /
    :meth:`SignatureSimulator.from_shared`): the publishing process
    *creates* the segment and must eventually ``unlink()`` it exactly
    once; consumers *attach*, read, and ``close()`` — never unlink.
    """

    shm_name: str
    patterns: int
    seed: int
    generation: int
    names: Tuple[str, ...]
    node_generation: Tuple[int, ...]
    po_baseline: Dict[str, int]

    def byte_width(self) -> int:
        """Bytes per signature record in the segment."""
        return (self.patterns + 7) // 8


class SignatureSimulator:
    """Packed-pattern signatures of every signal, kept incrementally.

    ``node_generation[name]`` is bumped every time *name* is
    re-evaluated (whether or not its packed value changed — its cover
    may have), so derived per-cube caches keyed on
    ``(name, node_generation[name])`` are invalidated exactly when they
    can be stale.  ``generation`` is the global mutation counter.
    """

    def __init__(self, network: Network, patterns: int = 256, seed: int = 1):
        if patterns < 1:
            raise ValueError("patterns must be positive")
        self.network = network
        self.num_patterns = patterns
        self.seed = seed
        self.mask = (1 << patterns) - 1
        self.signatures: Dict[str, int] = {}
        self.node_generation: Dict[str, int] = {}
        self.generation = 0
        #: Total node re-evaluations performed by :meth:`refresh`.
        self.nodes_resimulated = 0
        self._simulate_all()
        self._po_baseline = {
            po: self.signatures[po] for po in network.pos
        }

    # ------------------------------------------------------------------
    # Pattern generation / evaluation
    # ------------------------------------------------------------------
    def _pi_pattern(self, name: str) -> int:
        """Deterministic packed stimulus for one PI (order-independent)."""
        rng = random.Random(f"sig:{self.seed}:{name}")
        return rng.getrandbits(self.num_patterns)

    def _eval_node(self, node) -> int:
        fanin_sigs = [self.signatures[f] for f in node.fanins]
        return eval_cover_packed(node.cover, fanin_sigs, self.mask)

    def _simulate_all(self) -> None:
        self.signatures.clear()
        for name in self.network.topo_order():
            node = self.network.nodes[name]
            if node.is_pi:
                self.signatures[name] = self._pi_pattern(name)
            else:
                self.signatures[name] = self._eval_node(node)
            self.node_generation[name] = self.generation

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def signature(self, name: str) -> int:
        return self.signatures[name]

    def po_signatures_clean(self) -> bool:
        """True while every PO signature matches its pre-optimization
        baseline.  False *proves* the network changed function on a
        sampled pattern (used as the acceptance-check pre-pass)."""
        return all(
            self.signatures.get(po) == self._po_baseline.get(po)
            for po in self.network.pos
        )

    def stimulus(self) -> Dict[str, int]:
        """The PI patterns, in :meth:`Network.simulate` format."""
        return {
            pi: self.signatures[pi] for pi in self.network.pis
        }

    # ------------------------------------------------------------------
    # Snapshot shipping (parallel workers)
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """A picklable snapshot of the simulator's current state.

        Used to ship the signatures of a frozen network to process-pool
        workers (:mod:`repro.parallel.worker`) without each worker
        re-simulating from scratch.  Plain ints and dicts only.
        """
        return {
            "patterns": self.num_patterns,
            "seed": self.seed,
            "signatures": dict(self.signatures),
            "node_generation": dict(self.node_generation),
            "generation": self.generation,
            "po_baseline": dict(self._po_baseline),
        }

    @classmethod
    def from_snapshot(
        cls, network: Network, snapshot: Dict[str, object]
    ) -> "SignatureSimulator":
        """Rebuild a simulator over *network* from :meth:`snapshot`.

        *network* must be the same network (typically an unpickled
        copy) the snapshot was taken from; signatures are restored
        verbatim instead of being re-simulated, so the result agrees
        bit-for-bit with the originating simulator.
        """
        sim = cls.__new__(cls)
        sim.network = network
        sim.num_patterns = snapshot["patterns"]
        sim.seed = snapshot["seed"]
        sim.mask = (1 << sim.num_patterns) - 1
        sim.signatures = dict(snapshot["signatures"])
        sim.node_generation = dict(snapshot["node_generation"])
        sim.generation = snapshot["generation"]
        sim.nodes_resimulated = 0
        sim._po_baseline = dict(snapshot["po_baseline"])
        return sim

    # ------------------------------------------------------------------
    # Shared-memory shipping (persistent worker pool)
    # ------------------------------------------------------------------
    def to_shared(self, name: str):
        """Publish the signature bitmaps into a shared memory segment.

        Returns ``(shm, ref)``: the live
        :class:`multiprocessing.shared_memory.SharedMemory` (the caller
        owns it and must ``close()`` + ``unlink()`` it when the run
        ends — typically from the engine's ``close()`` inside a
        ``finally``) and the picklable :class:`SharedSignatureRef` to
        put on the wire.  Raises ``OSError``/``ImportError`` where
        shared memory is unavailable; callers fall back to the inline
        :meth:`snapshot` dict.
        """
        from multiprocessing import shared_memory

        names = tuple(self.signatures)
        width = (self.num_patterns + 7) // 8
        size = max(1, width * len(names))
        shm = shared_memory.SharedMemory(name=name, create=True, size=size)
        try:
            buf = shm.buf
            for i, node_name in enumerate(names):
                buf[i * width:(i + 1) * width] = self.signatures[
                    node_name
                ].to_bytes(width, "little")
        except BaseException:
            shm.close()
            shm.unlink()
            raise
        ref = SharedSignatureRef(
            shm_name=shm.name,
            patterns=self.num_patterns,
            seed=self.seed,
            generation=self.generation,
            names=names,
            node_generation=tuple(
                self.node_generation[n] for n in names
            ),
            po_baseline=dict(self._po_baseline),
        )
        return shm, ref

    @classmethod
    def from_shared(
        cls, network: Network, ref: SharedSignatureRef
    ) -> "SignatureSimulator":
        """Rebuild a simulator from a :class:`SharedSignatureRef`.

        Attaches to the segment, reads the bitmaps back into per-node
        integers, and closes the local mapping immediately — the
        consumer never unlinks (the publisher owns the segment's
        lifetime).  Like :meth:`from_snapshot`, the result agrees
        bit-for-bit with the publishing simulator.
        """
        from multiprocessing import shared_memory

        shm = shared_memory.SharedMemory(name=ref.shm_name)
        try:
            width = ref.byte_width()
            raw = bytes(shm.buf)
            signatures = {
                name: int.from_bytes(
                    raw[i * width:(i + 1) * width], "little"
                )
                for i, name in enumerate(ref.names)
            }
        finally:
            shm.close()
        sim = cls.__new__(cls)
        sim.network = network
        sim.num_patterns = ref.patterns
        sim.seed = ref.seed
        sim.mask = (1 << ref.patterns) - 1
        sim.signatures = signatures
        sim.node_generation = dict(zip(ref.names, ref.node_generation))
        sim.generation = ref.generation
        sim.nodes_resimulated = 0
        sim._po_baseline = dict(ref.po_baseline)
        return sim

    # ------------------------------------------------------------------
    # Incremental maintenance
    # ------------------------------------------------------------------
    def refresh(self, roots: Iterable[str] = ()) -> int:
        """Re-simulate *roots* and the affected part of their fanout.

        Call after mutating the functions of the *roots* nodes (new
        nodes and deletions are discovered automatically).  Walks the
        topological order once, re-evaluating a node only when it is a
        root, is new, or one of its fanins' signatures changed in this
        refresh; propagation therefore stops as soon as packed values
        stabilize.  Returns the number of nodes re-evaluated.
        """
        net = self.network
        for name in list(self.signatures):
            if name not in net.nodes:
                del self.signatures[name]
                self.node_generation.pop(name, None)
        self.generation += 1
        dirty = {root for root in roots if root in net.nodes}
        for name in net.nodes:
            if name not in self.signatures:
                dirty.add(name)
        if not dirty:
            return 0
        changed: set = set()
        count = 0
        for name in net.topo_order():
            node = net.nodes[name]
            if node.is_pi:
                if name not in self.signatures:
                    self.signatures[name] = self._pi_pattern(name)
                    self.node_generation[name] = self.generation
                continue
            if name in dirty or any(f in changed for f in node.fanins):
                old = self.signatures.get(name)
                new = self._eval_node(node)
                count += 1
                self.node_generation[name] = self.generation
                if new != old:
                    self.signatures[name] = new
                    changed.add(name)
        self.nodes_resimulated += count
        return count

    def resimulate_all(self) -> None:
        """Full from-scratch rebuild (explicit invalidation hatch)."""
        self.generation += 1
        self.node_generation = {}
        self._simulate_all()
