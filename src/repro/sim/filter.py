"""Signature-based pruning of hopeless division candidates.

Basic Boolean division of ``f`` by ``d`` (see :mod:`repro.core.division`)
only does anything when the Lemma-1 region is non-empty: some cube of
the dividend must be contained in some cube of the divisor candidate
cover.  Cube containment ``k ⊇ c`` implies on-set containment, which
holds in particular on every simulated pattern, so::

    sig(c) & ~sig(k) != 0   ⇒   k does not contain c  (a *proof*)

The filter evaluates this per (dividend cube, divisor cube) pair for
each of the four (phase, form) attempt variants and reports which
variants could possibly produce a non-empty region.  A variant (or a
whole divisor) is pruned only when the signatures *prove* every region
empty — exactly the cases where :func:`repro.core.division.boolean_divide`
would return ``None`` — so pruning never changes the result of a
substitution run, only skips work (see ``tests/core/
test_sim_filter_property.py`` for the machine-checked version of this
argument).

Variant-to-signature mapping (``eff_phase`` as in ``boolean_divide``):

================  ========================  =========================
attempt           dividend cubes            divisor candidate cover
================  ========================  =========================
(True,  "sop")    cubes of ``f``            ``d``          (sop sigs)
(False, "sop")    cubes of ``f``            ``d'``         (pos sigs)
(True,  "pos")    cubes of ``f'``           ``d'``         (pos sigs)
(False, "pos")    cubes of ``f'``           ``d``          (sop sigs)
================  ========================  =========================

When ``d`` is already a fanin of ``f``, ``boolean_divide`` additionally
tries the single-literal candidate ``y``/``y'``; its signature is the
node signature ``sig(d)`` (resp. its complement), which the tests
include.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.network.network import Network, eval_cube_packed
from repro.twolevel.complement import complement
from repro.core.config import DivisionConfig
from repro.core.division import ALL_ATTEMPTS, enabled_attempts
from repro.sim.cache import LRUCache
from repro.sim.signature import SignatureSimulator


class DivisorFilter:
    """Sound one-way candidate filter over a :class:`SignatureSimulator`.

    Owns two LRU caches:

    * cube signatures per ``(node, form, generation)`` — the packed
      values of each cube of the node's cover (``form="sop"``) or of
      its complement cover (``form="pos"``),
    * containment verdicts per ``(f, gen_f, d, gen_d)`` — the tuple of
      surviving attempt variants for a dividend/divisor pair.

    Both keys embed the owning nodes' mutation generations, so a
    :meth:`note_mutation` call (which re-simulates the fanout cone)
    implicitly invalidates every stale entry; :meth:`invalidate` is the
    explicit full reset.
    """

    def __init__(
        self,
        network: Network,
        config: DivisionConfig,
        sim: Optional[SignatureSimulator] = None,
    ):
        self.network = network
        self.config = config
        self.sim = sim or SignatureSimulator(
            network, patterns=config.sim_patterns, seed=config.sim_seed
        )
        self._sig_cache = LRUCache(config.sim_cache_size)
        self._verdict_cache = LRUCache(config.containment_cache_size)
        self._enabled = tuple(enabled_attempts(config))

    # ------------------------------------------------------------------
    # Cache plumbing
    # ------------------------------------------------------------------
    @property
    def cache_hits(self) -> int:
        return self._sig_cache.hits + self._verdict_cache.hits

    @property
    def cache_misses(self) -> int:
        return self._sig_cache.misses + self._verdict_cache.misses

    def note_mutation(self, roots: Sequence[str]) -> int:
        """Declare the *roots* nodes rewritten; re-simulate their cones.

        Must be called after every network mutation while the filter is
        live (generation bumps invalidate the caches for the affected
        nodes).  Returns the number of nodes re-simulated.
        """
        return self.sim.refresh(roots)

    def invalidate(self) -> None:
        """Explicit full invalidation: drop caches, re-simulate all."""
        self._sig_cache.clear()
        self._verdict_cache.clear()
        self.sim.resimulate_all()

    # ------------------------------------------------------------------
    # Signatures
    # ------------------------------------------------------------------
    def cube_signatures(self, name: str, form: str) -> Tuple[int, ...]:
        """Packed values of each cube of *name*'s cover (or its
        complement cover for ``form="pos"``), LRU-cached per mutation
        generation."""
        key = (name, form, self.sim.node_generation[name])
        cached = self._sig_cache.get(key)
        if cached is not None:
            return cached
        node = self.network.nodes[name]
        cover = node.cover if form == "sop" else complement(node.cover)
        fanin_sigs = [self.sim.signatures[f] for f in node.fanins]
        sigs = tuple(
            eval_cube_packed(cube, fanin_sigs, self.sim.mask)
            for cube in cover.cubes
        )
        self._sig_cache.put(key, sigs)
        return sigs

    # ------------------------------------------------------------------
    # The filter
    # ------------------------------------------------------------------
    @staticmethod
    def _containment_possible(
        dividend_sigs: Sequence[int],
        divisor_sigs: Sequence[int],
        literal_sig: Optional[int],
    ) -> bool:
        """Could any dividend cube be contained in a candidate cube?

        *literal_sig* is the single-literal candidate's signature when
        the divisor is a fanin of the dividend, else ``None``.  Returns
        False only when every containment is refuted by some pattern.
        """
        for c in dividend_sigs:
            if literal_sig is not None and c & ~literal_sig == 0:
                return True
            for k in divisor_sigs:
                if c & ~k == 0:
                    return True
        return False

    def viable_attempts(
        self, f_name: str, d_name: str
    ) -> Tuple[Tuple[bool, str], ...]:
        """The enabled (phase, form) variants not refuted by signatures.

        An empty result proves ``divide_node_pair(f, d)`` returns
        ``None`` on the current network, so the pair can be skipped
        outright.
        """
        gen = self.sim.node_generation
        key = (f_name, gen[f_name], d_name, gen[d_name])
        cached = self._verdict_cache.get(key)
        if cached is not None:
            return cached

        sig_d = self.sim.signatures[d_name]
        not_d = self.sim.mask & ~sig_d
        is_fanin = d_name in self.network.nodes[f_name].fanins
        verdict: List[Tuple[bool, str]] = []
        for phase, form in self._enabled:
            dividend_sigs = self.cube_signatures(f_name, form)
            eff_phase = phase if form == "sop" else not phase
            if eff_phase:
                divisor_sigs = self.cube_signatures(d_name, "sop")
                literal_sig = sig_d if is_fanin else None
            else:
                divisor_sigs = self.cube_signatures(d_name, "pos")
                literal_sig = not_d if is_fanin else None
            if self._containment_possible(
                dividend_sigs, divisor_sigs, literal_sig
            ):
                verdict.append((phase, form))
        result = tuple(verdict)
        self._verdict_cache.put(key, result)
        return result
