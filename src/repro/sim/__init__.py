"""Bit-parallel simulation signatures (the substitution fast path).

* :mod:`repro.sim.signature` — incremental packed-pattern simulation of
  a whole :class:`~repro.network.network.Network`,
* :mod:`repro.sim.filter` — the sound one-way divisor filter built on
  those signatures (simulation-guided pruning, in the spirit of
  Lee et al., "Simulation-Guided Boolean Resubstitution", ICCAD 2020),
* :mod:`repro.sim.cache` — the LRU cache both lean on.
"""

from repro.sim.cache import LRUCache
from repro.sim.signature import SignatureSimulator
from repro.sim.filter import ALL_ATTEMPTS, DivisorFilter, enabled_attempts

__all__ = [
    "LRUCache",
    "SignatureSimulator",
    "ALL_ATTEMPTS",
    "DivisorFilter",
    "enabled_attempts",
]
