"""Unified metrics: counters, gauges, timing summaries, one snapshot.

PRs 1–3 accreted ad-hoc observability: counter fields on
:class:`~repro.core.substitution.SubstitutionStats`, fault counters on
the executors, a :class:`~repro.resilience.budget.BudgetReport`
dataclass.  This module gives them one home: a
:class:`MetricsRegistry` of named instruments whose
:meth:`~MetricsRegistry.snapshot` is a single JSON-ready dict, and
:func:`metrics_from_run` which absorbs a finished run's ledgers into
namespaced metrics (``substitution.*``, ``parallel.*``,
``resilience.*``, ``sat.*``, ``budget.*``) so every consumer — ``--stats-json``,
:func:`~repro.scripts.flows.run_method`, dashboards — reads the same
shape regardless of which subsystems were active.

Names are dotted paths; the convention is ``<namespace>.<field>``.
Counters are monotone within one registry; gauges are last-write-wins;
timing summaries aggregate observations into count/total/min/max/mean.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Optional


class Counter:
    """Monotone non-decreasing integer instrument."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name}: negative increment")
        self.value += amount


class Gauge:
    """Last-write-wins instrument (floats, ints, strings, None)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value: object = None

    def set(self, value: object) -> None:
        self.value = value


class TimingSummary:
    """Aggregated observations: count / total / min / max / mean."""

    __slots__ = ("name", "count", "total", "min", "max")

    def __init__(self, name: str):
        self.name = name
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def summary(self) -> Dict[str, object]:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.total / self.count if self.count else None,
        }


class MetricsRegistry:
    """Get-or-create registry of instruments, one snapshot out.

    A name is bound to exactly one instrument type; asking for the
    same name as a different type is an error (it would silently fork
    the metric).
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._timings: Dict[str, TimingSummary] = {}

    # ------------------------------------------------------------------
    def _check_unbound(self, name: str, want: Dict[str, object]) -> None:
        for kind, table in (
            ("counter", self._counters),
            ("gauge", self._gauges),
            ("timing", self._timings),
        ):
            if table is not want and name in table:
                raise ValueError(
                    f"metric {name!r} is already registered as a {kind}"
                )

    def counter(self, name: str) -> Counter:
        self._check_unbound(name, self._counters)
        instrument = self._counters.get(name)
        if instrument is None:
            instrument = self._counters[name] = Counter(name)
        return instrument

    def gauge(self, name: str) -> Gauge:
        self._check_unbound(name, self._gauges)
        instrument = self._gauges.get(name)
        if instrument is None:
            instrument = self._gauges[name] = Gauge(name)
        return instrument

    def timing(self, name: str) -> TimingSummary:
        self._check_unbound(name, self._timings)
        instrument = self._timings.get(name)
        if instrument is None:
            instrument = self._timings[name] = TimingSummary(name)
        return instrument

    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, object]:
        """One JSON-ready dict of every instrument's current state."""
        return {
            "counters": {
                name: c.value for name, c in sorted(self._counters.items())
            },
            "gauges": {
                name: g.value for name, g in sorted(self._gauges.items())
            },
            "timings": {
                name: t.summary()
                for name, t in sorted(self._timings.items())
            },
        }


# ----------------------------------------------------------------------
# Absorbing the run ledgers
# ----------------------------------------------------------------------
#: SubstitutionStats counter fields → substitution.* counters.
_SUBSTITUTION_COUNTERS = (
    "attempts",
    "accepted",
    "wires_removed",
    "cubes_removed",
    "cores_extracted",
    "divide_calls",
    "divisors_pruned",
    "variants_pruned",
    "sim_cache_hits",
    "sim_cache_misses",
    "resim_nodes",
    "atpg_incomplete",
)

#: SubstitutionStats parallel/fault fields → parallel.* counters
#: (these originate on the executors and the speculative engine).
#: Fields newer than a snapshot default to 0 (``data.get``), so old
#: ``--stats-json`` reports keep loading.
_PARALLEL_COUNTERS = (
    "parallel_batches",
    "parallel_pairs_evaluated",
    "parallel_pairs_reused",
    "parallel_pairs_invalidated",
    "parallel_deltas_shipped",
    "parallel_delta_nodes",
    "parallel_pairs_stale_skipped",
    "parallel_snapshot_bytes",
    "parallel_batch_bytes",
    "worker_faults",
    "shards_redispatched",
    "degraded_to_serial",
)

#: SubstitutionStats transactional-commit fields → resilience.*.
_RESILIENCE_COUNTERS = (
    "commits_verified",
    "commits_rolled_back",
    "pairs_quarantined",
)

#: SubstitutionStats SAT-backend fields → sat.* counters (the CDCL
#: engine behind ``verify_backend="sat"``/"auto"; see
#: :mod:`repro.sat`).  ``data.get`` keeps pre-SAT snapshots loading.
_SAT_COUNTERS = (
    "sat_solves",
    "sat_conflicts",
    "sat_decisions",
    "sat_propagations",
    "sat_learned",
)

#: SubstitutionStats simguided-resubstitution fields → resub.*
#: counters (the :mod:`repro.resub` engine).  ``data.get`` keeps
#: pre-resub snapshots loading.
_RESUB_COUNTERS = (
    "resub_targets",
    "resub_windows",
    "resub_candidates",
    "resub_validated",
    "resub_rejected_unknown",
    "resub_accepted",
    "resub_wires_cleaned",
)

#: SubstitutionStats liveness fields → health.* counters (worker
#: heartbeats and watchdog-flagged stalls; see :mod:`repro.obs.
#: health`).  Timing-dependent by nature, so these are **never**
#: listed in ``DETERMINISTIC_COUNTERS`` — ``repro compare`` must not
#: gate them exactly.  ``data.get`` keeps pre-telemetry snapshots
#: loading.
_HEALTH_COUNTERS = (
    "heartbeats_recorded",
    "stalls_detected",
)


def metrics_from_run(stats) -> MetricsRegistry:
    """Absorb a :class:`SubstitutionStats` into a fresh registry.

    Accepts the dataclass or its ``dataclasses.asdict`` form (what
    ``--stats-json`` round-trips).  The ad-hoc ledgers map to::

        substitution.<counter>      attempts, accepted, divide_calls, …
        substitution.literals_*     gauges (before / after / improvement)
        substitution.cpu_seconds    timing (one observation per run)
        parallel.<counter>          batches, reuse, fault-containment
        parallel.jobs               gauge
        resilience.<counter>        verified / rolled-back / quarantined
        resilience.incidents        counter (count of incident records)
        sat.<counter>               solves / conflicts / decisions /
                                    propagations / learned (CDCL backend)
        resub.<counter>             simguided-resubstitution work
                                    (targets / candidates / validations)
        health.<counter>            worker heartbeats / watchdog stalls
        process.*                   gauges: peak RSS, GC collections
        budget.*                    the BudgetReport fields, or absent
    """
    if dataclasses.is_dataclass(stats):
        data = dataclasses.asdict(stats)
    else:
        data = dict(stats)
    registry = MetricsRegistry()

    for field in _SUBSTITUTION_COUNTERS:
        registry.counter(f"substitution.{field}").inc(int(data[field]))
    registry.gauge("substitution.literals_before").set(
        data["literals_before"]
    )
    registry.gauge("substitution.literals_after").set(
        data["literals_after"]
    )
    before = data["literals_before"]
    improvement = (
        100.0 * (before - data["literals_after"]) / before if before else 0.0
    )
    registry.gauge("substitution.improvement_pct").set(improvement)
    registry.timing("substitution.cpu_seconds").observe(
        float(data["cpu_seconds"])
    )

    for field in _PARALLEL_COUNTERS:
        name = field[len("parallel_"):] if field.startswith(
            "parallel_"
        ) else field
        registry.counter(f"parallel.{name}").inc(int(data.get(field, 0)))
    registry.gauge("parallel.jobs").set(data["parallel_jobs"])
    for phase, seconds in sorted(
        (data.get("parallel_phase_seconds") or {}).items()
    ):
        registry.timing(f"parallel.phase_{phase}_seconds").observe(
            float(seconds)
        )

    for field in _RESILIENCE_COUNTERS:
        registry.counter(f"resilience.{field}").inc(int(data[field]))
    for field in _SAT_COUNTERS:
        name = field[len("sat_"):]
        registry.counter(f"sat.{name}").inc(int(data.get(field, 0)))
    for field in _RESUB_COUNTERS:
        name = field[len("resub_"):]
        registry.counter(f"resub.{name}").inc(int(data.get(field, 0)))
    registry.counter("resilience.incidents").inc(
        len(data.get("incidents") or [])
    )
    for field in _HEALTH_COUNTERS:
        registry.counter(f"health.{field}").inc(int(data.get(field, 0)))
    # Process resource observations captured at end of run; gauges
    # (high-water marks, not additive work), slack-gated by
    # ``repro compare`` like wall clocks.
    registry.gauge("process.peak_rss_bytes").set(
        int(data.get("peak_rss_bytes", 0))
    )
    registry.gauge("process.gc_collections").set(
        int(data.get("gc_collections", 0))
    )

    report = data.get("budget_report")
    if report is not None:
        if dataclasses.is_dataclass(report):
            report = dataclasses.asdict(report)
        registry.gauge("budget.stopped").set(bool(report["stopped"]))
        registry.gauge("budget.reason").set(report["reason"])
        registry.gauge("budget.elapsed_seconds").set(
            report["elapsed_seconds"]
        )
        registry.counter("budget.divide_calls").inc(
            int(report["divide_calls"])
        )
        registry.counter("budget.backtracks").inc(int(report["backtracks"]))
        registry.gauge("budget.deadline_seconds").set(
            report["deadline_seconds"]
        )
        registry.gauge("budget.max_divide_calls").set(
            report["max_divide_calls"]
        )
        registry.gauge("budget.max_backtracks").set(
            report["max_backtracks"]
        )
    return registry


def run_snapshot(stats) -> Dict[str, object]:
    """Shorthand: ``metrics_from_run(stats).snapshot()``."""
    return metrics_from_run(stats).snapshot()
