"""Trace analytics: span forest, critical path, hot spans, utilization.

The tracer (:mod:`repro.obs.tracer`) writes schema-v1 events — flat
JSONL lines with ``(proc, id)`` primary keys and ``parent`` links.
This module turns that flat list back into the tree it came from and
answers the questions the raw data cannot:

* **Where did the time go?**  :func:`critical_path` walks the heaviest
  root-to-leaf chain; :func:`aggregate_by_kind` /
  :func:`aggregate_by_proc_kind` roll wall/CPU/self-wall up per span
  kind (and per recording process, so worker seconds are not
  misattributed to the main process's clock).
* **Which candidates dominate?**  :func:`top_spans` ranks the slowest
  ``pair`` / ``divide`` / ``atpg`` spans with their attrs, so "which
  divisor pairs dominate ATPG backtracks" is one function call.
* **Were the workers busy?**  :func:`worker_utilization` reports each
  ``worker-*`` process's busy fraction and idle gaps between its root
  spans; :func:`ledger_rates` reads the speculative-store economics
  (pairs speculated vs. served vs. invalidated-and-re-evaluated) off
  the ``speculate`` and ``pair`` spans.

Everything operates on plain event dicts (from
:func:`~repro.obs.tracer.read_jsonl` or a live
:class:`~repro.obs.tracer.Tracer`'s ``events``) and returns JSON-ready
structures; :func:`format_report` renders the full
:func:`analyze_trace` bundle as the text behind ``repro trace
report``.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

#: Span kinds ranked by default in the hot-span report.
DEFAULT_TOP_KINDS = ("pair", "divide", "atpg")


class SpanNode:
    """One event plus its resolved tree links."""

    __slots__ = ("event", "children")

    def __init__(self, event: dict):
        self.event = event
        self.children: List["SpanNode"] = []

    @property
    def key(self) -> Tuple[str, int]:
        return (self.event["proc"], self.event["id"])

    @property
    def dur(self) -> float:
        return self.event["dur"]

    def self_wall(self) -> float:
        """Wall time not covered by direct children."""
        return max(0.0, self.dur - sum(c.dur for c in self.children))


class SpanForest:
    """The reconstructed span trees of one (possibly merged) trace.

    Parent links only resolve within one ``proc`` (span ids are
    per-tracer); a span whose parent id is ``-1`` — or references an
    id its own proc never recorded, which happens when a worker's
    partial trace is merged — is a root.
    """

    def __init__(self, events: Iterable[dict]):
        self.nodes: Dict[Tuple[str, int], SpanNode] = {}
        self.roots: List[SpanNode] = []
        events = list(events)
        for event in events:
            node = SpanNode(event)
            if node.key in self.nodes:
                raise ValueError(
                    f"duplicate span key {node.key} in trace"
                )
            self.nodes[node.key] = node
        for node in self.nodes.values():
            parent_key = (node.event["proc"], node.event["parent"])
            parent = self.nodes.get(parent_key)
            if node.event["parent"] < 0 or parent is None:
                self.roots.append(node)
            else:
                parent.children.append(node)
        # Deterministic order: children by start time, roots by
        # (proc, start) so reports are stable across dict ordering.
        for node in self.nodes.values():
            node.children.sort(key=lambda n: n.event["start"])
        self.roots.sort(key=lambda n: (n.event["proc"], n.event["start"]))

    def procs(self) -> List[str]:
        return sorted({node.event["proc"] for node in self.nodes.values()})


def build_forest(events: Iterable[dict]) -> SpanForest:
    """Reconstruct the span forest of a trace."""
    return SpanForest(events)


# ----------------------------------------------------------------------
# Critical path
# ----------------------------------------------------------------------
def critical_path(forest: SpanForest) -> List[dict]:
    """The heaviest root-to-leaf chain, as event dicts (root first).

    Starts from the longest root span (across all procs — in practice
    the main process's ``run`` span) and greedily descends into the
    longest direct child.  Because spans nest strictly within their
    parent's interval on one proc's clock, every step's duration is
    bounded by the step above it, so the chain reads as "the run spent
    most of its time in this pass, which spent most of its time in
    this pair, …".
    """
    if not forest.roots:
        return []
    node = max(forest.roots, key=lambda n: n.dur)
    path = [node.event]
    while node.children:
        node = max(node.children, key=lambda n: n.dur)
        path.append(node.event)
    return path


# ----------------------------------------------------------------------
# Aggregates
# ----------------------------------------------------------------------
def _aggregate(nodes: Iterable[SpanNode], key_fn) -> Dict[object, Dict[str, float]]:
    rollup: Dict[object, Dict[str, float]] = {}
    for node in nodes:
        row = rollup.setdefault(
            key_fn(node),
            {"count": 0, "wall": 0.0, "cpu": 0.0, "self_wall": 0.0},
        )
        row["count"] += 1
        row["wall"] += node.dur
        row["cpu"] += node.event["cpu"]
        row["self_wall"] += node.self_wall()
    return rollup


def aggregate_by_kind(forest: SpanForest) -> Dict[str, Dict[str, float]]:
    """``{kind: {count, wall, cpu, self_wall}}`` over the whole trace."""
    return _aggregate(forest.nodes.values(), lambda n: n.event["kind"])


def aggregate_by_proc_kind(
    forest: SpanForest,
) -> Dict[str, Dict[str, Dict[str, float]]]:
    """Per-proc rollup: ``{proc: {kind: {count, wall, cpu, self_wall}}}``."""
    flat = _aggregate(
        forest.nodes.values(),
        lambda n: (n.event["proc"], n.event["kind"]),
    )
    nested: Dict[str, Dict[str, Dict[str, float]]] = {}
    for (proc, kind), row in flat.items():
        nested.setdefault(proc, {})[kind] = row
    return nested


def top_spans(
    forest: SpanForest,
    kinds: Sequence[str] = DEFAULT_TOP_KINDS,
    n: int = 10,
) -> Dict[str, List[dict]]:
    """The *n* longest spans of each requested kind, attrs included.

    Each entry is a compact JSON-ready dict (``proc``/``id``/``dur``/
    ``cpu``/``attrs``) sorted by descending duration — the "which
    divisor pairs dominate" view.
    """
    ranked: Dict[str, List[dict]] = {}
    for kind in kinds:
        matching = [
            node.event
            for node in forest.nodes.values()
            if node.event["kind"] == kind
        ]
        matching.sort(key=lambda e: (-e["dur"], e["proc"], e["id"]))
        ranked[kind] = [
            {
                "proc": e["proc"],
                "id": e["id"],
                "dur": e["dur"],
                "cpu": e["cpu"],
                "attrs": e["attrs"],
            }
            for e in matching[:n]
        ]
    return ranked


# ----------------------------------------------------------------------
# Worker utilization and speculative-store economics
# ----------------------------------------------------------------------
def worker_utilization(forest: SpanForest) -> Dict[str, Dict[str, object]]:
    """Busy fraction and idle gaps for every ``worker-*`` proc.

    A worker's *window* runs from its first root span's start to its
    last root span's end (all on the worker's own clock, so the
    numbers are exact).  *Busy* is the summed duration of its root
    spans (``worker_batch`` in practice — they never overlap within
    one process); everything between consecutive roots is an idle gap:
    time the worker existed but had no shard to chew on.
    """
    report: Dict[str, Dict[str, object]] = {}
    by_proc: Dict[str, List[SpanNode]] = {}
    for root in forest.roots:
        proc = root.event["proc"]
        if proc.startswith("worker-"):
            by_proc.setdefault(proc, []).append(root)
    for proc, roots in sorted(by_proc.items()):
        roots.sort(key=lambda n: n.event["start"])
        window_start = roots[0].event["start"]
        window_end = max(r.event["end"] for r in roots)
        window = window_end - window_start
        busy = sum(r.dur for r in roots)
        gaps: List[float] = []
        previous_end = roots[0].event["end"]
        for root in roots[1:]:
            gap = root.event["start"] - previous_end
            if gap > 0:
                gaps.append(gap)
            previous_end = max(previous_end, root.event["end"])
        pairs = sum(
            int(r.event["attrs"].get("pairs", 0)) for r in roots
        )
        report[proc] = {
            "batches": len(roots),
            "pairs": pairs,
            "window_seconds": window,
            "busy_seconds": busy,
            "busy_fraction": (busy / window) if window > 0 else 1.0,
            "idle_gaps": len(gaps),
            "idle_seconds": sum(gaps),
            "max_idle_gap_seconds": max(gaps) if gaps else 0.0,
        }
    return report


def ledger_rates(forest: SpanForest) -> Optional[Dict[str, object]]:
    """Speculative-store economics, read off the engine's spans.

    ``None`` for serial traces (no ``speculate`` span).  Otherwise:
    how many pairs the engine speculated on, how many main-loop pairs
    were *served* from the store (``pair`` spans annotated
    ``speculative: true`` — reuse), and how many had to be re-evaluated
    live after an invalidating commit (``speculative: false``).
    """
    speculated = 0
    speculate_spans = 0
    for node in forest.nodes.values():
        if node.event["kind"] == "speculate":
            speculate_spans += 1
            speculated += int(node.event["attrs"].get("pairs", 0))
    if speculate_spans == 0:
        return None
    served = 0
    re_evaluated = 0
    for node in forest.nodes.values():
        event = node.event
        if event["kind"] != "pair" or event["proc"] != "main":
            continue
        flag = event["attrs"].get("speculative")
        if flag is True:
            served += 1
        elif flag is False:
            re_evaluated = re_evaluated + 1
    considered = served + re_evaluated
    return {
        "speculate_spans": speculate_spans,
        "pairs_speculated": speculated,
        "pairs_served": served,
        "pairs_re_evaluated": re_evaluated,
        "reuse_rate": (served / considered) if considered else 0.0,
        "invalidation_rate": (
            re_evaluated / considered if considered else 0.0
        ),
    }


# ----------------------------------------------------------------------
# The full bundle and its text rendering
# ----------------------------------------------------------------------
def analyze_trace(
    events: Iterable[dict],
    top_kinds: Sequence[str] = DEFAULT_TOP_KINDS,
    top_n: int = 10,
) -> Dict[str, object]:
    """Everything ``repro trace report`` shows, as one JSON-ready dict."""
    forest = build_forest(events)
    return {
        "spans": len(forest.nodes),
        "procs": forest.procs(),
        "critical_path": critical_path(forest),
        "by_kind": aggregate_by_kind(forest),
        "by_proc_kind": aggregate_by_proc_kind(forest),
        "top_spans": top_spans(forest, kinds=top_kinds, n=top_n),
        "worker_utilization": worker_utilization(forest),
        "ledger": ledger_rates(forest),
    }


def _format_attrs(attrs: dict, limit: int = 4) -> str:
    parts = [f"{k}={v!r}" for k, v in list(attrs.items())[:limit]]
    if len(attrs) > limit:
        parts.append("…")
    return " ".join(parts)


def format_report(analysis: Dict[str, object]) -> str:
    """Human-readable rendering of an :func:`analyze_trace` bundle."""
    lines: List[str] = []
    lines.append(
        f"trace: {analysis['spans']} spans across "
        f"{len(analysis['procs'])} proc(s) "
        f"({', '.join(analysis['procs'])})"
    )

    lines.append("")
    lines.append("critical path (heaviest root-to-leaf chain):")
    path = analysis["critical_path"]
    if not path:
        lines.append("  (empty trace)")
    for depth, event in enumerate(path):
        lines.append(
            f"  {'  ' * depth}{event['kind']:<12}"
            f"{event['dur'] * 1e3:>10.3f} ms  "
            f"{_format_attrs(event['attrs'])}"
        )

    lines.append("")
    lines.append("per-kind rollup:")
    header = (
        f"  {'kind':<14}{'count':>8}{'wall(s)':>10}"
        f"{'self(s)':>10}{'cpu(s)':>10}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    by_kind = analysis["by_kind"]
    for kind in sorted(by_kind, key=lambda k: -by_kind[k]["self_wall"]):
        row = by_kind[kind]
        lines.append(
            f"  {kind:<14}{row['count']:>8}{row['wall']:>10.3f}"
            f"{row['self_wall']:>10.3f}{row['cpu']:>10.3f}"
        )

    top = analysis["top_spans"]
    for kind, entries in top.items():
        if not entries:
            continue
        lines.append("")
        lines.append(f"slowest {kind} spans:")
        for entry in entries:
            lines.append(
                f"  {entry['dur'] * 1e3:>10.3f} ms  "
                f"[{entry['proc']}:{entry['id']}]  "
                f"{_format_attrs(entry['attrs'])}"
            )

    utilization = analysis["worker_utilization"]
    lines.append("")
    if utilization:
        lines.append("worker utilization:")
        for proc, row in utilization.items():
            lines.append(
                f"  {proc:<16}{row['batches']:>4} batches  "
                f"{row['pairs']:>5} pairs  "
                f"busy {row['busy_fraction'] * 100:>5.1f}%  "
                f"idle {row['idle_seconds'] * 1e3:.1f} ms "
                f"in {row['idle_gaps']} gap(s)"
            )
    else:
        lines.append("worker utilization: (serial trace — no workers)")

    ledger = analysis["ledger"]
    if ledger is not None:
        lines.append("")
        lines.append(
            f"speculative store: {ledger['pairs_speculated']} pairs "
            f"speculated, {ledger['pairs_served']} served "
            f"({ledger['reuse_rate'] * 100:.1f}% reuse), "
            f"{ledger['pairs_re_evaluated']} re-evaluated live "
            f"({ledger['invalidation_rate'] * 100:.1f}% invalidated)"
        )
    return "\n".join(lines)
