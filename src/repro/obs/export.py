"""Lossless trace exports: Chrome trace-event JSON and folded stacks.

Two render targets for a schema-v1 trace (see
:mod:`repro.obs.tracer`):

* :func:`to_chrome_trace` — the Chrome trace-event format (the JSON
  ``chrome://tracing`` and Perfetto's legacy importer read).  Every
  span becomes one complete (``"ph": "X"``) event; the conversion is
  **lossless**: the original schema-v1 fields ride along under
  ``args.repro`` at full float precision, so
  :func:`chrome_to_events` reconstructs the exact input events and a
  round-trip preserves the span count by construction.
* :func:`to_folded_stacks` — ``flamegraph.pl`` / speedscope "folded"
  lines (``proc;run;pass;divide 1234``), weighted by *self* wall time
  in integer microseconds so nested spans never double-bill a
  flamegraph column.

Timestamps: Chrome wants microseconds.  Each proc's spans are shifted
so the earliest span in that proc starts at zero — the per-proc clocks
were never comparable (see the tracer docs), and anchoring them at a
common origin renders a merged trace usefully instead of scattering
procs across perf_counter epochs.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Union

from repro.obs.tracer import TRACE_SCHEMA_VERSION


def _proc_ids(events: List[dict]) -> Dict[str, int]:
    """Stable small integer pid per proc label (main first)."""
    labels = sorted({e["proc"] for e in events})
    labels.sort(key=lambda label: (label != "main", label))
    return {label: index + 1 for index, label in enumerate(labels)}


def to_chrome_trace(events: Iterable[dict]) -> Dict[str, object]:
    """Convert schema-v1 events to a Chrome trace-event document."""
    events = list(events)
    pids = _proc_ids(events)
    origin = {
        proc: min(
            e["start"] for e in events if e["proc"] == proc
        )
        for proc in pids
    }
    trace_events: List[dict] = []
    for proc, pid in pids.items():
        trace_events.append(
            {
                "ph": "M",
                "name": "process_name",
                "pid": pid,
                "tid": 0,
                "args": {"name": proc},
            }
        )
    for event in events:
        pid = pids[event["proc"]]
        trace_events.append(
            {
                "ph": "X",
                "name": event["kind"],
                "cat": event["kind"],
                "pid": pid,
                "tid": 1,
                "ts": (event["start"] - origin[event["proc"]]) * 1e6,
                "dur": event["dur"] * 1e6,
                "args": {
                    # Exact original fields, for lossless round-trip.
                    "repro": {
                        "v": event["v"],
                        "id": event["id"],
                        "parent": event["parent"],
                        "proc": event["proc"],
                        "start": event["start"],
                        "end": event["end"],
                        "dur": event["dur"],
                        "cpu": event["cpu"],
                        "attrs": event["attrs"],
                    },
                },
            }
        )
    return {
        "traceEvents": trace_events,
        "displayTimeUnit": "ms",
        "otherData": {
            "source": "repro.obs",
            "trace_schema_version": TRACE_SCHEMA_VERSION,
            "spans": len(events),
        },
    }


def chrome_to_events(document: Dict[str, object]) -> List[dict]:
    """Invert :func:`to_chrome_trace`: exact schema-v1 events back."""
    events: List[dict] = []
    for entry in document["traceEvents"]:
        if entry.get("ph") != "X":
            continue  # metadata rows carry no span
        payload = entry["args"]["repro"]
        events.append(
            {
                "v": payload["v"],
                "kind": entry["name"],
                "id": payload["id"],
                "parent": payload["parent"],
                "proc": payload["proc"],
                "start": payload["start"],
                "end": payload["end"],
                "dur": payload["dur"],
                "cpu": payload["cpu"],
                "attrs": payload["attrs"],
            }
        )
    return events


def export_chrome_trace(events: Iterable[dict], destination) -> None:
    """Write :func:`to_chrome_trace` JSON to a path or file object."""
    document = to_chrome_trace(events)
    if hasattr(destination, "write"):
        json.dump(document, destination, indent=1, sort_keys=True)
        destination.write("\n")
    else:
        with open(destination, "w") as handle:
            json.dump(document, handle, indent=1, sort_keys=True)
            handle.write("\n")


# ----------------------------------------------------------------------
# Folded stacks (flamegraph.pl / speedscope input)
# ----------------------------------------------------------------------
def to_folded_stacks(events: Iterable[dict]) -> List[str]:
    """Folded flamegraph lines, one per distinct stack, self-µs weights.

    The stack of a span is ``proc;kind;kind;…`` along its parent
    chain; weights are the span's *self* wall (duration minus direct
    children) in integer microseconds, summed over all spans sharing a
    stack.  Zero-weight stacks are kept — dropping them would make a
    trace with only sub-microsecond leaves export to nothing.
    """
    from repro.obs.analyze import build_forest

    forest = build_forest(events)
    weights: Dict[str, int] = {}

    def descend(node, prefix: str) -> None:
        stack = f"{prefix};{node.event['kind']}"
        weights[stack] = weights.get(stack, 0) + int(
            round(node.self_wall() * 1e6)
        )
        for child in node.children:
            descend(child, stack)

    for root in forest.roots:
        descend(root, root.event["proc"])
    return [
        f"{stack} {weight}" for stack, weight in sorted(weights.items())
    ]


def export_folded_stacks(events: Iterable[dict], destination) -> None:
    """Write :func:`to_folded_stacks` lines to a path or file object."""
    lines = to_folded_stacks(events)
    text = "\n".join(lines) + ("\n" if lines else "")
    if hasattr(destination, "write"):
        destination.write(text)
    else:
        with open(destination, "w") as handle:
            handle.write(text)
