"""Process resource telemetry: RSS, CPU split, GC pauses, shm usage.

Emits schema-v1 ``resource_sample`` point events so resource data
rides the existing trace pipeline — same JSONL files, same merge
rules, same analysis tools.  Two delivery modes:

* :class:`ResourceSampler` — a daemon thread in the main process that
  samples every *period* seconds and hands each event to
  ``tracer.absorb`` (which forwards to any live sink/bus).  Sampler
  events carry their own ``proc`` label (``resource-<pid>``) and a
  private id counter, so they never collide with span ids in the
  merged ``(proc, id)`` key space.
* workers call :func:`sample_attrs` synchronously at batch boundaries
  and record the result with ``tracer.instant`` — worker samples then
  merge per-proc exactly like worker spans do.

Readers are zero-dependency: ``/proc/self/statm`` / ``/proc/self/
status`` where available (Linux), falling back to
``resource.getrusage``, falling back to zeros — a sample is never
worth an exception.
"""

from __future__ import annotations

import gc
import os
import threading
import time
from typing import Callable, Dict, Optional

from repro.obs.tracer import TRACE_SCHEMA_VERSION, Tracer

#: Shared-memory segment prefix used by the parallel engine for
#: signature bitmaps (kept in lockstep with
#: ``repro.parallel.engine.SHM_PREFIX``; a test asserts equality —
#: importing it here would create an obs → parallel cycle).
SIGNATURE_SHM_PREFIX = "repro_sig_"

_PAGE_SIZE = os.sysconf("SC_PAGE_SIZE") if hasattr(os, "sysconf") else 4096


def rss_bytes() -> int:
    """Current resident set size, or 0 if unreadable."""
    try:
        with open("/proc/self/statm") as handle:
            fields = handle.read().split()
        return int(fields[1]) * _PAGE_SIZE
    except (OSError, IndexError, ValueError):
        return 0


def peak_rss_bytes() -> int:
    """Peak resident set size (VmHWM), with a getrusage fallback."""
    try:
        with open("/proc/self/status") as handle:
            for line in handle:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except (OSError, IndexError, ValueError):
        pass
    try:
        import resource

        # ru_maxrss is kilobytes on Linux.
        return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
    except Exception:
        return 0


def cpu_split() -> Dict[str, float]:
    """User/system CPU seconds of this process (children excluded)."""
    times = os.times()
    return {"user": times.user, "system": times.system}


def gc_collections_total() -> int:
    """Total collections across all GC generations since start."""
    return sum(int(stat.get("collections", 0)) for stat in gc.get_stats())


def shm_usage(prefix: str = SIGNATURE_SHM_PREFIX, root: str = "/dev/shm") -> int:
    """Total bytes of shared-memory segments matching *prefix*."""
    total = 0
    try:
        with os.scandir(root) as entries:
            for entry in entries:
                if entry.name.startswith(prefix):
                    try:
                        total += entry.stat().st_size
                    except OSError:
                        pass
    except OSError:
        return 0
    return total


class GcPauseMonitor:
    """Accumulates GC pause wall time via ``gc.callbacks``.

    Installed by the sampler (or explicitly); uninstall with
    :meth:`stop`.  Callbacks fire in whichever thread triggers the
    collection, so the accumulators are guarded.
    """

    def __init__(self, clock: Callable[[], float] = time.perf_counter):
        self._clock = clock
        self._lock = threading.Lock()
        self._started_at: Optional[float] = None
        self.pause_seconds = 0.0
        self.collections = 0
        self._installed = False

    def _callback(self, phase: str, info: dict) -> None:
        with self._lock:
            if phase == "start":
                self._started_at = self._clock()
            elif phase == "stop" and self._started_at is not None:
                self.pause_seconds += self._clock() - self._started_at
                self.collections += 1
                self._started_at = None

    def start(self) -> "GcPauseMonitor":
        if not self._installed:
            gc.callbacks.append(self._callback)
            self._installed = True
        return self

    def stop(self) -> None:
        if self._installed:
            try:
                gc.callbacks.remove(self._callback)
            except ValueError:
                pass
            self._installed = False

    def __enter__(self) -> "GcPauseMonitor":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False


def sample_attrs(
    monitor: Optional[GcPauseMonitor] = None,
    shm_prefix: str = SIGNATURE_SHM_PREFIX,
) -> Dict[str, object]:
    """One resource snapshot as a flat attrs dict (all JSON-ready)."""
    cpu = cpu_split()
    attrs: Dict[str, object] = {
        "rss_bytes": rss_bytes(),
        "peak_rss_bytes": peak_rss_bytes(),
        "cpu_user_seconds": cpu["user"],
        "cpu_system_seconds": cpu["system"],
        "gc_collections": gc_collections_total(),
        "shm_bytes": shm_usage(shm_prefix),
    }
    if monitor is not None:
        attrs["gc_pause_seconds"] = monitor.pause_seconds
        attrs["gc_pauses_observed"] = monitor.collections
    return attrs


class ResourceSampler:
    """Background thread emitting periodic ``resource_sample`` events.

    Events go through ``tracer.absorb`` so they land in the in-memory
    trace *and* any streaming sink/bus, tagged with their own proc
    label.  The thread is a daemon and wakes via ``Event.wait`` so
    :meth:`stop` returns promptly regardless of the period.
    """

    def __init__(
        self,
        tracer: Tracer,
        period: float = 0.5,
        proc: Optional[str] = None,
        clock: Callable[[], float] = time.perf_counter,
        monitor_gc: bool = True,
    ):
        if period <= 0:
            raise ValueError(f"sample period must be positive: {period}")
        self.tracer = tracer
        self.period = period
        self.proc = proc or f"resource-{os.getpid()}"
        self.samples_taken = 0
        self._clock = clock
        self._next_id = 0
        self._stop = threading.Event()
        self._thread: Optional[threading.Thread] = None
        self._monitor = GcPauseMonitor(clock=clock) if monitor_gc else None

    def _event(self) -> dict:
        now = self._clock()
        span_id = self._next_id
        self._next_id += 1
        return {
            "v": TRACE_SCHEMA_VERSION,
            "kind": "resource_sample",
            "id": span_id,
            "parent": -1,
            "proc": self.proc,
            "start": now,
            "end": now,
            "dur": 0.0,
            "cpu": 0.0,
            "attrs": sample_attrs(self._monitor),
        }

    def sample_once(self) -> dict:
        """Take and deliver one sample synchronously; returns the event."""
        event = self._event()
        self.tracer.absorb([event])
        self.samples_taken += 1
        return event

    def _loop(self) -> None:
        while not self._stop.wait(self.period):
            try:
                self.sample_once()
            except Exception:
                # Telemetry must never take the run down.
                break

    def start(self) -> "ResourceSampler":
        if self._thread is not None:
            return self
        if self._monitor is not None:
            self._monitor.start()
        self._stop.clear()
        self._thread = threading.Thread(
            target=self._loop, name="repro-resource-sampler", daemon=True
        )
        self._thread.start()
        return self

    def stop(self, final_sample: bool = True) -> None:
        thread = self._thread
        if thread is None:
            return
        self._stop.set()
        thread.join(timeout=5.0)
        self._thread = None
        if final_sample:
            # One closing sample so short runs always record peaks.
            try:
                self.sample_once()
            except Exception:
                pass
        if self._monitor is not None:
            self._monitor.stop()

    def __enter__(self) -> "ResourceSampler":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.stop()
        return False
