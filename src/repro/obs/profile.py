"""Per-phase wall/CPU rollups over a trace.

Answers "where did the time go" for one run: aggregate a tracer's
events by span kind into count / wall / CPU totals, plus *self* wall
time (wall minus the wall time of direct children, so nested phases —
``divide`` inside ``pair`` inside ``pass`` — don't triple-bill the
same seconds when read as a breakdown).

Self time is computed within one ``proc`` clock domain only; worker
events merged into a main-process trace roll up independently, which
is the honest reading — a worker's ``divide`` seconds did not elapse
on the main process's critical path.
"""

from __future__ import annotations

from typing import Dict, Iterable, List

#: Presentation order for the rollup table; kinds outside this list
#: (or future additions) sort after, alphabetically.
PROFILE_PHASES = (
    "run",
    "pass",
    "enumerate",
    "speculate",
    "worker_batch",
    "pair",
    "divide",
    "atpg",
    "sat_solve",
    "commit",
    "verify",
    "resub_window",
    "resub_resyn",
    "resub_validate",
    "shm_publish",
    "delta_ship",
    "delta_apply",
    "resource_sample",
    "heartbeat",
    "stall",
)


def profile_events(events: Iterable[dict]) -> Dict[str, Dict[str, object]]:
    """Aggregate events by kind.

    Returns ``{kind: {"count", "wall", "cpu", "self_wall"}}`` with
    times in seconds.
    """
    events = list(events)
    rollup: Dict[str, Dict[str, float]] = {}
    # Direct-children wall per (proc, parent id), for self time.
    child_wall: Dict[tuple, float] = {}
    for event in events:
        child_wall[(event["proc"], event["parent"])] = (
            child_wall.get((event["proc"], event["parent"]), 0.0)
            + event["dur"]
        )
    for event in events:
        row = rollup.setdefault(
            event["kind"],
            {"count": 0, "wall": 0.0, "cpu": 0.0, "self_wall": 0.0},
        )
        row["count"] += 1
        row["wall"] += event["dur"]
        row["cpu"] += event["cpu"]
        children = child_wall.get((event["proc"], event["id"]), 0.0)
        row["self_wall"] += max(0.0, event["dur"] - children)
    return rollup


def profile_tracer(tracer) -> Dict[str, Dict[str, object]]:
    """Rollup of everything *tracer* has recorded (absorbed included)."""
    return profile_events(tracer.events)


def _phase_order(kind: str) -> tuple:
    try:
        return (0, PROFILE_PHASES.index(kind))
    except ValueError:
        return (1, kind)


def format_profile(rollup: Dict[str, Dict[str, object]]) -> str:
    """Fixed-width table of a rollup, one phase per row."""
    header = f"{'phase':<14}{'count':>8}{'wall(s)':>10}{'self(s)':>10}{'cpu(s)':>10}"
    lines: List[str] = [header, "-" * len(header)]
    for kind in sorted(rollup, key=_phase_order):
        row = rollup[kind]
        lines.append(
            f"{kind:<14}{row['count']:>8}"
            f"{row['wall']:>10.3f}{row['self_wall']:>10.3f}"
            f"{row['cpu']:>10.3f}"
        )
    return "\n".join(lines)
