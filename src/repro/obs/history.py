"""Run history: append-only JSONL of metrics snapshots across PRs.

Every benchmark run so far wrote a point-in-time ``BENCH_*.json`` that
the next revision overwrites — there was no trajectory, so "did PR N
make ``divide_calls`` or wall time worse than PR N-1" had no data to
ask.  This module fixes that with one append-only ledger,
``benchmarks/results/history.jsonl``: one JSON line per run, carrying
the run's metrics snapshot (see :func:`~repro.obs.metrics.run_snapshot`)
plus enough provenance to interpret it later —

* a **machine fingerprint** (platform, Python, CPU count), because
  wall seconds from different machines must never be compared as a
  regression;
* the **git SHA** of the working tree (best-effort; ``None`` outside a
  repo or without ``git``);
* a **config hash** over the resolved
  :class:`~repro.core.substitution.DivisionConfig`, because a counter
  delta between different configurations is a change, not a
  regression;
* the **circuit id** and the recording **bench**.

Record schema (``v`` bumps on breaking change)::

    {"v": 1, "bench": "simbench", "circuit": "rnd8",
     "git_sha": "8b1fbab…", "config_hash": "f3a9…", "config_mode": "basic",
     "machine": {"platform": …, "python": …, "cpu_count": 1},
     "wall_seconds": 1.23, "metrics": {"counters": …, "gauges": …,
     "timings": …}, "extra": {...}}

:func:`latest_record` pulls the newest comparable baseline back out
(filtered by circuit / bench / config hash / machine), which is what
``repro compare`` and ``scripts/check_regression.py`` diff new runs
against.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pathlib
import platform
import subprocess
from typing import Dict, List, Optional, Union

#: Bumped when a record's required fields change.
HISTORY_SCHEMA_VERSION = 1

#: The shared cross-PR ledger at the repository root.
DEFAULT_HISTORY_PATH = (
    pathlib.Path(__file__).resolve().parents[3]
    / "benchmarks"
    / "results"
    / "history.jsonl"
)

_REQUIRED_FIELDS = ("v", "bench", "circuit", "machine", "metrics")


def machine_fingerprint() -> Dict[str, object]:
    """Where a record was measured (never compare walls across these)."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "cpu_count": os.cpu_count(),
    }


def current_git_sha(repo_root: Optional[pathlib.Path] = None) -> Optional[str]:
    """HEAD commit of the repo (best-effort: ``None`` when unavailable)."""
    root = pathlib.Path(repo_root or DEFAULT_HISTORY_PATH.parents[2])
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=root,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    sha = out.stdout.strip()
    return sha or None


def config_hash(config: Union[dict, object, None]) -> Optional[str]:
    """Short stable hash of a resolved config (dataclass or dict)."""
    if config is None:
        return None
    if dataclasses.is_dataclass(config):
        config = dataclasses.asdict(config)
    canonical = json.dumps(config, sort_keys=True, default=repr)
    return hashlib.sha256(canonical.encode()).hexdigest()[:16]


def make_record(
    *,
    bench: str,
    circuit: str,
    metrics: Dict[str, object],
    config: Union[dict, object, None] = None,
    wall_seconds: Optional[float] = None,
    extra: Optional[Dict[str, object]] = None,
    repo_root: Optional[pathlib.Path] = None,
) -> Dict[str, object]:
    """One JSON-ready history record (see the module docstring)."""
    config_mode = None
    if config is not None:
        as_dict = (
            dataclasses.asdict(config)
            if dataclasses.is_dataclass(config)
            else dict(config)
        )
        config_mode = as_dict.get("mode")
    record: Dict[str, object] = {
        "v": HISTORY_SCHEMA_VERSION,
        "bench": bench,
        "circuit": circuit,
        "git_sha": current_git_sha(repo_root),
        "config_hash": config_hash(config),
        "config_mode": config_mode,
        "machine": machine_fingerprint(),
        "wall_seconds": wall_seconds,
        "metrics": metrics,
    }
    if extra:
        record["extra"] = extra
    return record


def validate_record(record: dict) -> None:
    """Raise ``ValueError`` unless *record* matches the history schema."""
    if not isinstance(record, dict):
        raise ValueError(
            f"record must be a dict, got {type(record).__name__}"
        )
    missing = [f for f in _REQUIRED_FIELDS if f not in record]
    if missing:
        raise ValueError(f"record missing fields {missing}")
    if record["v"] != HISTORY_SCHEMA_VERSION:
        raise ValueError(
            f"unsupported history schema version {record['v']!r}"
        )
    if not isinstance(record["metrics"], dict):
        raise ValueError("metrics must be a snapshot dict")


def append_record(
    record: dict,
    path: Union[str, pathlib.Path, None] = None,
) -> pathlib.Path:
    """Validate and append one record; returns the ledger path."""
    validate_record(record)
    ledger = pathlib.Path(path or DEFAULT_HISTORY_PATH)
    ledger.parent.mkdir(parents=True, exist_ok=True)
    with open(ledger, "a") as handle:
        handle.write(json.dumps(record, sort_keys=True))
        handle.write("\n")
    return ledger


def read_history(
    path: Union[str, pathlib.Path, None] = None,
) -> List[dict]:
    """All records of a ledger, oldest first ([] for a missing file)."""
    ledger = pathlib.Path(path or DEFAULT_HISTORY_PATH)
    if not ledger.exists():
        return []
    records: List[dict] = []
    with open(ledger) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{ledger}:{lineno}: not JSON: {exc}"
                ) from exc
            try:
                validate_record(record)
            except ValueError as exc:
                raise ValueError(f"{ledger}:{lineno}: {exc}") from exc
            records.append(record)
    return records


def latest_record(
    records: List[dict],
    *,
    circuit: Optional[str] = None,
    bench: Optional[str] = None,
    config_hash: Optional[str] = None,
    same_machine_as: Optional[dict] = None,
) -> Optional[dict]:
    """The newest record matching every given filter (or ``None``).

    *same_machine_as* restricts to records whose machine fingerprint
    equals the given record's — required before trusting wall-time
    comparisons.
    """
    for record in reversed(records):
        if circuit is not None and record["circuit"] != circuit:
            continue
        if bench is not None and record["bench"] != bench:
            continue
        if (
            config_hash is not None
            and record.get("config_hash") != config_hash
        ):
            continue
        if (
            same_machine_as is not None
            and record["machine"] != same_machine_as["machine"]
        ):
            continue
        return record
    return None
