"""Structured tracing: nestable spans with JSONL export.

A :class:`Tracer` records *spans* — named, nestable intervals with
wall and CPU durations plus free-form attributes.  Every span becomes
one JSON-ready event dict appended to :attr:`Tracer.events` when it
closes, so a trace is just a list of dicts and exporting it is one
``json.dumps`` per line.

Design constraints (these are load-bearing for the rest of the repo):

* **Disabled tracing must be free.**  :data:`NULL_TRACER` is the
  default everywhere; its :meth:`~NullTracer.span` returns a shared
  singleton whose ``__enter__``/``__exit__`` do nothing — no clock
  reads, no allocation — so instrumented code paths cost a single
  attribute call per span when tracing is off and produce
  byte-identical results (the tracer never influences control flow).
* **Injectable clocks.**  Wall and CPU clocks are constructor
  arguments so span timing is unit-testable without sleeping.
* **Multi-process merges.**  Span ids are only unique per tracer; each
  event carries the tracer's ``proc`` label, so ``(proc, id)`` is
  unique in a merged trace.  Worker tracers :meth:`~Tracer.drain`
  their events after each batch and the main process
  :meth:`~Tracer.absorb`\\ s them — timestamps stay in the recording
  process's clock domain (they are comparable *within* a proc, not
  across procs; durations are always meaningful).

Event schema (one JSONL line per span; see
:func:`validate_trace_event`)::

    {"v": 1, "kind": "divide", "id": 17, "parent": 4, "proc": "main",
     "start": 0.1042, "end": 0.1163, "dur": 0.0121, "cpu": 0.0119,
     "attrs": {"f": "n3", "d": "n1", "form": "sop"}}
"""

from __future__ import annotations

import json
import time
from typing import Callable, Dict, IO, Iterable, List, Optional, Union

#: Bumped when an event's required fields change.
TRACE_SCHEMA_VERSION = 1

#: Span kinds the pipeline emits.  ``validate_trace_event`` accepts
#: unknown kinds (forward compatibility) but the profile rollup and
#: the schema tests key off this set.
SPAN_KINDS = frozenset(
    {
        "run",        # one substitute_network call
        "pass",       # one sweep over the network
        "enumerate",  # candidate-pair enumeration (serial or engine)
        "speculate",  # engine: evaluate all pairs against the snapshot
        "pair",       # one (dividend, divisor) candidate
        "divide",     # one boolean_divide invocation
        "atpg",       # one redundancy-removal loop (region or generic)
        "commit",     # apply + accept bookkeeping of one rewrite
        "verify",     # an equivalence check (per-commit or ledger)
        "sat_solve",  # one CDCL solve (equivalence or fault miter)
        "worker_batch",  # one shard evaluated by a worker context
        "resub_window",    # simguided: divisor window for one target
        "resub_resyn",     # simguided: subset enumeration + resynthesis
        "resub_validate",  # simguided: exact check of one candidate
        "shm_publish",   # engine: signature bitmap published to /dev/shm
        "delta_apply",   # worker: catch-up replay of commit deltas
        "delta_ship",    # engine: cumulative delta handed to a shard
        # Live-telemetry instants (zero-duration point events).
        "resource_sample",  # RSS / CPU / GC / shm usage snapshot
        "heartbeat",        # worker liveness mark at a batch boundary
        "stall",            # watchdog: shard silent past the threshold
    }
)

_REQUIRED_FIELDS = ("v", "kind", "id", "parent", "proc", "start", "end",
                    "dur", "cpu", "attrs")


class _NullSpan:
    """Shared do-nothing span; the whole cost of disabled tracing."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """The disabled tracer: every operation is a no-op."""

    __slots__ = ()

    enabled = False
    proc = "null"

    @property
    def events(self) -> List[dict]:
        return []

    def span(self, kind: str, **attrs) -> _NullSpan:
        return _NULL_SPAN

    def instant(self, kind: str, **attrs) -> None:
        pass

    def set_sink(self, sink) -> None:
        pass

    def drain(self) -> List[dict]:
        return []

    def absorb(self, events: Iterable[dict]) -> None:
        pass

    def export_jsonl(self, destination) -> None:
        pass


#: Module-level singleton used as the default tracer everywhere.
NULL_TRACER = NullTracer()


def as_tracer(tracer: Optional[object]):
    """Normalize an optional tracer argument (``None`` → disabled)."""
    return NULL_TRACER if tracer is None else tracer


class Span:
    """One open interval; records an event dict on exit."""

    __slots__ = ("_tracer", "kind", "span_id", "parent_id", "attrs",
                 "_t0", "_c0")

    def __init__(self, tracer: "Tracer", kind: str, attrs: Dict[str, object]):
        self._tracer = tracer
        self.kind = kind
        self.attrs = attrs
        self.span_id = -1
        self.parent_id = -1
        self._t0 = 0.0
        self._c0 = 0.0

    def annotate(self, **attrs) -> None:
        """Attach attributes discovered while the span is open."""
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        self.span_id = tracer._next_id
        tracer._next_id += 1
        stack = tracer._stack
        self.parent_id = stack[-1] if stack else -1
        stack.append(self.span_id)
        self._t0 = tracer._clock()
        self._c0 = tracer._cpu_clock()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        tracer = self._tracer
        t1 = tracer._clock()
        c1 = tracer._cpu_clock()
        tracer._stack.pop()
        if exc_type is not None:
            # A span cut short by an unwinding exception (e.g. a
            # budget stop) is still a closed interval; mark it so
            # profiles can tell truncated phases apart.
            self.attrs.setdefault("aborted", exc_type.__name__)
        tracer._emit(
            {
                "v": TRACE_SCHEMA_VERSION,
                "kind": self.kind,
                "id": self.span_id,
                "parent": self.parent_id,
                "proc": tracer.proc,
                "start": self._t0,
                "end": t1,
                "dur": t1 - self._t0,
                "cpu": c1 - self._c0,
                "attrs": self.attrs,
            }
        )
        return False


class Tracer:
    """An enabled tracer: records spans into :attr:`events`.

    *clock* / *cpu_clock* are injectable for tests (defaults:
    :func:`time.perf_counter` / :func:`time.process_time`).  *proc*
    labels every event this tracer records; worker processes use
    ``worker-<pid>`` so merged traces stay attributable.

    *sink*, when set, is called with every event dict the moment it is
    recorded (span close, :meth:`instant`, or :meth:`absorb`) — the
    hook live streaming and the telemetry bus hang off.  A sink must
    never affect the run: the first exception it raises detaches it
    (recorded in :attr:`sink_error`) and recording continues.
    """

    __slots__ = ("events", "proc", "_clock", "_cpu_clock", "_next_id",
                 "_stack", "_sink", "sink_error")

    enabled = True

    def __init__(
        self,
        clock: Callable[[], float] = time.perf_counter,
        cpu_clock: Callable[[], float] = time.process_time,
        proc: str = "main",
        sink: Optional[Callable[[dict], None]] = None,
    ):
        self.events: List[dict] = []
        self.proc = proc
        self._clock = clock
        self._cpu_clock = cpu_clock
        self._next_id = 0
        self._stack: List[int] = []
        self._sink = sink
        self.sink_error: Optional[BaseException] = None

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def span(self, kind: str, **attrs) -> Span:
        """A context manager timing one *kind* interval."""
        return Span(self, kind, attrs)

    def instant(self, kind: str, **attrs) -> None:
        """Record a zero-duration point event (heartbeat, marker)."""
        span_id = self._next_id
        self._next_id += 1
        now = self._clock()
        self._emit(
            {
                "v": TRACE_SCHEMA_VERSION,
                "kind": kind,
                "id": span_id,
                "parent": self._stack[-1] if self._stack else -1,
                "proc": self.proc,
                "start": now,
                "end": now,
                "dur": 0.0,
                "cpu": 0.0,
                "attrs": attrs,
            }
        )

    def set_sink(self, sink: Optional[Callable[[dict], None]]) -> None:
        """Install (or clear) the per-event sink hook."""
        self._sink = sink

    def _emit(self, event: dict) -> None:
        self.events.append(event)
        sink = self._sink
        if sink is not None:
            try:
                sink(event)
            except Exception as exc:  # sinks must never break the run
                self._sink = None
                self.sink_error = exc

    # ------------------------------------------------------------------
    # Multi-process plumbing
    # ------------------------------------------------------------------
    def drain(self) -> List[dict]:
        """Return and clear the recorded events (worker → shard result)."""
        events, self.events = self.events, []
        return events

    def absorb(self, events: Iterable[dict]) -> None:
        """Merge foreign (worker-recorded) events into this trace.

        Events keep their own ``proc``/``id``/timestamps — ``(proc,
        id)`` stays unique and durations stay exact; only ordering
        across clock domains is approximate.
        """
        if self._sink is None:
            self.events.extend(events)
        else:
            for event in events:
                self._emit(event)

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export_jsonl(self, destination: Union[str, IO[str]]) -> None:
        """Write one JSON object per line to a path or file object."""
        if hasattr(destination, "write"):
            self._write(destination)
        else:
            with open(destination, "w") as handle:
                self._write(handle)

    def _write(self, handle: IO[str]) -> None:
        for event in self.events:
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")


# ----------------------------------------------------------------------
# Schema validation and reading (used by tests and tooling)
# ----------------------------------------------------------------------
def validate_trace_event(event: dict) -> None:
    """Raise ``ValueError`` unless *event* matches the trace schema."""
    if not isinstance(event, dict):
        raise ValueError(f"event must be a dict, got {type(event).__name__}")
    missing = [f for f in _REQUIRED_FIELDS if f not in event]
    if missing:
        raise ValueError(f"event missing fields {missing}: {event!r}")
    if event["v"] != TRACE_SCHEMA_VERSION:
        raise ValueError(f"unsupported schema version {event['v']!r}")
    if not isinstance(event["kind"], str) or not event["kind"]:
        raise ValueError(f"bad kind {event['kind']!r}")
    if not isinstance(event["id"], int) or event["id"] < 0:
        raise ValueError(f"bad span id {event['id']!r}")
    if not isinstance(event["parent"], int) or event["parent"] < -1:
        raise ValueError(f"bad parent id {event['parent']!r}")
    if not isinstance(event["proc"], str) or not event["proc"]:
        raise ValueError(f"bad proc label {event['proc']!r}")
    for field in ("start", "end", "dur", "cpu"):
        if not isinstance(event[field], (int, float)):
            raise ValueError(f"non-numeric {field}: {event[field]!r}")
    if event["end"] < event["start"]:
        raise ValueError("span ends before it starts")
    if event["dur"] < 0 or event["cpu"] < 0:
        raise ValueError("negative duration")
    if not isinstance(event["attrs"], dict):
        raise ValueError(f"attrs must be a dict: {event['attrs']!r}")


def read_jsonl(
    path,
    tolerant: bool = False,
    on_warning: Optional[Callable[[str], None]] = None,
) -> List[dict]:
    """Load and validate a trace file; returns the event dicts.

    With ``tolerant=True`` a malformed **final** line — the normal
    end-state of a streaming trace whose writer was killed mid-write —
    is dropped with a warning (via *on_warning*) instead of raising.
    Malformed lines anywhere else still raise: they mean corruption,
    not truncation.
    """
    events: List[dict] = []
    with open(path) as handle:
        lines = handle.readlines()
    last_nonempty = 0
    for lineno, line in enumerate(lines, start=1):
        if line.strip():
            last_nonempty = lineno
    for lineno, line in enumerate(lines, start=1):
        line = line.strip()
        if not line:
            continue
        try:
            event = json.loads(line)
            validate_trace_event(event)
        except (json.JSONDecodeError, ValueError) as exc:
            if tolerant and lineno == last_nonempty:
                if on_warning is not None:
                    on_warning(
                        f"{path}:{lineno}: dropping truncated trailing "
                        f"line ({exc})"
                    )
                break
            kind = "not JSON" if isinstance(exc, json.JSONDecodeError) else ""
            prefix = f"{path}:{lineno}: "
            msg = f"{prefix}not JSON: {exc}" if kind else f"{prefix}{exc}"
            raise ValueError(msg) from exc
        events.append(event)
    return events
