"""Observability for the division pipeline: tracing, metrics, profiles.

Three zero-dependency building blocks:

* :mod:`repro.obs.tracer` — nestable wall/CPU spans with an injectable
  clock, JSONL export, and a no-op tracer whose use is near-free and
  leaves runs byte-identical (the default everywhere);
* :mod:`repro.obs.metrics` — a registry of counters/gauges/timing
  summaries that folds the run's ad-hoc ledgers
  (:class:`~repro.core.substitution.SubstitutionStats`, executor fault
  counters, :class:`~repro.resilience.budget.BudgetReport`) into one
  JSON-ready snapshot;
* :mod:`repro.obs.profile` — per-phase rollups (pass /
  pair-enumeration / divide / ATPG-region-removal / commit / verify)
  over a trace's events.

The tracer is threaded through :func:`~repro.core.substitution.
substitute_network`, the division engine, the ATPG loops and the
parallel stack — worker processes record spans locally and ship them
back with their shard results, so one merged trace covers a
multi-process run.  The CLI exposes ``--trace FILE.jsonl`` and
``--profile``.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SPAN_KINDS,
    TRACE_SCHEMA_VERSION,
    Tracer,
    as_tracer,
    read_jsonl,
    validate_trace_event,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimingSummary,
    metrics_from_run,
    run_snapshot,
)
from repro.obs.profile import (
    PROFILE_PHASES,
    format_profile,
    profile_events,
    profile_tracer,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SPAN_KINDS",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "as_tracer",
    "read_jsonl",
    "validate_trace_event",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "TimingSummary",
    "metrics_from_run",
    "run_snapshot",
    "PROFILE_PHASES",
    "format_profile",
    "profile_events",
    "profile_tracer",
]
