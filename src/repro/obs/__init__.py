"""Observability for the division pipeline: tracing, metrics, profiles.

Three zero-dependency building blocks:

* :mod:`repro.obs.tracer` — nestable wall/CPU spans with an injectable
  clock, JSONL export, and a no-op tracer whose use is near-free and
  leaves runs byte-identical (the default everywhere);
* :mod:`repro.obs.metrics` — a registry of counters/gauges/timing
  summaries that folds the run's ad-hoc ledgers
  (:class:`~repro.core.substitution.SubstitutionStats`, executor fault
  counters, :class:`~repro.resilience.budget.BudgetReport`) into one
  JSON-ready snapshot;
* :mod:`repro.obs.profile` — per-phase rollups (pass /
  pair-enumeration / divide / ATPG-region-removal / commit / verify)
  over a trace's events.

Built on top of those, the analytics storey (PR 5):

* :mod:`repro.obs.analyze` — span-forest reconstruction, critical
  path, per-kind/per-proc self-time aggregates, hottest spans, worker
  utilization and speculative-store reuse rates (``repro trace
  report``);
* :mod:`repro.obs.export` — lossless Chrome trace-event / Perfetto
  conversion and folded-stack flamegraph lines (``repro trace
  chrome|flame``);
* :mod:`repro.obs.history` — the append-only cross-PR run ledger
  ``benchmarks/results/history.jsonl`` (metrics snapshot + machine
  fingerprint + git SHA + config hash per run);
* :mod:`repro.obs.regress` — the snapshot comparator behind ``repro
  compare`` and ``scripts/check_regression.py`` (exact equality for
  deterministic counters, slack-thresholded wall times).

And the live-telemetry storey (PR 10):

* :mod:`repro.obs.stream` — the per-event layer: ``TelemetryBus``
  pub/sub fan-out, a crash-durable streaming JSONL sink (what
  ``--trace`` writes through now), and tolerant trace reading for
  truncated tails;
* :mod:`repro.obs.resource` — a background sampler emitting
  ``resource_sample`` instants (RSS / peak RSS, CPU split, GC
  collections and pause wall, ``/dev/shm`` signature usage);
* :mod:`repro.obs.health` — worker heartbeat files and the
  executor-side stall watchdog behind ``--heartbeat-dir`` /
  ``--stall-timeout``;
* :mod:`repro.obs.live` — the ``--live`` progress line and the
  ``repro tail`` follower.

The tracer is threaded through :func:`~repro.core.substitution.
substitute_network`, the division engine, the ATPG loops and the
parallel stack — worker processes record spans locally and ship them
back with their shard results, so one merged trace covers a
multi-process run.  The CLI exposes ``--trace FILE.jsonl`` and
``--profile``.
"""

from repro.obs.tracer import (
    NULL_TRACER,
    NullTracer,
    SPAN_KINDS,
    TRACE_SCHEMA_VERSION,
    Tracer,
    as_tracer,
    read_jsonl,
    validate_trace_event,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    MetricsRegistry,
    TimingSummary,
    metrics_from_run,
    run_snapshot,
)
from repro.obs.profile import (
    PROFILE_PHASES,
    format_profile,
    profile_events,
    profile_tracer,
)
from repro.obs.analyze import (
    analyze_trace,
    build_forest,
    critical_path,
    format_report,
    ledger_rates,
    top_spans,
    worker_utilization,
)
from repro.obs.export import (
    chrome_to_events,
    export_chrome_trace,
    export_folded_stacks,
    to_chrome_trace,
    to_folded_stacks,
)
from repro.obs.history import (
    DEFAULT_HISTORY_PATH,
    HISTORY_SCHEMA_VERSION,
    append_record,
    latest_record,
    make_record,
    read_history,
)
from repro.obs.regress import (
    ComparisonReport,
    compare_snapshots,
    format_comparison,
    load_comparable,
)
from repro.obs.stream import (
    StreamingJsonlSink,
    Subscription,
    TelemetryBus,
    fanout,
)
from repro.obs.resource import (
    GcPauseMonitor,
    ResourceSampler,
    sample_attrs,
)
from repro.obs.health import (
    StallWatchdog,
    read_heartbeats,
    stale_workers,
    write_heartbeat,
)
from repro.obs.live import (
    LiveProgress,
    TailReporter,
    follow_trace,
)

__all__ = [
    "NULL_TRACER",
    "NullTracer",
    "SPAN_KINDS",
    "TRACE_SCHEMA_VERSION",
    "Tracer",
    "as_tracer",
    "read_jsonl",
    "validate_trace_event",
    "Counter",
    "Gauge",
    "MetricsRegistry",
    "TimingSummary",
    "metrics_from_run",
    "run_snapshot",
    "PROFILE_PHASES",
    "format_profile",
    "profile_events",
    "profile_tracer",
    "analyze_trace",
    "build_forest",
    "critical_path",
    "format_report",
    "ledger_rates",
    "top_spans",
    "worker_utilization",
    "chrome_to_events",
    "export_chrome_trace",
    "export_folded_stacks",
    "to_chrome_trace",
    "to_folded_stacks",
    "DEFAULT_HISTORY_PATH",
    "HISTORY_SCHEMA_VERSION",
    "append_record",
    "latest_record",
    "make_record",
    "read_history",
    "ComparisonReport",
    "compare_snapshots",
    "format_comparison",
    "load_comparable",
    "StreamingJsonlSink",
    "Subscription",
    "TelemetryBus",
    "fanout",
    "GcPauseMonitor",
    "ResourceSampler",
    "sample_attrs",
    "StallWatchdog",
    "read_heartbeats",
    "stale_workers",
    "write_heartbeat",
    "LiveProgress",
    "TailReporter",
    "follow_trace",
]
