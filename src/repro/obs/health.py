"""Worker liveness: heartbeat files and the executor stall watchdog.

Two complementary liveness channels, both default-off:

* **Heartbeats.**  Persistent-pool workers mark progress at every
  batch boundary: a ``heartbeat`` instant event on the worker tracer
  (merged into the trace like spans) plus, when a *heartbeat_dir* is
  configured, a small JSON file per worker pid overwritten in place
  (crash-durable — an operator can ``cat`` the directory to see what
  every worker last reported even after the run died).  The shard
  result channel piggybacks the same mark, which is what the
  executor's ``health.heartbeats_recorded`` counter counts.
* **Stall watchdog.**  :class:`StallWatchdog` is the executor-side
  bookkeeping for "a shard has been silent too long": per-shard
  dispatch timestamps, silence measurement, and schema-v1 ``stall``
  event construction.  The executor polls in-flight futures with the
  configured timeout and, when the watchdog flags a shard, feeds it
  into the PR-3 containment ladder (redispatch → fresh pool →
  in-process fallback) instead of blocking forever.

Stall detection is wall-clock-dependent by nature, so everything here
lands in the non-gated ``health.*`` metrics namespace — never in
``DETERMINISTIC_COUNTERS``.
"""

from __future__ import annotations

import json
import os
import time
from typing import Callable, Dict, List, Optional

from repro.obs.tracer import TRACE_SCHEMA_VERSION

#: Filename suffix of per-worker heartbeat files.
HEARTBEAT_SUFFIX = ".heartbeat.json"

#: proc label of watchdog-authored stall events — its own id space,
#: so watchdog instants never collide with main-tracer span ids.
WATCHDOG_PROC = "watchdog"


def heartbeat_path(directory: str, pid: int) -> str:
    return os.path.join(directory, f"worker-{pid}{HEARTBEAT_SUFFIX}")


def write_heartbeat(
    directory: str,
    pid: int,
    batch: int,
    pairs_done: int,
    generation: int,
    clock: Callable[[], float] = time.time,
) -> Optional[str]:
    """Overwrite this worker's heartbeat file; returns its path.

    Best-effort: any OS error returns ``None`` — liveness reporting
    must never fail a batch.
    """
    record = {
        "v": 1,
        "pid": pid,
        "ts": clock(),
        "batch": batch,
        "pairs_done": pairs_done,
        "generation": generation,
    }
    path = heartbeat_path(directory, pid)
    try:
        os.makedirs(directory, exist_ok=True)
        tmp = f"{path}.tmp.{pid}"
        with open(tmp, "w") as handle:
            json.dump(record, handle, sort_keys=True)
        os.replace(tmp, path)
    except OSError:
        return None
    return path


def read_heartbeats(directory: str) -> List[dict]:
    """Parse every heartbeat file in *directory* (unreadable → skipped)."""
    beats: List[dict] = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        return beats
    for name in names:
        if not name.endswith(HEARTBEAT_SUFFIX):
            continue
        try:
            with open(os.path.join(directory, name)) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            continue
        if isinstance(record, dict):
            beats.append(record)
    return beats


def stale_workers(
    directory: str,
    threshold_seconds: float,
    now: Optional[float] = None,
) -> List[dict]:
    """Heartbeat records older than *threshold_seconds* (suspect pids)."""
    now = time.time() if now is None else now
    return [
        beat
        for beat in read_heartbeats(directory)
        if now - float(beat.get("ts", 0.0)) > threshold_seconds
    ]


class StallWatchdog:
    """Per-shard silence bookkeeping for the process executor.

    The executor notes every dispatch (:meth:`note_dispatch`) and
    every completion (:meth:`note_result`); when a blocking wait times
    out it asks :meth:`flag_stall` to mint a schema-v1 ``stall`` event
    and bump the counters.  The watchdog holds no threads of its own —
    the executor's existing wait loop *is* the polling loop, with the
    timeout supplying the cadence.
    """

    def __init__(
        self,
        threshold_seconds: float,
        clock: Callable[[], float] = time.perf_counter,
    ):
        if threshold_seconds <= 0:
            raise ValueError(
                f"stall threshold must be positive: {threshold_seconds}"
            )
        self.threshold_seconds = threshold_seconds
        self.stalls_flagged = 0
        self._clock = clock
        self._dispatched_at: Dict[int, float] = {}
        self._next_id = 0

    def note_dispatch(self, shard_index: int) -> None:
        self._dispatched_at[shard_index] = self._clock()

    def note_result(self, shard_index: int) -> None:
        self._dispatched_at.pop(shard_index, None)

    def silence(self, shard_index: int) -> float:
        """Seconds since *shard_index* was dispatched (0 if unknown)."""
        dispatched = self._dispatched_at.get(shard_index)
        if dispatched is None:
            return 0.0
        return max(0.0, self._clock() - dispatched)

    def flag_stall(self, shard_index: int, retries: int = 0) -> dict:
        """Record one stall; returns the ``stall`` trace event."""
        silent = self.silence(shard_index)
        self.stalls_flagged += 1
        now = self._clock()
        span_id = self._next_id
        self._next_id += 1
        return {
            "v": TRACE_SCHEMA_VERSION,
            "kind": "stall",
            "id": span_id,
            "parent": -1,
            "proc": WATCHDOG_PROC,
            "start": now,
            "end": now,
            "dur": 0.0,
            "cpu": 0.0,
            "attrs": {
                "shard": shard_index,
                "silent_seconds": silent,
                "threshold_seconds": self.threshold_seconds,
                "retries": retries,
            },
        }
