"""Live telemetry plumbing: the event bus and the streaming sink.

PR 4 made every span a JSON-ready dict, but the trace only left the
process in one ``export_jsonl`` call after a successful run — a crash
or ``kill -9`` lost everything.  This module turns the per-event sink
hook on :class:`~repro.obs.tracer.Tracer` into live infrastructure:

* :class:`TelemetryBus` — a tiny in-process pub/sub fanout.  Pull
  subscribers get a bounded queue (:class:`Subscription`) that drops
  the *oldest* events under backpressure and counts what it dropped;
  push subscribers (:meth:`TelemetryBus.attach`) are called inline.
  The bus is thread-safe because the resource sampler publishes from
  a background thread.
* :class:`StreamingJsonlSink` — a crash-durable JSONL writer that
  appends each event the moment it closes, with a configurable flush
  cadence (default: every line).  For a run that completes, the file
  is byte-identical to what ``Tracer.export_jsonl`` would have
  written, because both serialize ``json.dumps(event,
  sort_keys=True)`` per line in recording order.
* :func:`fanout` — compose several sinks into one tracer hook.

None of this runs unless explicitly constructed: disabled-telemetry
runs keep the NULL_TRACER fast path and stay byte-identical.
"""

from __future__ import annotations

import json
import threading
from collections import deque
from typing import Callable, List, Optional


class Subscription:
    """A bounded event queue handed out by :meth:`TelemetryBus.subscribe`.

    Holds at most *maxlen* events; when full, the oldest event is
    dropped and :attr:`dropped` incremented — a slow reader can lag
    but can never stall the optimizer or grow memory without bound.
    """

    def __init__(self, maxlen: int = 4096):
        if maxlen <= 0:
            raise ValueError(f"maxlen must be positive, got {maxlen}")
        self.maxlen = maxlen
        self.dropped = 0
        self._events: deque = deque()
        self._lock = threading.Lock()

    def push(self, event: dict) -> None:
        with self._lock:
            if len(self._events) >= self.maxlen:
                self._events.popleft()
                self.dropped += 1
            self._events.append(event)

    def drain(self) -> List[dict]:
        """Return and clear everything queued since the last drain."""
        with self._lock:
            events = list(self._events)
            self._events.clear()
        return events

    def __len__(self) -> int:
        with self._lock:
            return len(self._events)


class TelemetryBus:
    """In-process pub/sub fanout for trace events.

    ``bus.publish`` is itself a valid tracer sink
    (``Tracer(sink=bus.publish)``), so the bus can sit directly behind
    the span stream.  Publishing after :meth:`close` is a silent no-op
    so late worker drains during shutdown never raise.
    """

    def __init__(self):
        self._subscriptions: List[Subscription] = []
        self._callbacks: List[Callable[[dict], None]] = []
        self._lock = threading.Lock()
        self._closed = False
        self.published = 0

    def subscribe(self, maxlen: int = 4096) -> Subscription:
        """Register and return a bounded pull-mode queue."""
        subscription = Subscription(maxlen=maxlen)
        with self._lock:
            self._subscriptions.append(subscription)
        return subscription

    def attach(self, callback: Callable[[dict], None]) -> None:
        """Register a push-mode subscriber invoked inline per event."""
        with self._lock:
            self._callbacks.append(callback)

    def publish(self, event: dict) -> None:
        with self._lock:
            if self._closed:
                return
            subscriptions = list(self._subscriptions)
            callbacks = list(self._callbacks)
            self.published += 1
        for subscription in subscriptions:
            subscription.push(event)
        for callback in callbacks:
            callback(event)

    def close(self) -> None:
        with self._lock:
            self._closed = True

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed


class StreamingJsonlSink:
    """Crash-durable JSONL trace writer; a tracer sink.

    Opens *path* immediately and appends one ``json.dumps(event,
    sort_keys=True)`` line per event — the same bytes, in the same
    order, that ``export_jsonl`` would emit at end of run.  Flushes
    every *flush_every* events (default 1) so a ``kill -9`` loses at
    most the spans still open plus any unflushed tail; with the
    default cadence, every span closed before the kill is on disk.
    """

    def __init__(self, path: str, flush_every: int = 1):
        if flush_every <= 0:
            raise ValueError(f"flush_every must be positive: {flush_every}")
        self.path = path
        self.flush_every = flush_every
        self.events_written = 0
        self._lock = threading.Lock()
        self._handle: Optional[object] = open(path, "w")

    def __call__(self, event: dict) -> None:
        with self._lock:
            handle = self._handle
            if handle is None:
                return
            handle.write(json.dumps(event, sort_keys=True))
            handle.write("\n")
            self.events_written += 1
            if self.events_written % self.flush_every == 0:
                handle.flush()

    def flush(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.flush()

    def close(self) -> None:
        with self._lock:
            handle = self._handle
            self._handle = None
        if handle is not None:
            handle.flush()
            handle.close()

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._handle is None

    def __enter__(self) -> "StreamingJsonlSink":
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.close()
        return False


def fanout(*sinks: Callable[[dict], None]) -> Callable[[dict], None]:
    """Compose sinks into one; each event goes to every sink in order."""
    if len(sinks) == 1:
        return sinks[0]

    def _fan(event: dict) -> None:
        for sink in sinks:
            sink(event)

    return _fan
