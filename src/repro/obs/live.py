"""Real-time front end: the ``--live`` progress line and ``repro tail``.

:class:`LiveProgress` is a push-mode bus subscriber that folds the
span stream into one repainted TTY status line: pass / pair / divide
counters, an estimated literal count (initial literals minus committed
gains), pair throughput with an ETA when the pass total is known
(parallel runs announce it in the ``speculate`` span), RSS from
``resource_sample`` events, and a stall flag.  It writes to stderr so
piped BLIF output stays clean, rate-limits repaints, and takes a lock
because resource samples arrive from the sampler thread.

:func:`follow_trace` implements ``repro tail``: incremental reads of a
(possibly still growing) JSONL trace, tolerant of the torn final line
a live writer leaves mid-append, feeding each parsed event to a
callback until the root ``run`` span closes, the writer goes quiet, or
the caller asked for a single pass.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from typing import Callable, Optional

from repro.obs.tracer import validate_trace_event


def _format_bytes(count: float) -> str:
    for unit in ("B", "KB", "MB", "GB"):
        if count < 1024.0 or unit == "GB":
            return f"{count:.0f}{unit}" if unit == "B" else f"{count:.1f}{unit}"
        count /= 1024.0
    return f"{count:.1f}GB"


def _format_eta(seconds: float) -> str:
    seconds = max(0, int(seconds))
    return f"{seconds // 60}:{seconds % 60:02d}"


class LiveProgress:
    """Fold trace events into a single repainted progress line."""

    def __init__(
        self,
        stream=None,
        clock: Callable[[], float] = time.monotonic,
        min_interval: float = 0.1,
        initial_literals: Optional[int] = None,
        width: int = 110,
    ):
        self.stream = sys.stderr if stream is None else stream
        self.initial_literals = initial_literals
        self.passes = 0
        self.pairs = 0
        self.divides = 0
        self.commits = 0
        self.gain = 0
        self.stalls = 0
        self.heartbeats = 0
        self.rss_bytes = 0
        self.total_pairs_this_pass: Optional[int] = None
        self._clock = clock
        self._min_interval = min_interval
        self._width = width
        self._t0: Optional[float] = None
        self._last_render = 0.0
        self._rendered = False
        self._lock = threading.Lock()
        self.finished = False

    # ------------------------------------------------------------------
    # Event folding
    # ------------------------------------------------------------------
    def on_event(self, event: dict) -> None:
        with self._lock:
            if self._t0 is None:
                self._t0 = self._clock()
            kind = event.get("kind")
            attrs = event.get("attrs") or {}
            if kind == "pair":
                self.pairs += 1
            elif kind == "divide":
                self.divides += 1
            elif kind == "commit":
                self.commits += 1
                gain = attrs.get("gain")
                if isinstance(gain, (int, float)) and attrs.get(
                    "accepted", True
                ):
                    self.gain += int(gain)
            elif kind == "pass":
                self.passes += 1
                self.total_pairs_this_pass = None
            elif kind == "speculate":
                pairs = attrs.get("pairs")
                if isinstance(pairs, int):
                    self.total_pairs_this_pass = pairs
            elif kind == "heartbeat":
                self.heartbeats += 1
            elif kind == "stall":
                self.stalls += 1
            elif kind == "resource_sample":
                rss = attrs.get("rss_bytes")
                if isinstance(rss, (int, float)) and rss > 0:
                    self.rss_bytes = int(rss)
            elif kind == "run":
                self.finished = True
            self._render()

    # ------------------------------------------------------------------
    # Rendering
    # ------------------------------------------------------------------
    def _line(self) -> str:
        elapsed = 0.0
        if self._t0 is not None:
            elapsed = max(0.0, self._clock() - self._t0)
        rate = self.pairs / elapsed if elapsed > 0 else 0.0
        parts = [
            f"pass {self.passes}",
            f"pairs {self.pairs}" + (f" ({rate:.0f}/s)" if rate else ""),
            f"divide {self.divides}",
            f"commits {self.commits}",
        ]
        if self.initial_literals is not None:
            parts.append(f"lits ~{self.initial_literals - self.gain}")
        if self.total_pairs_this_pass and rate > 0:
            remaining = max(0, self.total_pairs_this_pass - self.pairs)
            parts.append(f"eta {_format_eta(remaining / rate)}")
        if self.rss_bytes:
            parts.append(f"rss {_format_bytes(self.rss_bytes)}")
        if self.heartbeats:
            parts.append(f"hb {self.heartbeats}")
        if self.stalls:
            parts.append(f"STALLS {self.stalls}")
        return " · ".join(parts)

    def _render(self, force: bool = False) -> None:
        now = self._clock()
        if not force and now - self._last_render < self._min_interval:
            return
        self._last_render = now
        line = self._line()[: self._width]
        try:
            self.stream.write("\r" + line.ljust(self._width))
            self.stream.flush()
        except (OSError, ValueError):
            return
        self._rendered = True

    def close(self) -> None:
        """Final repaint plus the newline that releases the TTY line."""
        with self._lock:
            self._render(force=True)
            if self._rendered:
                try:
                    self.stream.write("\n")
                    self.stream.flush()
                except (OSError, ValueError):
                    pass


def follow_trace(
    path: str,
    on_event: Callable[[dict], None],
    follow: bool = True,
    poll_seconds: float = 0.2,
    max_idle_seconds: Optional[float] = None,
    sleep: Callable[[float], None] = time.sleep,
    clock: Callable[[], float] = time.monotonic,
    on_warning: Optional[Callable[[str], None]] = None,
) -> int:
    """Stream a (growing) JSONL trace file into *on_event*.

    Returns the number of events delivered.  Stops when the root
    ``run`` span closes (the writer is done), at EOF when *follow* is
    false, or after *max_idle_seconds* without new bytes.  A torn or
    invalid line is only tolerated while it is the current tail —
    if the writer later appends past it, it was corruption and is
    reported through *on_warning* then skipped.
    """
    delivered = 0
    buffer = ""
    idle_since: Optional[float] = None
    with open(path) as handle:
        while True:
            chunk = handle.read()
            if chunk:
                idle_since = None
                buffer += chunk
                *complete, buffer = buffer.split("\n")
                for line in complete:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        event = json.loads(line)
                        validate_trace_event(event)
                    except (json.JSONDecodeError, ValueError) as exc:
                        if on_warning is not None:
                            on_warning(f"skipping bad line: {exc}")
                        continue
                    delivered += 1
                    on_event(event)
                    if event.get("kind") == "run":
                        return delivered
            else:
                if not follow:
                    break
                now = clock()
                if idle_since is None:
                    idle_since = now
                elif (
                    max_idle_seconds is not None
                    and now - idle_since > max_idle_seconds
                ):
                    break
                sleep(poll_seconds)
    # Torn tail at final EOF: the crashed-writer end state.
    tail = buffer.strip()
    if tail:
        try:
            event = json.loads(tail)
            validate_trace_event(event)
        except (json.JSONDecodeError, ValueError):
            if on_warning is not None:
                on_warning("dropping truncated trailing line")
        else:
            delivered += 1
            on_event(event)
    return delivered


class TailReporter:
    """Per-event line printer for ``repro tail`` (on top of the bar).

    Prints one summary line per closed ``pass`` span and per ``stall``
    event — the coarse-grained milestones worth scrolling — while
    :class:`LiveProgress` repaints the fine-grained counters.
    """

    def __init__(self, progress: LiveProgress, stream=None):
        self.progress = progress
        self.stream = sys.stderr if stream is None else stream
        self.events_seen = 0

    def _println(self, text: str) -> None:
        try:
            self.stream.write("\r" + text.ljust(self.progress._width) + "\n")
            self.stream.flush()
        except (OSError, ValueError):
            pass

    def on_event(self, event: dict) -> None:
        self.events_seen += 1
        kind = event.get("kind")
        attrs = event.get("attrs") or {}
        if kind == "pass":
            self._println(
                f"pass {attrs.get('index', '?')}: "
                f"accepted {attrs.get('accepted', '?')} "
                f"({event.get('dur', 0.0):.2f}s)"
            )
        elif kind == "stall":
            self._println(
                f"stall: shard {attrs.get('shard', '?')} silent "
                f"{attrs.get('silent_seconds', 0.0):.1f}s"
            )
        elif kind == "run":
            self._println(
                f"run finished: circuit {attrs.get('circuit', '?')}, "
                f"{attrs.get('accepted', '?')} accepted, "
                f"{event.get('dur', 0.0):.2f}s"
            )
        self.progress.on_event(event)
