"""Regression gating: diff two metrics snapshots, fail on drift.

The comparator behind ``repro compare`` and
``scripts/check_regression.py``.  It reads two metrics snapshots (the
``{"counters", "gauges", "timings"}`` shape of
:func:`~repro.obs.metrics.run_snapshot`, however they are wrapped — a
raw snapshot, a ``--stats-json`` report, or a history record from
:mod:`repro.obs.history`) and applies two different standards:

* **Deterministic metrics** (``divide_calls``, ``accepted``, literal
  counts, …) must be **exactly equal**.  The whole pipeline is
  deterministic by construction — the parallel engine commits through
  the serial greedy order, the sim filter is sound — so *any* drift in
  these is a behavioral change that someone must explain, not noise
  to threshold away.
* **Wall-clock metrics** (``wall_seconds``, timing totals) get a slack
  threshold in percent, and only when the caller asks
  (``--fail-on-regression PCT``): timing comparisons are only
  meaningful between runs on the same machine, which the caller
  asserts by passing the flag.

A metric present in the base but missing from the new snapshot is a
failure too (a silently dropped counter is how regressions hide).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, List, Optional, Tuple, Union

#: Counters whose values are run-to-run deterministic for a fixed
#: (circuit, config, code) triple — exact equality required.
DETERMINISTIC_COUNTERS = (
    "substitution.attempts",
    "substitution.accepted",
    "substitution.wires_removed",
    "substitution.cubes_removed",
    "substitution.cores_extracted",
    "substitution.divide_calls",
    "substitution.divisors_pruned",
    "substitution.variants_pruned",
    "substitution.atpg_incomplete",
    # The speculative-store economics and the delta protocol are
    # deterministic by construction: shards are dispatched and reaped
    # only at points the serial greedy loop itself reaches, never on
    # worker-completion timing (see repro.parallel.engine), so these
    # get the same exact-equality gate for a fixed (circuit, config,
    # jobs, code) tuple.
    "parallel.batches",
    "parallel.pairs_evaluated",
    "parallel.pairs_reused",
    "parallel.pairs_invalidated",
    "parallel.deltas_shipped",
    "parallel.delta_nodes",
    "parallel.pairs_stale_skipped",
    # The CDCL engine behind verify_backend="sat"/"auto" has no
    # randomness — decisions break ties on variable index, restarts
    # are conflict-count driven — so its work counters are exact for
    # a fixed (circuit, config, code) triple; drift means the encoder
    # or the search changed behaviour.  Old baselines without these
    # counters skip them (the predates-the-counter rule above).
    "sat.solves",
    "sat.conflicts",
    "sat.decisions",
    "sat.propagations",
    "sat.learned",
    # The simguided resubstitution engine (repro.resub) is serial and
    # seed-deterministic end to end: windows are ranked by structure,
    # subsets enumerate in a fixed order, the care set comes from the
    # seeded signatures plus exact ODCs, and validation is BDD/CDCL.
    # Any drift here means the windowing, resynthesis, or validation
    # logic changed behaviour.
    "resub.targets",
    "resub.windows",
    "resub.candidates",
    "resub.validated",
    "resub.rejected_unknown",
    "resub.accepted",
    "resub.wires_cleaned",
)

#: Gauges under the same exact-equality contract (the paper's quality
#: numbers).
DETERMINISTIC_GAUGES = (
    "substitution.literals_before",
    "substitution.literals_after",
)

#: Process-resource gauges: machine- and timing-dependent like wall
#: clocks, so they get the same slack treatment — gated only when the
#: caller passes ``--fail-on-regression PCT``, with a regression
#: meaning the *new* value grew past the slack (more peak RSS, more GC
#: churn).  Never exact-gated: allocator behavior and GC scheduling
#: legitimately vary run to run.
RESOURCE_GAUGES = (
    "process.peak_rss_bytes",
    "process.gc_collections",
)

#: For reporting direction: metrics where a *larger* new value is the
#: bad direction.  (Everything deterministic fails on any drift; this
#: only labels the report.)
_HIGHER_IS_WORSE = {
    "substitution.divide_calls",
    "substitution.attempts",
    "substitution.literals_after",
    "substitution.atpg_incomplete",
}


@dataclasses.dataclass
class Delta:
    """One metric's base→new movement and its verdict."""

    metric: str
    base: object
    new: object
    kind: str  # "counter" | "gauge" | "timing" | "wall"
    regression: bool
    note: str = ""

    def as_dict(self) -> Dict[str, object]:
        return dataclasses.asdict(self)


@dataclasses.dataclass
class ComparisonReport:
    """Everything ``repro compare`` prints and gates on."""

    deterministic_mismatches: List[Delta] = dataclasses.field(
        default_factory=list
    )
    time_regressions: List[Delta] = dataclasses.field(default_factory=list)
    time_improvements: List[Delta] = dataclasses.field(
        default_factory=list
    )
    missing_metrics: List[str] = dataclasses.field(default_factory=list)
    compared: int = 0
    time_slack_pct: Optional[float] = None

    @property
    def ok(self) -> bool:
        return (
            not self.deterministic_mismatches
            and not self.time_regressions
            and not self.missing_metrics
        )

    def as_dict(self) -> Dict[str, object]:
        return {
            "ok": self.ok,
            "compared": self.compared,
            "time_slack_pct": self.time_slack_pct,
            "deterministic_mismatches": [
                d.as_dict() for d in self.deterministic_mismatches
            ],
            "time_regressions": [
                d.as_dict() for d in self.time_regressions
            ],
            "time_improvements": [
                d.as_dict() for d in self.time_improvements
            ],
            "missing_metrics": list(self.missing_metrics),
        }


# ----------------------------------------------------------------------
# Snapshot extraction and loading
# ----------------------------------------------------------------------
def extract_snapshot(obj: dict) -> Dict[str, object]:
    """Find the ``{counters, gauges, timings}`` snapshot inside *obj*.

    Accepts a raw snapshot, anything that wraps one under a
    ``"metrics"`` key (``--stats-json`` reports, history records,
    :func:`~repro.scripts.flows.run_method` results), and raises
    ``ValueError`` otherwise.
    """
    if not isinstance(obj, dict):
        raise ValueError(
            f"expected a dict, got {type(obj).__name__}"
        )
    if "counters" in obj and "gauges" in obj and "timings" in obj:
        return obj
    metrics = obj.get("metrics")
    if isinstance(metrics, dict) and "counters" in metrics:
        return metrics
    raise ValueError(
        "no metrics snapshot found (expected counters/gauges/timings, "
        "or a 'metrics' key wrapping them)"
    )


def load_comparable(
    path: Union[str, pathlib.Path],
    *,
    circuit: Optional[str] = None,
) -> Tuple[Dict[str, object], Optional[float], str]:
    """Load a snapshot from a JSON report or a history ledger.

    A ``*.jsonl`` path is treated as a run-history ledger (see
    :mod:`repro.obs.history`) and resolves to its **latest** record,
    optionally filtered by *circuit*.  Anything else must be a JSON
    file carrying a snapshot (``--stats-json`` output, a raw
    snapshot, or a single history record).

    Returns ``(snapshot, wall_seconds_or_None, label)``.
    """
    path = pathlib.Path(path)
    if path.suffix == ".jsonl":
        from repro.obs.history import latest_record, read_history

        records = read_history(path)
        record = latest_record(records, circuit=circuit)
        if record is None:
            wanted = f" for circuit {circuit!r}" if circuit else ""
            raise ValueError(f"{path}: no history record{wanted}")
        label = (
            f"{path.name}@{(record.get('git_sha') or 'unknown')[:12]}"
            f" ({record['bench']}/{record['circuit']})"
        )
        return (
            extract_snapshot(record),
            record.get("wall_seconds"),
            label,
        )
    with open(path) as handle:
        data = json.load(handle)
    wall = data.get("wall_seconds")
    if wall is None and isinstance(data.get("cpu_seconds"), (int, float)):
        # --stats-json reports call their wall clock "cpu_seconds".
        wall = data["cpu_seconds"]
    return extract_snapshot(data), wall, path.name


# ----------------------------------------------------------------------
# Comparison
# ----------------------------------------------------------------------
def _direction_note(metric: str, base, new) -> str:
    if base == new:
        return "equal"
    worse = (new > base) == (metric in _HIGHER_IS_WORSE)
    return "worse" if worse else "better (still a drift)"


def compare_snapshots(
    base: Dict[str, object],
    new: Dict[str, object],
    *,
    time_slack_pct: Optional[float] = None,
    base_wall: Optional[float] = None,
    new_wall: Optional[float] = None,
) -> ComparisonReport:
    """Diff two snapshots; see the module docstring for the standards."""
    base = extract_snapshot(base)
    new = extract_snapshot(new)
    report = ComparisonReport(time_slack_pct=time_slack_pct)

    for metric in DETERMINISTIC_COUNTERS:
        in_base = metric in base["counters"]
        in_new = metric in new["counters"]
        if not in_base:
            continue  # older snapshot predates the counter
        if not in_new:
            report.missing_metrics.append(metric)
            continue
        report.compared += 1
        base_value = base["counters"][metric]
        new_value = new["counters"][metric]
        if base_value != new_value:
            report.deterministic_mismatches.append(
                Delta(
                    metric=metric,
                    base=base_value,
                    new=new_value,
                    kind="counter",
                    regression=True,
                    note=_direction_note(metric, base_value, new_value),
                )
            )
    for metric in DETERMINISTIC_GAUGES:
        if metric not in base["gauges"]:
            continue
        if metric not in new["gauges"]:
            report.missing_metrics.append(metric)
            continue
        report.compared += 1
        base_value = base["gauges"][metric]
        new_value = new["gauges"][metric]
        if base_value != new_value:
            report.deterministic_mismatches.append(
                Delta(
                    metric=metric,
                    base=base_value,
                    new=new_value,
                    kind="gauge",
                    regression=True,
                    note=_direction_note(metric, base_value, new_value),
                )
            )

    if time_slack_pct is not None:
        allowed = 1.0 + time_slack_pct / 100.0
        walls: List[Tuple[str, str, Optional[float], Optional[float]]] = [
            ("wall_seconds", "wall", base_wall, new_wall)
        ]
        for name, summary in sorted(base["timings"].items()):
            new_summary = new["timings"].get(name)
            if new_summary is None:
                continue
            walls.append(
                (
                    f"{name}.total",
                    "timing",
                    summary.get("total"),
                    new_summary.get("total"),
                )
            )
        for metric in RESOURCE_GAUGES:
            base_value = base["gauges"].get(metric)
            new_value = new["gauges"].get(metric)
            if (
                isinstance(base_value, (int, float))
                and isinstance(new_value, (int, float))
                and base_value > 0
            ):
                # base == 0 means the base machine could not read the
                # resource at all — nothing meaningful to gate.
                walls.append(
                    (metric, "resource", float(base_value),
                     float(new_value))
                )
        for metric, kind, base_value, new_value in walls:
            if base_value is None or new_value is None:
                continue
            report.compared += 1
            delta = Delta(
                metric=metric,
                base=base_value,
                new=new_value,
                kind=kind,
                regression=new_value > base_value * allowed,
                note=(
                    f"{(new_value / base_value - 1.0) * 100.0:+.1f}%"
                    if base_value > 0
                    else "base was zero"
                ),
            )
            if delta.regression:
                report.time_regressions.append(delta)
            elif new_value < base_value:
                report.time_improvements.append(delta)
    return report


def _fmt_slack(delta: Delta, value: float) -> str:
    """Seconds for wall/timing rows, a bare count for resource rows."""
    if delta.kind == "resource":
        return f"{value:.0f}"
    return f"{value:.4f}s"


def format_comparison(
    report: ComparisonReport,
    base_label: str = "base",
    new_label: str = "new",
) -> str:
    """Human-readable rendering of a :class:`ComparisonReport`."""
    lines: List[str] = [
        f"compare: {base_label} -> {new_label} "
        f"({report.compared} metric(s) checked)"
    ]
    if report.deterministic_mismatches:
        lines.append("deterministic mismatches (exact equality required):")
        for delta in report.deterministic_mismatches:
            lines.append(
                f"  {delta.metric}: {delta.base} -> {delta.new} "
                f"[{delta.note}]"
            )
    if report.missing_metrics:
        lines.append(
            "metrics present in base but missing from new: "
            + ", ".join(report.missing_metrics)
        )
    if report.time_slack_pct is not None:
        if report.time_regressions:
            lines.append(
                f"wall-time/resource regressions "
                f"(> {report.time_slack_pct:.0f}% slack):"
            )
            for delta in report.time_regressions:
                lines.append(
                    f"  {delta.metric}: {_fmt_slack(delta, delta.base)} -> "
                    f"{_fmt_slack(delta, delta.new)} [{delta.note}]"
                )
        for delta in report.time_improvements:
            lines.append(
                f"  improved: {delta.metric}: "
                f"{_fmt_slack(delta, delta.base)} -> "
                f"{_fmt_slack(delta, delta.new)} [{delta.note}]"
            )
    lines.append("PASS" if report.ok else "FAIL")
    return "\n".join(lines)
