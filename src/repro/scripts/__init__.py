"""Experiment drivers: SIS-style scripts and the table harness."""

from repro.scripts.flows import (
    script_a,
    script_b,
    script_c,
    script_algebraic,
    run_method,
    run_script_table,
    run_script_algebraic_table,
    METHODS,
    SCRIPTS,
)
from repro.scripts.tables import TableRow, TableResult, format_table

__all__ = [
    "script_a",
    "script_b",
    "script_c",
    "script_algebraic",
    "run_method",
    "run_script_table",
    "run_script_algebraic_table",
    "METHODS",
    "SCRIPTS",
    "TableRow",
    "TableResult",
    "format_table",
]
