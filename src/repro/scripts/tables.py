"""Row/series containers and text rendering for the experiment tables.

The layout mirrors the paper's Tables II–V: one row per circuit with
the initial literal count and (lit., cpu) sub-columns per method, plus
``total`` and ``impr.`` summary rows (percentage improvement of each
method's total over the initial total).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List


@dataclasses.dataclass
class TableRow:
    circuit: str
    initial: int
    literals: Dict[str, int] = dataclasses.field(default_factory=dict)
    cpu: Dict[str, float] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass
class TableResult:
    title: str
    methods: List[str]
    rows: List[TableRow] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    def total_initial(self) -> int:
        return sum(row.initial for row in self.rows)

    def total_literals(self, method: str) -> int:
        return sum(row.literals[method] for row in self.rows)

    def total_cpu(self, method: str) -> float:
        return sum(row.cpu[method] for row in self.rows)

    def improvement(self, method: str) -> float:
        """Percentage literal reduction relative to the initial total."""
        initial = self.total_initial()
        if initial == 0:
            return 0.0
        return 100.0 * (initial - self.total_literals(method)) / initial

    def winner(self) -> str:
        return min(self.methods, key=self.total_literals)


_METHOD_LABELS = {
    "sis": "sis resub",
    "basic": "basic",
    "ext": "ext.",
    "ext_gdc": "ext. GDC",
}


def format_table(result: TableResult) -> str:
    """Render the table as aligned monospaced text."""
    methods = result.methods
    header = ["circuit", "init."]
    for method in methods:
        label = _METHOD_LABELS.get(method, method)
        header.extend([f"{label} lit.", "cpu"])

    body: List[List[str]] = []
    for row in result.rows:
        line = [row.circuit, str(row.initial)]
        for method in methods:
            line.append(str(row.literals[method]))
            line.append(f"{row.cpu[method]:.2f}")
        body.append(line)

    totals = ["total", str(result.total_initial())]
    imprs = ["impr.", ""]
    for method in methods:
        totals.append(str(result.total_literals(method)))
        totals.append(f"{result.total_cpu(method):.2f}")
        imprs.append(f"{result.improvement(method):.1f}%")
        imprs.append("")
    body.append(totals)
    body.append(imprs)

    widths = [
        max(len(header[i]), *(len(line[i]) for line in body))
        for i in range(len(header))
    ]

    def render(line: List[str]) -> str:
        return "  ".join(
            cell.rjust(widths[i]) if i else cell.ljust(widths[i])
            for i, cell in enumerate(line)
        )

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [f"== {result.title} ==", render(header), rule]
    lines.extend(render(line) for line in body[:-2])
    lines.append(rule)
    lines.append(render(body[-2]))
    lines.append(render(body[-1]))
    return "\n".join(lines)
