"""SIS-style preparation scripts and the experiment harness.

The paper prepares each benchmark with one of three scripts before a
single substitution run (Section V):

* Script A: ``eliminate 0; simplify``
* Script B: ``eliminate 0; simplify; gcx``
* Script C: ``eliminate 0; simplify; gkx``

and additionally evaluates a complete flow, ``script.algebraic`` with
every ``resub`` occurrence replaced by the method under test.

Methods compared (the paper's four columns): SIS's algebraic
``resub -d`` and the three RAR configurations (basic / ext / ext GDC).
"""

from __future__ import annotations

import dataclasses
import time
from typing import Callable, Dict, Optional

from repro.network.network import Network
from repro.network.factor import network_literals
from repro.network.ops import eliminate, sweep
from repro.network.simplify import simplify
from repro.network.resub import resub
from repro.network.extract import gcx, gkx
from repro.network.verify import exact_equivalent
from repro.core.config import (
    BASIC,
    EXTENDED,
    EXTENDED_GDC,
    SIMGUIDED,
    DivisionConfig,
)
from repro.core.substitution import SubstitutionStats, substitute_network
from repro.obs.metrics import run_snapshot
from repro.obs.tracer import as_tracer
from repro.scripts.tables import TableResult, TableRow


def script_a(network: Network) -> None:
    """``eliminate 0; simplify`` — build complex gates, then minimize."""
    eliminate(network, 0)
    simplify(network)
    sweep(network)


def script_b(network: Network) -> None:
    """Script A followed by greedy common-cube extraction (``gcx``)."""
    script_a(network)
    gcx(network)


def script_c(network: Network) -> None:
    """Script A followed by greedy kernel extraction (``gkx``)."""
    script_a(network)
    gkx(network)


SCRIPTS: Dict[str, Callable[[Network], None]] = {
    "A": script_a,
    "B": script_b,
    "C": script_c,
}


# ----------------------------------------------------------------------
# Substitution methods under comparison
# ----------------------------------------------------------------------
def _sis_resub(network: Network) -> None:
    resub(network, use_complement=True)


def _rar_method(config: DivisionConfig) -> Callable[[Network], object]:
    def run(network: Network):
        return substitute_network(network, config)

    return run


METHODS: Dict[str, Callable[[Network], object]] = {
    "sis": _sis_resub,
    "basic": _rar_method(BASIC),
    "ext": _rar_method(EXTENDED),
    "ext_gdc": _rar_method(EXTENDED_GDC),
    "simguided": _rar_method(SIMGUIDED),
}

#: Base configuration per method name (``None`` for SIS resub, which
#: takes no :class:`DivisionConfig`).  Used by :func:`run_method` to
#: apply per-run overrides such as ``enable_sim_filter``.
METHOD_CONFIGS: Dict[str, Optional[DivisionConfig]] = {
    "sis": None,
    "basic": BASIC,
    "ext": EXTENDED,
    "ext_gdc": EXTENDED_GDC,
    "simguided": SIMGUIDED,
}


def run_method(
    network: Network,
    method: str,
    config_overrides: Optional[Dict[str, object]] = None,
    budget=None,
    tracer=None,
    bus=None,
) -> Dict[str, object]:
    """Apply one substitution method in place; returns lit/cpu stats
    (plus the full :class:`SubstitutionStats` under ``"stats"`` and the
    metrics snapshot under ``"metrics"`` for the RAR methods).

    *config_overrides* replaces fields of the method's base
    :class:`DivisionConfig` (e.g. ``{"enable_sim_filter": False}``);
    it is rejected for methods without one (``"sis"``, ad-hoc
    registrations in :data:`METHODS`).  *budget* is an optional
    :class:`~repro.resilience.budget.RunBudget` shared with the run —
    pass one to spread a single deadline over several calls (also
    rejected for configless methods).  *tracer* is an optional
    :class:`~repro.obs.tracer.Tracer` threaded through the whole run;
    like the other knobs it requires a :class:`DivisionConfig` method —
    SIS resub has no span instrumentation.  *bus* is an optional
    :class:`~repro.obs.stream.TelemetryBus`: its ``publish`` is
    composed into the tracer's per-event sink (alongside any sink the
    caller already installed) so embedding services can subscribe to
    the live span stream without touching the tracer themselves.
    """
    tracer = as_tracer(tracer)
    if bus is not None:
        if not tracer.enabled:
            raise ValueError("run_method: bus requires a real tracer")
        existing = getattr(tracer, "_sink", None)
        if existing is None:
            tracer.set_sink(bus.publish)
        else:
            from repro.obs.stream import fanout

            tracer.set_sink(fanout(existing, bus.publish))
    config = METHOD_CONFIGS.get(method)
    if config_overrides or budget is not None or tracer.enabled:
        if config is None:
            raise ValueError(
                f"method {method!r} takes no DivisionConfig overrides"
            )
        config = dataclasses.replace(config, **(config_overrides or {}))

        def runner(net: Network, config=config):
            return substitute_network(
                net, config, budget=budget, tracer=tracer
            )

    else:
        runner = METHODS[method]
    start = time.perf_counter()
    outcome = runner(network)
    elapsed = time.perf_counter() - start
    result: Dict[str, object] = {
        "literals": network_literals(network),
        "cpu": elapsed,
    }
    if isinstance(outcome, SubstitutionStats):
        # Full run statistics (worker counters included) for callers
        # that report more than the table columns, e.g. the CLI's
        # ``--stats-json``, plus the unified metrics snapshot and the
        # resolved configuration (what run-history records hash, so
        # two runs are only ever compared under the same knobs).
        result["stats"] = dataclasses.asdict(outcome)
        result["metrics"] = run_snapshot(outcome)
        if config is not None:
            result["config"] = dataclasses.asdict(config)
    return result


def _check_equivalence(
    before: Network, after: Network, backend: str = "auto"
) -> bool:
    """Exact equivalence through the configured backend (BDDs for
    small input counts, the SAT miter above the threshold)."""
    return exact_equivalent(before, after, backend=backend)


def run_script_table(
    benchmarks: Dict[str, Network],
    script: str,
    methods: Optional[list] = None,
    verify: bool = True,
    verify_backend: str = "auto",
) -> TableResult:
    """Reproduce one of Tables II–IV.

    *benchmarks* maps circuit names to freshly built networks.  Each is
    prepared with the named script, then every method runs on its own
    copy of the prepared circuit.  Columns mirror the paper: initial
    literal count after the script, then (literals, cpu) per method.
    """
    if methods is None:
        methods = ["sis", "basic", "ext", "ext_gdc"]
    prepare = SCRIPTS[script]
    result = TableResult(
        title=f"Script {script}", methods=list(methods)
    )
    for name, network in benchmarks.items():
        prepared = network.copy(name)
        prepare(prepared)
        initial = network_literals(prepared)
        row = TableRow(circuit=name, initial=initial)
        for method in methods:
            working = prepared.copy(f"{name}:{method}")
            stats = run_method(working, method)
            if verify and not _check_equivalence(
                prepared, working, verify_backend
            ):
                raise AssertionError(
                    f"{method} broke equivalence on {name} (script {script})"
                )
            row.literals[method] = int(stats["literals"])
            row.cpu[method] = stats["cpu"]
        result.rows.append(row)
    return result


# ----------------------------------------------------------------------
# script.algebraic
# ----------------------------------------------------------------------
def script_algebraic(
    network: Network, substitution: Callable[[Network], None]
) -> None:
    """Our rendering of SIS's ``script.algebraic`` flow.

    The real script interleaves sweep/eliminate/simplify with several
    ``resub`` invocations and kernel/cube extraction; every ``resub``
    call site below is replaced by the *substitution* argument, exactly
    as the paper's Table V experiment replaces them with the RAR
    method.
    """
    sweep(network)
    eliminate(network, 0)
    simplify(network)
    substitution(network)  # resub call site 1
    gkx(network)
    substitution(network)  # resub call site 2
    gcx(network)
    substitution(network)  # resub call site 3
    eliminate(network, 0)
    sweep(network)
    simplify(network)


def run_script_algebraic_table(
    benchmarks: Dict[str, Network],
    methods: Optional[list] = None,
    verify: bool = True,
    verify_backend: str = "auto",
) -> TableResult:
    """Reproduce Table V (full flow with resub swapped per method)."""
    if methods is None:
        methods = ["sis", "basic", "ext", "ext_gdc"]
    result = TableResult(title="script.algebraic", methods=list(methods))
    for name, network in benchmarks.items():
        initial = network_literals(network)
        row = TableRow(circuit=name, initial=initial)
        for method in methods:
            working = network.copy(f"{name}:{method}")
            start = time.perf_counter()
            script_algebraic(working, METHODS[method])
            elapsed = time.perf_counter() - start
            if verify and not _check_equivalence(
                network, working, verify_backend
            ):
                raise AssertionError(
                    f"{method} broke equivalence on {name} "
                    "(script.algebraic)"
                )
            row.literals[method] = network_literals(working)
            row.cpu[method] = elapsed
        result.rows.append(row)
    return result
