"""Setuptools entry point.

A legacy setup.py is used (rather than PEP 621 metadata plus a
[build-system] table) so that editable installs work in fully offline
environments that lack the `wheel` package: pip then falls back to the
classic `setup.py develop` path.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="0.1.0",
    description=(
        "Boolean division and substitution via redundancy addition and "
        "removal (Chang & Cheng, DAC 1998 / TCAD 1999)"
    ),
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.9",
    install_requires=["networkx"],
    entry_points={"console_scripts": ["repro-bench=repro.cli:main"]},
)
