"""Three-oracle differential harness: SAT vs BDD vs exhaustive sim.

Every network pair in a seeded ~40-network corpus (the parallel
suite's fuzz generator plus wide extras the BDD oracle alone could
not screen exhaustively) is judged by up to three independent
equivalence oracles:

* the CNF-miter CDCL backend (``repro.sat``),
* the BDD oracle (``networks_equivalent``),
* exhaustive bit-parallel simulation of all ``2**n`` patterns
  (networks with at most 12 shared PIs).

The oracles must agree on equivalent-by-construction pairs (copy +
``eliminate`` / a full ``substitute_network`` run) and on
mutation-injected pairs (a dropped cube or a flipped literal phase),
and every SAT counterexample must replay to a real PO difference.
"""

import pytest

from repro.core.config import BASIC
from repro.core.substitution import substitute_network
from repro.network.ops import eliminate
from repro.network.verify import networks_equivalent
from repro.sat.check import sat_equivalent
from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube
from tests.parallel.test_parallel_vs_serial import _build, _fuzz_cases

pytestmark = pytest.mark.three_oracle

#: Exhaustive simulation is the third oracle only up to this many PIs.
_EXHAUSTIVE_PI_LIMIT = 12

#: Wide extras beyond the parallel suite's 30 cases: the BDD oracle
#: still runs (planted networks stay structurally small), exhaustive
#: simulation bows out above 12 PIs, and seed 424 is the 24-PI
#: acceptance pair from the issue.
_WIDE_CASES = [
    ("sop", 424, 24, 6, 8),
    ("sop", 777, 16, 4, 6),
    ("sop", 901, 20, 5, 6),
    ("sop", 555, 13, 4, 5),
    ("sop", 606, 18, 5, 7),
    ("pos", 271, 13, 3, 5),
    ("pos", 314, 14, 3, 4),
    ("pos", 161, 15, 3, 5),
    ("sop", 808, 22, 6, 6),
    ("sop", 112, 14, 4, 6),
]

CORPUS = _fuzz_cases() + _WIDE_CASES


def _case_id(case):
    return f"{case[0]}{case[1]}_pi{case[2]}"


# ----------------------------------------------------------------------
# Oracles
# ----------------------------------------------------------------------
def _magic_mask(index, width_bits):
    """Packed stimulus for PI *index*: bit ``k`` is bit *index* of k."""
    block = 1 << index
    full = (1 << width_bits) - 1
    unit = ((1 << block) - 1) << block
    return unit * (full // ((1 << (2 * block)) - 1))


def _exhaustive_equivalent(a, b, pis):
    """Truth-table comparison of every PO over all 2**|pis| patterns."""
    width = 1 << len(pis)
    patterns = {
        pi: _magic_mask(i, width) for i, pi in enumerate(pis)
    }
    values_a = a.simulate(patterns, width=width)
    values_b = b.simulate(patterns, width=width)
    return all(values_a[po] == values_b[po] for po in a.pos)


def _replay_counterexample(a, b, counterexample):
    """A SAT counterexample must witness a real PO difference."""
    assignment = {pi: bool(counterexample[pi]) for pi in counterexample}
    values_a = a.evaluate({pi: assignment.get(pi, False) for pi in a.pis})
    values_b = b.evaluate({pi: assignment.get(pi, False) for pi in b.pis})
    assert any(values_a[po] != values_b[po] for po in a.pos), (
        "SAT counterexample does not distinguish the networks"
    )


def _cross_check(a, b):
    """Run all applicable oracles; they must agree.  Returns verdict."""
    sat_verdict = sat_equivalent(a, b)
    assert sat_verdict.complete, "corpus pair exhausted the budget"
    bdd_verdict = networks_equivalent(a, b)
    assert bool(sat_verdict.verdict) == bdd_verdict, (
        "SAT and BDD oracles disagree"
    )
    pis = sorted(set(a.pis) | set(b.pis))
    if len(pis) <= _EXHAUSTIVE_PI_LIMIT:
        sim_verdict = _exhaustive_equivalent(a, b, pis)
        assert sim_verdict == bdd_verdict, (
            "exhaustive simulation disagrees with SAT/BDD"
        )
    if sat_verdict.verdict is False:
        assert sat_verdict.counterexample is not None
        _replay_counterexample(a, b, sat_verdict.counterexample)
    return bool(sat_verdict.verdict)


# ----------------------------------------------------------------------
# Mutations (seeded, structural — may or may not change the function;
# the oracles must agree either way)
# ----------------------------------------------------------------------
def _drop_cube(network):
    """Remove the first cube of the first multi-cube internal node."""
    mutated = network.copy()
    for node in mutated.internal_nodes():
        if node.cover is not None and len(node.cover.cubes) > 1:
            node.cover = Cover(
                node.cover.num_vars, node.cover.cubes[1:]
            )
            return mutated
    return None


def _flip_literal(network):
    """Flip the phase of one literal in the first suitable cube."""
    mutated = network.copy()
    for node in mutated.internal_nodes():
        if node.cover is None:
            continue
        for index, cube in enumerate(node.cover.cubes):
            if cube.pos:
                low = cube.pos & -cube.pos
                cubes = list(node.cover.cubes)
                cubes[index] = Cube(cube.pos & ~low, cube.neg | low)
                node.cover = Cover(node.cover.num_vars, tuple(cubes))
                return mutated
    return None


# ----------------------------------------------------------------------
# The harness
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CORPUS, ids=_case_id)
def test_oracles_agree(case):
    network = _build(case)

    # Equivalent by construction: a copy restructured by eliminate.
    restructured = network.copy()
    eliminate(restructured, 0)
    assert _cross_check(network, restructured) is True

    # Mutation-injected pairs: seeded structural edits.
    for mutate in (_drop_cube, _flip_literal):
        mutated = mutate(network)
        if mutated is not None:
            _cross_check(network, mutated)


@pytest.mark.parametrize(
    "case", [c for i, c in enumerate(_fuzz_cases()) if i % 10 == 0],
    ids=_case_id,
)
def test_oracles_agree_after_substitution(case):
    """A full optimisation run is an equivalent-by-construction pair."""
    network = _build(case)
    optimized = _build(case)
    substitute_network(optimized, BASIC)
    assert _cross_check(network, optimized) is True


def test_mutations_are_detected_somewhere():
    """Sanity: the corpus mutations are not all function-preserving."""
    detected = 0
    for case in CORPUS[:10]:
        network = _build(case)
        mutated = _drop_cube(network)
        if mutated is not None and not networks_equivalent(
            network, mutated
        ):
            detected += 1
    assert detected > 0


# ----------------------------------------------------------------------
# 24-PI acceptance pair (ISSUE 7 acceptance criterion)
# ----------------------------------------------------------------------
def test_wide_equivalent_pair_within_default_budget():
    case = ("sop", 424, 24, 6, 8)
    network = _build(case)
    optimized = _build(case)
    substitute_network(optimized, BASIC)
    verdict = sat_equivalent(network, optimized)
    assert verdict.complete and verdict.verdict is True
    assert verdict.conflicts >= 0


def test_wide_inequivalent_pair_within_default_budget():
    case = ("sop", 424, 24, 6, 8)
    network = _build(case)
    mutated = _drop_cube(network)
    assert mutated is not None
    verdict = sat_equivalent(network, mutated)
    assert verdict.complete and verdict.verdict is False
    assert verdict.counterexample is not None
    _replay_counterexample(network, mutated, verdict.counterexample)
