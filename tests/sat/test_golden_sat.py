"""Golden byte-parity under the SAT verification backend.

The committed golden pair (``tests/parallel/golden``) pins the
optimizer's exact output.  Verification must never perturb it:
a run with ``--verify-backend sat`` — final equivalence proved by the
CNF/CDCL miter instead of BDDs — must still reproduce
``serial_ext.blif`` byte for byte, and ``--verify-commits`` under the
SAT backend must leave the quarantine empty and roll nothing back.
"""

import dataclasses
import json
import pathlib

from repro.cli import main
from repro.core.config import EXTENDED
from repro.core.substitution import substitute_network
from repro.network.blif import read_blif, to_blif_str
from repro.scripts.flows import script_a

GOLDEN = pathlib.Path(__file__).parents[1] / "parallel" / "golden"


def test_sat_backend_matches_committed_golden(tmp_path):
    out = tmp_path / "sat.blif"
    code = main(
        [
            "optimize",
            str(GOLDEN / "input.blif"),
            "--method",
            "ext",
            "--script",
            "A",
            "--verify-backend",
            "sat",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    assert out.read_bytes() == (GOLDEN / "serial_ext.blif").read_bytes()


def test_verify_commits_under_sat_keeps_quarantine_empty(tmp_path):
    out = tmp_path / "sat_verified.blif"
    stats_path = tmp_path / "stats.json"
    code = main(
        [
            "optimize",
            str(GOLDEN / "input.blif"),
            "--method",
            "ext",
            "--script",
            "A",
            "--verify-commits",
            "--verify-backend",
            "sat",
            "--stats-json",
            str(stats_path),
            "-o",
            str(out),
        ]
    )
    assert code == 0
    assert out.read_bytes() == (GOLDEN / "serial_ext.blif").read_bytes()
    report = json.loads(stats_path.read_text())
    sub = report["substitution"]
    assert sub["commits_rolled_back"] == 0
    assert sub["pairs_quarantined"] == 0


def test_sat_full_checks_run_and_pass_on_golden():
    """API-level: force a full check on *every* commit with the SAT
    backend — the solver must actually run (``sat_solves > 0``) and
    agree with every commit (nothing rolled back or quarantined)."""
    network = read_blif((GOLDEN / "input.blif").read_text())
    reference = read_blif((GOLDEN / "input.blif").read_text())
    script_a(network)
    config = dataclasses.replace(
        EXTENDED,
        verify_commits=True,
        verify_full_every=1,
        verify_backend="sat",
    )
    stats = substitute_network(network, config)
    assert stats.accepted > 0
    assert stats.sat_solves > 0
    assert stats.sat_conflicts >= 0
    assert stats.commits_rolled_back == 0
    assert stats.pairs_quarantined == 0
    assert to_blif_str(network) == (
        GOLDEN / "serial_ext.blif"
    ).read_text()
    # The reference copy run without SAT verification matches too:
    # verification is an observer, never a mutator.
    script_a(reference)
    substitute_network(reference, EXTENDED)
    assert to_blif_str(reference) == to_blif_str(network)
