"""Unit and property tests for the CDCL solver and CNF encoders.

Three layers:

* hand-built instances with known verdicts (UNSAT cores, unit
  propagation chains, pigeonhole) pinning the solver's contract,
* a hypothesis property test checking CDCL verdicts against a
  bit-parallel brute-force enumerator on random small CNF,
* Tseitin round-trips: a network encoding is satisfiable exactly by
  assignments consistent with the network's own evaluation.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sat.cnf import Cnf, build_miter, encode_circuit, encode_network
from repro.sat.solver import CdclSolver, solve_cnf
from tests.conftest import random_network


def solve(num_vars, clauses, budget=None):
    return CdclSolver(num_vars, clauses).solve(conflict_budget=budget)


def pigeonhole(pigeons, holes):
    """The classic UNSAT-for-pigeons>holes family (needs real search)."""
    cnf = Cnf()
    var = {
        (p, h): cnf.new_var()
        for p in range(pigeons)
        for h in range(holes)
    }
    for p in range(pigeons):
        cnf.add_clause(var[p, h] for h in range(holes))
    for h in range(holes):
        for p1, p2 in itertools.combinations(range(pigeons), 2):
            cnf.add_clause((-var[p1, h], -var[p2, h]))
    return cnf


class TestHandBuilt:
    def test_empty_formula_is_sat(self):
        result = solve(0, [])
        assert result.satisfiable is True and result.complete

    def test_unit_contradiction(self):
        result = solve(1, [(1,), (-1,)])
        assert result.satisfiable is False and result.complete

    def test_empty_clause_is_unsat(self):
        result = solve(2, [(1, 2), ()])
        assert result.satisfiable is False and result.complete

    def test_tautologies_are_dropped(self):
        result = solve(2, [(1, -1), (2, -2, 1)])
        assert result.satisfiable is True

    def test_unit_propagation_chain_needs_no_decisions(self):
        # a; a->b; b->c; c->d — everything follows by propagation.
        clauses = [(1,), (-1, 2), (-2, 3), (-3, 4)]
        result = solve(4, clauses)
        assert result.satisfiable is True
        assert result.model == {1: True, 2: True, 3: True, 4: True}
        assert result.decisions == 0
        assert result.conflicts == 0

    def test_propagation_chain_into_conflict(self):
        # The same chain plus d must be false: UNSAT at level 0.
        clauses = [(1,), (-1, 2), (-2, 3), (-3, 4), (-4,)]
        result = solve(4, clauses)
        assert result.satisfiable is False and result.complete
        assert result.decisions == 0

    def test_unsat_core_requires_learning(self):
        # All eight clauses over three variables: no assignment works,
        # but no single propagation chain shows it.
        clauses = [
            tuple(
                (v + 1) if (bits >> v) & 1 else -(v + 1)
                for v in range(3)
            )
            for bits in range(8)
        ]
        result = solve(3, clauses)
        assert result.satisfiable is False and result.complete
        assert result.conflicts > 0

    def test_pigeonhole_unsat(self):
        result = solve_cnf(pigeonhole(4, 3))
        assert result.satisfiable is False and result.complete
        assert result.conflicts > 0
        assert result.learned > 0

    def test_pigeonhole_sat_when_it_fits(self):
        result = solve_cnf(pigeonhole(3, 3))
        assert result.satisfiable is True and result.complete

    def test_restarts_fire_on_long_searches(self):
        result = solve_cnf(pigeonhole(7, 6))
        assert result.satisfiable is False and result.complete
        assert result.restarts > 0

    def test_conflict_budget_reports_incomplete(self):
        result = solve_cnf(pigeonhole(4, 3), conflict_budget=1)
        assert result.satisfiable is None
        assert not result.complete
        assert result.model is None
        assert result.conflicts == 1

    def test_deterministic_counters(self):
        first = solve_cnf(pigeonhole(5, 4))
        second = solve_cnf(pigeonhole(5, 4))
        assert (first.conflicts, first.decisions, first.propagations,
                first.learned, first.restarts) == (
            second.conflicts, second.decisions, second.propagations,
            second.learned, second.restarts)


# ----------------------------------------------------------------------
# Property test against a brute-force enumerator
# ----------------------------------------------------------------------
@st.composite
def cnf_st(draw):
    num_vars = draw(st.integers(1, 14))
    literal = st.integers(1, num_vars).flatmap(
        lambda v: st.sampled_from([v, -v])
    )
    clauses = draw(
        st.lists(
            st.lists(literal, min_size=1, max_size=5).map(tuple),
            max_size=40,
        )
    )
    return num_vars, clauses


def brute_force_satisfiable(num_vars, clauses):
    """Bit-parallel truth-table check over all 2**num_vars rows."""
    full = (1 << (1 << num_vars)) - 1

    def literal_mask(lit):
        var = abs(lit) - 1
        block = 1 << var
        unit = ((1 << block) - 1) << block
        positive = unit * (full // ((1 << (2 * block)) - 1))
        return positive if lit > 0 else full & ~positive

    formula = full
    for clause in clauses:
        mask = 0
        for lit in clause:
            mask |= literal_mask(lit)
            if mask == full:
                break
        formula &= mask
        if not formula:
            return False
    return formula != 0


@given(cnf_st())
@settings(max_examples=60, deadline=None)
def test_cdcl_matches_brute_force(case):
    num_vars, clauses = case
    result = solve(num_vars, clauses)
    assert result.complete
    assert result.satisfiable == brute_force_satisfiable(
        num_vars, clauses
    )
    if result.satisfiable:
        for clause in clauses:
            assert any(
                result.model[abs(lit)] == (lit > 0) for lit in clause
            )


# ----------------------------------------------------------------------
# Tseitin round-trips
# ----------------------------------------------------------------------
def _pi_units(values, network, assignment):
    return [
        values[pi] if assignment[pi] else -values[pi]
        for pi in network.pis
    ]


@pytest.mark.parametrize("seed", range(12))
def test_network_encoding_roundtrip(seed):
    """Fixing the PIs forces every node variable to the node's value,
    and contradicting any node's value is UNSAT — the encoding is
    satisfied exactly by consistent gate assignments."""
    network = random_network(seed, n_pis=4, n_nodes=5)
    cnf = Cnf()
    values = encode_network(cnf, network)
    for bits in range(1 << len(network.pis)):
        assignment = {
            pi: bool((bits >> i) & 1)
            for i, pi in enumerate(network.pis)
        }
        expected = network.evaluate(assignment)
        fixed = Cnf()
        fixed.num_vars = cnf.num_vars
        fixed.clauses = list(cnf.clauses)
        for unit in _pi_units(values, network, assignment):
            fixed.add_clause((unit,))
        result = solve_cnf(fixed)
        assert result.satisfiable is True, (seed, assignment)
        for name, var in values.items():
            if name in network.nodes:
                assert result.model[var] == expected[name], (
                    seed, assignment, name
                )
        # Contradict one internal node: must become UNSAT.
        name = network.internal_nodes()[0].name
        fixed.add_clause(
            (-values[name],) if expected[name] else (values[name],)
        )
        assert solve_cnf(fixed).satisfiable is False, (seed, assignment)


def test_circuit_encoding_matches_evaluate():
    from tests.atpg.test_simulate import random_circuit

    for seed in range(10):
        circuit = random_circuit(seed)
        cnf = Cnf()
        values = encode_circuit(cnf, circuit)
        pis = circuit.pis()
        for bits in range(1 << len(pis)):
            assignment = {
                pi: bool((bits >> i) & 1) for i, pi in enumerate(pis)
            }
            expected = circuit.evaluate(assignment)
            fixed = Cnf()
            fixed.num_vars = cnf.num_vars
            fixed.clauses = list(cnf.clauses)
            for pi in pis:
                var = values[pi]
                fixed.add_clause((var if assignment[pi] else -var,))
            result = solve_cnf(fixed)
            assert result.satisfiable is True
            for name, var in values.items():
                assert result.model[var] == expected[name], (
                    seed, assignment, name
                )


def test_miter_rejects_mismatched_outputs():
    a = random_network(1, n_pis=3, n_nodes=3)
    b = random_network(2, n_pis=3, n_nodes=2)
    if sorted(a.pos) != sorted(b.pos):
        with pytest.raises(ValueError):
            build_miter(a, b)


def test_miter_of_identical_networks_is_unsat():
    network = random_network(7, n_pis=4, n_nodes=4)
    miter = build_miter(network, network.copy())
    result = solve_cnf(miter.cnf)
    assert result.satisfiable is False and result.complete


def test_cnf_stats_and_literal_validation():
    cnf = Cnf()
    v1, v2 = cnf.new_var(), cnf.new_var()
    cnf.add_clause((v1, -v2))
    cnf.add_clause((-v1,))
    stats = cnf.stats()
    assert (stats.variables, stats.clauses, stats.literals) == (2, 2, 3)
    with pytest.raises(ValueError):
        cnf.add_clause((0,))
    with pytest.raises(ValueError):
        cnf.add_clause((5,))
