"""Cross-check ``sat_wire_untestable`` against the D-algorithm.

Over the ATPG fault fuzz corpus (every removal-relevant stuck-at
fault of seeded random circuits) the CNF/CDCL untestability oracle
and :func:`repro.atpg.dalg.prove_redundant` must return identical
verdicts whenever both complete, every SAT test vector must actually
expose its fault, and a budget-exhausted SAT proof must be treated
conservatively — NOT redundant — exactly like an out-of-budget
D-algorithm run (the ``atpg_incomplete`` contract).
"""

import pytest

from repro.atpg.dalg import prove_redundant
from repro.atpg.fault import all_wire_faults
from repro.atpg.simulate import faulty_evaluate
from repro.sat.check import (
    sat_wire_redundant_exact,
    sat_wire_untestable,
)
from tests.atpg.test_simulate import random_circuit

pytestmark = pytest.mark.three_oracle

SEEDS = range(40)


def _fault_corpus(seed):
    circuit = random_circuit(seed)
    return circuit, list(all_wire_faults(circuit))


def _observables(circuit):
    """Fanout-free signals — the same default the miters use."""
    return [
        name for name, outs in circuit.fanouts().items() if not outs
    ]


def _assert_vector_exposes(circuit, fault, vector):
    assignment = {pi: bool(vector.get(pi, False)) for pi in circuit.pis()}
    good = circuit.evaluate(assignment)
    bad = faulty_evaluate(circuit, fault, assignment)
    assert any(
        good[po] != bad[po] for po in _observables(circuit)
    ), "SAT test vector does not expose the fault"


@pytest.mark.parametrize("seed", SEEDS)
def test_verdicts_match_dalg(seed):
    circuit, faults = _fault_corpus(seed)
    for fault in faults:
        dalg = prove_redundant(circuit, fault)
        verdict = sat_wire_untestable(circuit, fault)
        if dalg is None or not verdict.complete:
            continue  # one side gave up; nothing to compare
        assert verdict.verdict == dalg, (seed, fault)
        if verdict.verdict is False:
            assert verdict.counterexample is not None
            _assert_vector_exposes(
                circuit, fault, verdict.counterexample
            )


def test_corpus_exercises_both_verdicts():
    """Sanity: the corpus contains testable AND untestable faults."""
    testable = untestable = 0
    for seed in SEEDS:
        circuit, faults = _fault_corpus(seed)
        for fault in faults:
            verdict = sat_wire_untestable(circuit, fault)
            if not verdict.complete:
                continue
            if verdict.verdict:
                untestable += 1
            else:
                testable += 1
    assert testable > 0 and untestable > 0


def test_budget_exhaustion_is_conservative():
    """With a zero conflict budget, any proof that needs at least one
    conflict comes back incomplete — and the redundancy wrapper maps
    that to False (keep the wire), mirroring ``atpg_incomplete``."""
    exercised = False
    for seed in SEEDS:
        circuit, faults = _fault_corpus(seed)
        for fault in faults:
            full = sat_wire_untestable(circuit, fault)
            if not (full.complete and full.verdict and full.conflicts):
                continue
            # An untestable fault whose proof needed >= 1 conflict:
            # the deterministic solver must now run out at budget 0.
            starved = sat_wire_untestable(
                circuit, fault, conflict_budget=0
            )
            assert starved.verdict is None
            assert not starved.complete
            assert (
                sat_wire_redundant_exact(
                    circuit, fault, conflict_budget=0
                )
                is False
            )
            exercised = True
        if exercised:
            break
    assert exercised, "corpus has no conflict-requiring untestable fault"
