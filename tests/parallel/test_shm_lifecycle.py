"""Shared-memory hygiene for the persistent-pool signature protocol.

The engine parks the signature bitmaps in one
``multiprocessing.shared_memory`` segment per establish
(``repro_sig_<pid>_<serial>``): the main process creates and unlinks
it, workers only ever attach and close.  These tests assert the
lifecycle holds on every exit path — normal completion, a worker
killed mid-run, and a ``BudgetExhausted`` early stop — by scanning
``/dev/shm`` for leaked segments, and run a subprocess with warnings
promoted to errors so a ``resource_tracker`` leak report fails loudly
instead of scrolling by at interpreter shutdown.
"""

import dataclasses
import pathlib
import subprocess
import sys

import pytest

from repro.bench.generators import planted_network
from repro.core.config import BASIC
from repro.core.substitution import substitute_network
from repro.network.blif import to_blif_str
from repro.parallel.engine import SHM_PREFIX
from repro.resilience import inject

#: The shm protocol only runs on the real pool; force it (the "auto"
#: backend stays in-process on a single-core machine).
PROC = dataclasses.replace(BASIC, parallel_backend="process")

SHM_DIR = pathlib.Path("/dev/shm")


def _segments():
    if not SHM_DIR.is_dir():  # non-Linux: nothing to scan
        return set()
    return {p.name for p in SHM_DIR.glob(f"{SHM_PREFIX}*")}


def _network(seed=7321):
    return planted_network(
        f"shm{seed}", seed=seed, n_pis=8, n_divisors=3, n_targets=5
    )


@pytest.fixture(autouse=True)
def no_preexisting_segments():
    before = _segments()
    yield
    leaked = _segments() - before
    assert not leaked, f"leaked shared-memory segments: {sorted(leaked)}"


def test_segment_exists_while_engine_is_live():
    """The positive half of the lifecycle: the engine really parks the
    bitmaps in a named segment (so the absence checks below are not
    vacuous), and close() unlinks it."""
    from repro.parallel.engine import SpeculativeEngine
    from repro.sim.filter import DivisorFilter

    config = dataclasses.replace(PROC, n_jobs=2)
    network = _network()
    engine = SpeculativeEngine(config)
    store = engine.precompute(
        network, sim_filter=DivisorFilter(network, config)
    )
    try:
        assert _segments(), "engine did not create a shared segment"
    finally:
        engine.finish_pass(store)
        engine.close()
    assert not _segments()


def test_normal_run_unlinks_segments():
    network = _network()
    stats = substitute_network(network, PROC, n_jobs=2)
    assert stats.parallel_pairs_evaluated > 0
    assert not _segments()


def test_worker_crash_unlinks_segments():
    serial_net = _network()
    substitute_network(serial_net, BASIC)
    network = _network()
    with inject.injected(inject.plan(kill_on_batch=0)):
        stats = substitute_network(network, PROC, n_jobs=2)
    # The kill really happened and recovery still cleaned up.
    assert stats.worker_faults >= 1
    assert to_blif_str(network) == to_blif_str(serial_net)
    assert not _segments()


def test_budget_exhausted_stop_unlinks_segments():
    config = dataclasses.replace(PROC, deadline_seconds=0.0)
    network = _network()
    stats = substitute_network(network, config, n_jobs=2)
    assert stats.budget_report is not None
    assert not _segments()


def test_resource_tracker_reports_no_leaks():
    """Run the pool protocol in a clean interpreter with warnings
    promoted to errors: a segment the resource tracker has to clean up
    after us prints a 'leaked shared_memory' warning at shutdown."""
    script = (
        "import dataclasses\n"
        "from repro.bench.generators import planted_network\n"
        "from repro.core.config import BASIC\n"
        "from repro.core.substitution import substitute_network\n"
        "network = planted_network('shmsub', seed=11, n_pis=8,"
        " n_divisors=3, n_targets=5)\n"
        "config = dataclasses.replace(BASIC,"
        " parallel_backend='process')\n"
        "stats = substitute_network(network, config, n_jobs=2)\n"
        "assert stats.parallel_pairs_evaluated > 0\n"
        "print('OK')\n"
    )
    proc = subprocess.run(
        [sys.executable, "-W", "error", "-c", script],
        capture_output=True,
        text=True,
        timeout=120,
        env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin:/usr/local/bin"},
        cwd=str(pathlib.Path(__file__).resolve().parents[2]),
    )
    assert proc.returncode == 0, proc.stderr
    assert "OK" in proc.stdout
    assert "leaked" not in proc.stderr
    assert "resource_tracker" not in proc.stderr
