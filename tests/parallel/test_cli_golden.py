"""CLI golden test: ``--jobs 2`` reproduces the committed serial BLIF.

``tests/parallel/golden/input.blif`` is a planted network and
``serial_ext.blif`` is the committed output of a serial run::

    python -m repro optimize input.blif --method ext --script A

A parallel run must match it byte for byte, and ``--stats-json`` must
report the worker counters.
"""

import json
import pathlib

import pytest

from repro.cli import main

GOLDEN = pathlib.Path(__file__).parent / "golden"


def test_jobs2_matches_committed_serial_golden(tmp_path):
    out = tmp_path / "parallel.blif"
    stats_path = tmp_path / "stats.json"
    code = main(
        [
            "optimize",
            str(GOLDEN / "input.blif"),
            "--method",
            "ext",
            "--script",
            "A",
            "--jobs",
            "2",
            "--stats-json",
            str(stats_path),
            "-o",
            str(out),
        ]
    )
    assert code == 0
    assert out.read_bytes() == (GOLDEN / "serial_ext.blif").read_bytes()

    report = json.loads(stats_path.read_text())
    assert report["circuit"] == "golden"
    assert report["method"] == "ext"
    assert report["jobs"] == 2
    assert report["literals_final"] <= report["literals_initial"]
    sub = report["substitution"]
    assert sub["parallel_jobs"] == 2
    assert sub["parallel_batches"] > 0
    assert sub["parallel_pairs_evaluated"] > 0
    assert sub["accepted"] > 0


def test_serial_run_still_matches_golden(tmp_path):
    # Guards the golden file itself: if the optimizer's behaviour
    # changes, this fails alongside the parallel test (regenerate the
    # golden) rather than implicating the parallel engine.
    out = tmp_path / "serial.blif"
    code = main(
        [
            "optimize",
            str(GOLDEN / "input.blif"),
            "--method",
            "ext",
            "--script",
            "A",
            "-o",
            str(out),
        ]
    )
    assert code == 0
    assert out.read_bytes() == (GOLDEN / "serial_ext.blif").read_bytes()


def test_stats_json_without_jobs_has_no_worker_activity(tmp_path):
    stats_path = tmp_path / "stats.json"
    code = main(
        [
            "optimize",
            str(GOLDEN / "input.blif"),
            "--method",
            "ext",
            "--script",
            "A",
            "--stats-json",
            str(stats_path),
            "-o",
            str(tmp_path / "out.blif"),
        ]
    )
    assert code == 0
    report = json.loads(stats_path.read_text())
    assert report["jobs"] == 1
    assert report["substitution"]["parallel_pairs_evaluated"] == 0


def test_jobs_rejected_for_sis(tmp_path):
    with pytest.raises(SystemExit):
        main(
            [
                "optimize",
                str(GOLDEN / "input.blif"),
                "--method",
                "sis",
                "--jobs",
                "2",
            ]
        )


def test_jobs_must_be_positive():
    with pytest.raises(SystemExit):
        main(
            ["optimize", str(GOLDEN / "input.blif"), "--jobs", "0"]
        )
