"""Unit tests of the cumulative delta-record protocol.

A resident worker holds its network copy at *some* shipped generation
— possibly the base snapshot (a fresh respawn), possibly any
intermediate ship.  :func:`~repro.parallel.delta.cumulative_record`
must produce one record that brings *all* of those states to the live
network: same ``(fanins, cover)`` per node, same dict insertion order,
no leftover nodes.  These tests drive the tricky histories directly —
rewrites, creations, deletions, created-then-deleted, and
reverted-to-base nodes — and check the replay laws (idempotence,
order-insensitivity of :func:`apply_pending`, no-op updates staying
out of the dirty-root set).
"""

import random

from repro.bench.generators import planted_network
from repro.parallel.delta import (
    apply_pending,
    apply_record,
    capture_states,
    cumulative_record,
    diff_network,
)
from repro.twolevel.complement import complement


def _network(seed=931):
    return planted_network(
        f"delta{seed}", seed=seed, n_pis=7, n_divisors=3, n_targets=4
    )


def _states(network):
    return capture_states(network)


def _order(network):
    return list(network.nodes.keys())


def _rewrite(network, index=0):
    """Complement one internal node's cover (a real, legal rewrite)."""
    node = network.internal_nodes()[index]
    node.set_function(list(node.fanins), complement(node.cover))
    return node.name


class TestDiffRoundtrip:
    def test_diff_apply_reproduces_states_and_order(self):
        live = _network()
        worker = live.copy(live.name)
        shipped = _states(live)
        _rewrite(live, 0)
        pi = live.internal_nodes()[1]
        live.add_node("dx_new", list(pi.fanins), pi.cover)
        record, _ = diff_network(live, shipped, 1)
        assert record.node_count() == 2
        apply_record(worker, record)
        assert _states(worker) == _states(live)
        assert _order(worker) == _order(live)

    def test_empty_diff_for_unchanged_network(self):
        live = _network()
        record, _ = diff_network(live, _states(live), 1)
        assert record.node_count() == 0


class TestCumulativeRecord:
    def test_corrects_worker_at_any_generation(self):
        live = _network()
        base_states = _states(live)
        fresh_worker = live.copy(live.name)  # generation 0
        ever = set()

        _rewrite(live, 0)
        first = cumulative_record(live, base_states, ever, 1)
        ever.update(u.name for u in first.updates)
        behind_worker = live.copy(live.name)  # saw the first ship

        _rewrite(live, 1)
        pi = live.internal_nodes()[2]
        live.add_node("dx_late", list(pi.fanins), pi.cover)
        second = cumulative_record(live, base_states, ever, 2)

        for worker in (fresh_worker, behind_worker):
            apply_record(worker, second)
            assert _states(worker) == _states(live)
            assert _order(worker) == _order(live)

    def test_reverted_node_still_shipped_for_behind_workers(self):
        # A node rewritten (and shipped) then restored to its base
        # state: the live network matches base, but a worker that saw
        # the intermediate ship does not — ever_updated keeps it in
        # the updates.
        live = _network()
        base_states = _states(live)
        node = live.internal_nodes()[0]
        original = (list(node.fanins), node.cover)
        name = _rewrite(live, 0)
        first = cumulative_record(live, base_states, set(), 1)
        ever = {u.name for u in first.updates}
        behind_worker = live.copy(live.name)

        node.set_function(*original)  # revert to base state
        second = cumulative_record(live, base_states, ever, 2)
        assert name in {u.name for u in second.updates}
        apply_record(behind_worker, second)
        assert _states(behind_worker) == _states(live)

    def test_created_then_deleted_node_is_removed_everywhere(self):
        live = _network()
        base_states = _states(live)
        pi = live.internal_nodes()[0]
        live.add_node("dx_tmp", list(pi.fanins), pi.cover)
        first = cumulative_record(live, base_states, set(), 1)
        ever = {u.name for u in first.updates}
        behind_worker = live.copy(live.name)
        assert "dx_tmp" in behind_worker.nodes

        live.remove_node("dx_tmp")
        second = cumulative_record(live, base_states, ever, 2)
        assert "dx_tmp" in second.deletions
        apply_record(behind_worker, second)
        assert "dx_tmp" not in behind_worker.nodes
        assert _states(behind_worker) == _states(live)
        # Harmless for a worker that never saw the node.
        fresh_worker = _network()
        apply_record(fresh_worker, second)
        assert "dx_tmp" not in fresh_worker.nodes

    def test_noop_updates_produce_no_dirty_roots(self):
        # Re-listing every ever-shipped node must not resim their
        # cones on workers that are already current.
        live = _network()
        base_states = _states(live)
        _rewrite(live, 0)
        record = cumulative_record(live, base_states, set(), 1)
        worker = live.copy(live.name)  # already current
        assert apply_record(worker, record) == []
        assert _states(worker) == _states(live)


class TestReplayLaws:
    def _history(self):
        """Three consecutive cumulative records over a mutating net."""
        live = _network()
        base_states = _states(live)
        records = []
        ever = set()
        for generation in (1, 2, 3):
            _rewrite(live, generation % 3)
            record = cumulative_record(
                live, base_states, ever, generation
            )
            ever.update(u.name for u in record.updates)
            records.append(record)
        return live, records

    def test_apply_pending_is_order_insensitive(self):
        live, records = self._history()
        rng = random.Random(17)
        for _ in range(4):
            shuffled = list(records)
            rng.shuffle(shuffled)
            worker = _network()
            generation, _ = apply_pending(worker, shuffled, 0)
            assert generation == 3
            assert _states(worker) == _states(live)

    def test_apply_pending_skips_already_applied(self):
        live, records = self._history()
        worker = _network()
        apply_pending(worker, records, 0)
        generation, roots = apply_pending(worker, records, 3)
        assert generation == 3
        assert roots == []
        assert _states(worker) == _states(live)

    def test_replay_is_idempotent(self):
        live, records = self._history()
        worker = _network()
        apply_pending(worker, records, 0)
        again, roots = apply_pending(worker, [records[-1]], 0)
        assert again == 3
        assert roots == []  # all no-ops: nothing to resim
        assert _states(worker) == _states(live)
