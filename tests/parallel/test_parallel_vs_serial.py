"""Differential fuzz suite: parallel output must be byte-identical.

The speculative engine (:mod:`repro.parallel`) promises that for any
network, config, and job count, the optimized network — down to the
BLIF bytes — matches a serial run, along with the accepted-rewrite
count and final literal total.  This suite checks that promise on
seeded random networks from :mod:`repro.bench.generators` across
process and in-process backends, job counts, and all three paper
configurations.

The quick subset runs in tier-1; the full ~30-network sweep over
``n_jobs = 2..4`` carries the ``bench_smoke`` marker.
"""

import dataclasses
import random

import pytest

from repro.bench.generators import planted_network, planted_pos_network
from repro.core.config import BASIC, EXTENDED, EXTENDED_GDC
from repro.core.substitution import substitute_network
from repro.network.blif import to_blif_str
from repro.resilience import inject


def _fuzz_cases():
    """~30 deterministic (kind, seed, sizes) specs, small but varied."""
    cases = []
    for i in range(20):
        cases.append(
            ("sop", 1000 + 17 * i, 7 + i % 4, 3 + i % 3, 4 + i % 3)
        )
    for i in range(10):
        cases.append(("pos", 5000 + 29 * i, 8 + i % 3, 3, 4 + i % 2))
    return cases


def _build(case):
    kind, seed, n_pis, n_divisors, n_targets = case
    name = f"fuzz_{kind}{seed}"
    builder = planted_network if kind == "sop" else planted_pos_network
    return builder(
        name,
        seed=seed,
        n_pis=n_pis,
        n_divisors=n_divisors,
        n_targets=n_targets,
    )


def _assert_identical(case, config, n_jobs):
    serial_net = _build(case)
    parallel_net = _build(case)
    serial_stats = substitute_network(serial_net, config)
    parallel_stats = substitute_network(parallel_net, config, n_jobs=n_jobs)
    assert to_blif_str(serial_net) == to_blif_str(parallel_net), (
        f"{case} diverged at n_jobs={n_jobs} "
        f"(backend={config.parallel_backend})"
    )
    assert serial_stats.accepted == parallel_stats.accepted
    assert serial_stats.literals_after == parallel_stats.literals_after
    return parallel_stats


QUICK_CASES = _fuzz_cases()[::4]  # every 4th: 8 cases in tier-1

#: The process pool is forced where the pool itself is the subject —
#: the default "auto" backend resolves to the in-process engine on a
#: single-core machine and would silently skip the pool there.
PROC_BASIC = dataclasses.replace(BASIC, parallel_backend="process")


@pytest.mark.parametrize("case", QUICK_CASES, ids=lambda c: f"{c[0]}{c[1]}")
def test_process_pool_matches_serial_basic(case):
    _assert_identical(case, PROC_BASIC, n_jobs=2)


@pytest.mark.parametrize(
    "config, label",
    [(EXTENDED, "ext"), (EXTENDED_GDC, "ext_gdc")],
    ids=["ext", "ext_gdc"],
)
def test_process_pool_matches_serial_extended(config, label):
    config = dataclasses.replace(config, parallel_backend="process")
    _assert_identical(_fuzz_cases()[1], config, n_jobs=2)


def test_inprocess_backend_matches_serial():
    config = dataclasses.replace(BASIC, parallel_backend="serial")
    stats = _assert_identical(_fuzz_cases()[2], config, n_jobs=3)
    # The in-process backend runs the same speculative protocol and
    # reports the requested job count.
    assert stats.parallel_jobs == 3
    assert stats.parallel_pairs_evaluated > 0


def test_parallel_without_sim_filter_matches_serial():
    config = dataclasses.replace(BASIC, enable_sim_filter=False)
    _assert_identical(_fuzz_cases()[3], config, n_jobs=2)


def test_worker_counters_are_reported():
    stats = _assert_identical(_fuzz_cases()[0], BASIC, n_jobs=2)
    assert stats.parallel_jobs == 2
    assert stats.parallel_batches > 0
    assert stats.parallel_pairs_evaluated > 0
    assert (
        stats.parallel_pairs_reused + stats.parallel_pairs_invalidated > 0
    )


@pytest.mark.bench_smoke
@pytest.mark.parametrize("n_jobs", [2, 3, 4])
def test_full_fuzz_sweep(n_jobs):
    """The slow sweep: every seeded network at every job count."""
    for case in _fuzz_cases():
        _assert_identical(case, BASIC, n_jobs=n_jobs)


# ----------------------------------------------------------------------
# Persistent-pool fault fuzz: kills at randomized points
# ----------------------------------------------------------------------
def _fault_plans(case_index):
    """Seeded random fault plans: the kill lands on a different batch
    for every network, and every third case keeps the fault firing
    through pool rebuilds (forcing the in-process fallback rung) —
    between them the respawned workers replay the cumulative delta at
    randomized generations."""
    rng = random.Random(0xD1F * (case_index + 1))
    return inject.plan(
        kill_on_batch=rng.randrange(0, 4),
        persistent=case_index % 3 == 2,
    )


@pytest.mark.fault_injection
@pytest.mark.parametrize(
    "case_index", range(0, len(_fuzz_cases()), 4),
    ids=lambda i: f"case{i}",
)
def test_worker_kills_mid_run_keep_output_identical(case_index):
    case = _fuzz_cases()[case_index]
    with inject.injected(_fault_plans(case_index)):
        _assert_identical(case, PROC_BASIC, n_jobs=2)


@pytest.mark.bench_smoke
@pytest.mark.fault_injection
def test_full_fuzz_sweep_with_worker_kills():
    """Every fuzz network through the persistent pool with a
    randomized mid-run worker kill, byte-compared against serial."""
    for index, case in enumerate(_fuzz_cases()):
        with inject.injected(_fault_plans(index)):
            _assert_identical(case, PROC_BASIC, n_jobs=2)
