"""Pickle round-trips for everything the process pool ships.

The parallel engine pickles a (network, config, signature-snapshot)
payload into each worker and pickles :class:`DivisionResult`-bearing
outcomes back.  Every type on that wire must survive a round-trip at
*every* protocol — the ``__slots__`` classes (Cube, Cover, Node) need
explicit ``__getstate__``/``__setstate__`` for protocols 0 and 1.
"""

import pickle

import pytest

from repro.bench.generators import planted_network
from repro.core.config import BASIC, EXTENDED_GDC, DivisionConfig
from repro.core.division import DivisionResult, divide_node_pair
from repro.network.blif import to_blif_str
from repro.network.network import Network
from repro.network.node import Node
from repro.parallel.worker import PairOutcome, make_payload
from repro.sim.signature import SignatureSimulator
from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube

PROTOCOLS = list(range(pickle.HIGHEST_PROTOCOL + 1))


def _roundtrip(obj, protocol):
    return pickle.loads(pickle.dumps(obj, protocol))


@pytest.mark.parametrize("protocol", PROTOCOLS)
class TestRoundTrips:
    def test_cube(self, protocol):
        cube = Cube.from_literals([(0, True), (2, False), (5, True)])
        clone = _roundtrip(cube, protocol)
        assert clone == cube
        assert (clone.pos, clone.neg) == (cube.pos, cube.neg)

    def test_cover(self, protocol):
        cover = Cover(
            3,
            [
                Cube.from_literals([(0, True), (1, False)]),
                Cube.from_literals([(2, True)]),
            ],
        )
        clone = _roundtrip(cover, protocol)
        assert clone == cover
        assert clone.num_vars == cover.num_vars

    def test_node(self, protocol):
        node = Node(
            "g",
            ["a", "b"],
            Cover(2, [Cube.from_literals([(0, True), (1, True)])]),
        )
        clone = _roundtrip(node, protocol)
        assert clone.name == node.name
        assert clone.fanins == node.fanins
        assert clone.cover == node.cover

    def test_pi_node(self, protocol):
        node = Node("x", [], None)
        clone = _roundtrip(node, protocol)
        assert clone.is_pi and clone.cover is None

    def test_network(self, protocol):
        net = planted_network("pk", seed=3, n_pis=6, n_divisors=2,
                              n_targets=3)
        clone = _roundtrip(net, protocol)
        assert to_blif_str(clone) == to_blif_str(net)
        # Fresh names keep advancing from where the original left off.
        assert clone.fresh_name() == net.fresh_name()

    def test_division_config(self, protocol):
        for config in (BASIC, EXTENDED_GDC, DivisionConfig(n_jobs=3)):
            assert _roundtrip(config, protocol) == config

    def test_division_result(self, protocol):
        net = planted_network("dr", seed=5, n_pis=6, n_divisors=2,
                              n_targets=3)
        result = None
        nodes = [n.name for n in net.internal_nodes()]
        for f_name in nodes:
            for d_name in nodes:
                if f_name == d_name:
                    continue
                result = divide_node_pair(net, f_name, d_name, BASIC)
                if result is not None:
                    break
            if result is not None:
                break
        assert result is not None, "planted network must divide somewhere"
        clone = _roundtrip(result, protocol)
        assert isinstance(clone, DivisionResult)
        assert clone == result

    def test_pair_outcome(self, protocol):
        outcome = PairOutcome("f", "d", False, 4, 2, None)
        clone = _roundtrip(outcome, protocol)
        assert clone == outcome

    def test_signature_snapshot(self, protocol):
        net = planted_network("sig", seed=9, n_pis=6, n_divisors=2,
                              n_targets=3)
        sim = SignatureSimulator(net, patterns=64)
        snapshot = _roundtrip(sim.snapshot(), protocol)
        clone = SignatureSimulator.from_snapshot(net, snapshot)
        for node in net.internal_nodes():
            assert clone.signature(node.name) == sim.signature(node.name)
        assert clone.nodes_resimulated == 0


def test_worker_payload_is_self_contained():
    """The pool payload must unpickle in a fresh interpreter state —
    no references back to the parent's live network."""
    net = planted_network("pl", seed=13, n_pis=6, n_divisors=2,
                          n_targets=3)
    sim = SignatureSimulator(net, patterns=64)
    payload = make_payload(net, BASIC, sim.snapshot())
    assert isinstance(payload, bytes)
    network, config, snapshot, trace, heartbeat_dir = pickle.loads(payload)
    assert network is not net
    assert to_blif_str(network) == to_blif_str(net)
    assert config == BASIC
    assert snapshot["signatures"].keys() == sim.snapshot()["signatures"].keys()
    # Tracing and heartbeats default to off in the payload; workers
    # must not build live tracers or touch the filesystem unless the
    # main process armed them.
    assert trace is False
    assert heartbeat_dir is None
