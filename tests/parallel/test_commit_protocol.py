"""Property tests for the deterministic commit protocol.

The protocol's safety property: a speculative outcome may be committed
only while a fresh evaluation would provably return the same thing —
any committed rewrite whose dividend/divisor state collides with a
stored pair must invalidate that pair (forcing live re-evaluation),
and must never let a stale result through.  These tests drive the
:class:`~repro.parallel.engine.SpeculativeStore` ledger directly with
randomized commit orders and forced support collisions; no process
pool is involved.
"""

import dataclasses
import random

import pytest

from repro.bench.generators import planted_network
from repro.core.config import BASIC
from repro.core.substitution import substitute_network
from repro.parallel.engine import (
    SpeculativeStore,
    enumerate_candidate_pairs,
    shard_pairs,
)
from repro.parallel.worker import PairOutcome
from repro.twolevel.cover import Cover
from repro.twolevel.cube import Cube

from tests.conftest import random_network


def _outcome(f_name, d_name):
    return PairOutcome(f_name, d_name, False, 4, 0, None)


def _rewrite(network, name):
    """Force a support collision: replace *name*'s function in place."""
    node = network.nodes[name]
    # Constant-0 is always a different function than a planted node's.
    node.set_function([], Cover.zero(0))


class TestSpeculativeStore:
    def test_untouched_pairs_stay_valid(self):
        net = random_network(7, n_pis=4, n_nodes=4)
        store = SpeculativeStore(net, whole_network_sensitive=False)
        store.record(_outcome("n0", "n1"))
        assert store.lookup(net, "n0", "n1", mutated=False) is not None
        assert store.reused == 1 and store.invalidated == 0

    def test_unevaluated_pair_misses_without_counting(self):
        net = random_network(7, n_pis=4, n_nodes=4)
        store = SpeculativeStore(net, whole_network_sensitive=False)
        assert store.lookup(net, "n0", "n1", mutated=False) is None
        assert store.reused == 0 and store.invalidated == 0

    @pytest.mark.parametrize("victim", ["n0", "n1"])
    def test_collision_invalidates_either_side(self, victim):
        net = random_network(7, n_pis=4, n_nodes=4)
        store = SpeculativeStore(net, whole_network_sensitive=False)
        store.record(_outcome("n0", "n1"))
        _rewrite(net, victim)
        assert store.lookup(net, "n0", "n1", mutated=True) is None
        assert store.invalidated == 1

    def test_deleted_node_invalidates(self):
        net = random_network(7, n_pis=4, n_nodes=4)
        store = SpeculativeStore(net, whole_network_sensitive=False)
        store.record(_outcome("n0", "n1"))
        del net.nodes["n1"]
        assert store.lookup(net, "n0", "n1", mutated=True) is None

    def test_rewrite_then_restore_revalidates(self):
        # The undo path (_Snapshot.restore on a rejected rewrite) puts
        # the original fanins/cover back; an equal state is exactly as
        # good as an untouched one, so the outcome is usable again.
        net = random_network(7, n_pis=4, n_nodes=4)
        node = net.nodes["n0"]
        saved = (list(node.fanins), node.cover)
        store = SpeculativeStore(net, whole_network_sensitive=False)
        store.record(_outcome("n0", "n1"))
        _rewrite(net, "n0")
        assert store.lookup(net, "n0", "n1", mutated=False) is None
        node.set_function(*saved)
        assert store.lookup(net, "n0", "n1", mutated=False) is not None

    def test_sensitive_store_invalidates_on_any_commit(self):
        # GDC/oracle outcomes depend on the whole circuit: a commit
        # anywhere — even to a node unrelated to the pair — kills them.
        net = random_network(7, n_pis=4, n_nodes=5)
        store = SpeculativeStore(net, whole_network_sensitive=True)
        store.record(_outcome("n0", "n1"))
        assert store.lookup(net, "n0", "n1", mutated=False) is not None
        assert store.lookup(net, "n0", "n1", mutated=True) is None
        assert store.invalidated == 1

    def test_randomized_commit_orders_never_serve_stale(self):
        """The core property: under any commit order, a lookup succeeds
        iff neither endpoint was rewritten (and not restored) — a stale
        apply is impossible by construction."""
        for seed in range(25):
            rng = random.Random(seed)
            net = random_network(seed, n_pis=5, n_nodes=8)
            names = [n.name for n in net.internal_nodes()]
            store = SpeculativeStore(net, whole_network_sensitive=False)
            pairs = [
                (f, d) for f in names for d in names if f != d
            ]
            rng.shuffle(pairs)
            pairs = pairs[:12]
            for f, d in pairs:
                store.record(_outcome(f, d))
            committed = set()
            # Interleave rewrites and lookups in a random order.
            actions = ["rewrite"] * (len(names) // 2) + ["lookup"] * 12
            rng.shuffle(actions)
            for action in actions:
                if action == "rewrite" and len(committed) < len(names):
                    victim = rng.choice(
                        [n for n in names if n not in committed]
                    )
                    _rewrite(net, victim)
                    committed.add(victim)
                else:
                    f, d = rng.choice(pairs)
                    hit = store.lookup(
                        net, f, d, mutated=bool(committed)
                    )
                    stale = f in committed or d in committed
                    if stale:
                        assert hit is None, (
                            f"stale apply: {f}/{d} after {committed}"
                        )
                    else:
                        assert hit is not None
            # Every stale lookup above was counted as an invalidation.
            assert store.invalidated + store.reused > 0


class TestShardPairs:
    def test_preserves_order_and_coverage(self):
        pairs = [(f"f{i}", f"d{j}") for i in range(5) for j in range(3)]
        batches = shard_pairs(pairs, batch_size=4)
        assert [p for b in batches for p in b] == pairs
        assert all(len(b) <= 4 for b in batches[:-1] or batches)

    def test_groups_one_dividend_per_batch_when_possible(self):
        pairs = [(f"f{i}", f"d{j}") for i in range(4) for j in range(3)]
        batches = shard_pairs(pairs, batch_size=6)
        # Groups of 3 pack two-per-batch without splitting a dividend.
        for batch in batches:
            firsts = [f for f, _ in batch]
            # A dividend's run is contiguous within the batch.
            assert firsts == sorted(firsts, key=firsts.index)
        assert [p for b in batches for p in b] == pairs

    def test_oversized_group_still_splits(self):
        pairs = [("f0", f"d{j}") for j in range(10)]
        batches = shard_pairs(pairs, batch_size=4)
        assert [len(b) for b in batches] == [4, 4, 2]


class TestEndToEndInvalidation:
    def test_engine_reevaluates_collisions_live(self):
        """On a network with many accepted rewrites the snapshot goes
        stale mid-pass; the engine must invalidate and still land on
        the serial fixpoint (checked via the reported counters plus
        the byte-identity assertion in test_parallel_vs_serial)."""
        config = dataclasses.replace(BASIC, parallel_backend="serial")
        net = planted_network("collide", seed=11, n_pis=9, n_divisors=3,
                              n_targets=5)
        stats = substitute_network(net, config, n_jobs=2)
        assert stats.accepted > 0
        assert stats.parallel_pairs_invalidated > 0
        assert stats.parallel_pairs_reused > 0

    def test_enumeration_matches_serial_visit_set(self):
        net = planted_network("enum", seed=23, n_pis=8, n_divisors=3,
                              n_targets=4)
        pairs = enumerate_candidate_pairs(net, BASIC)
        assert pairs, "planted networks always have candidates"
        assert len(set(pairs)) == len(pairs)
        internal = {n.name for n in net.internal_nodes()}
        assert all(f in internal and d in internal for f, d in pairs)
