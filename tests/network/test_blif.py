"""Tests for the BLIF reader/writer."""

import pytest
from hypothesis import given, settings

from repro.network.blif import read_blif, to_blif_str, write_blif
from repro.network.verify import networks_equivalent
from tests.conftest import network_st

SAMPLE = """
# a comment
.model toy
.inputs a b c
.outputs f g
.names a b g
11 1
.names g c f
1- 1
-1 1
.end
"""


class TestRead:
    def test_reads_sample(self):
        net = read_blif(SAMPLE)
        assert net.name == "toy"
        assert net.pis == ["a", "b", "c"]
        assert net.pos == ["f", "g"]
        assert net.nodes["g"].cover.num_cubes() == 1

    def test_semantics(self):
        net = read_blif(SAMPLE)
        values = net.evaluate({"a": True, "b": True, "c": False})
        assert values["g"] is True and values["f"] is True
        values = net.evaluate({"a": False, "b": True, "c": False})
        assert values["f"] is False

    def test_constant_one_node(self):
        net = read_blif(".model c\n.inputs a\n.outputs k\n.names k\n1\n.end")
        assert net.nodes["k"].constant_value() is True

    def test_constant_zero_node(self):
        net = read_blif(".model c\n.inputs a\n.outputs k\n.names k\n.end")
        assert net.nodes["k"].constant_value() is False

    def test_continuation_lines(self):
        text = ".model c\n.inputs a \\\nb\n.outputs f\n.names a b f\n11 1\n.end"
        net = read_blif(text)
        assert net.pis == ["a", "b"]

    def test_dont_care_column(self):
        net = read_blif(
            ".model c\n.inputs a b c\n.outputs f\n.names a b c f\n1-0 1\n.end"
        )
        cube = net.nodes["f"].cover.cubes[0]
        assert cube.phase(0) is True
        assert cube.phase(1) is None
        assert cube.phase(2) is False

    def test_rejects_offset_rows(self):
        with pytest.raises(ValueError):
            read_blif(
                ".model c\n.inputs a\n.outputs f\n.names a f\n1 0\n.end"
            )

    def test_rejects_unknown_construct(self):
        with pytest.raises(ValueError):
            read_blif(".model c\n.latch a b\n.end")

    def test_rejects_forward_reference(self):
        with pytest.raises(ValueError):
            read_blif(
                ".model c\n.inputs a\n.outputs f\n"
                ".names ghost f\n1 1\n.end"
            )

    def test_rejects_undefined_output(self):
        with pytest.raises(ValueError):
            read_blif(".model c\n.inputs a\n.outputs zz\n.end")

    def test_bad_cover_char(self):
        with pytest.raises(ValueError):
            read_blif(
                ".model c\n.inputs a\n.outputs f\n.names a f\n2 1\n.end"
            )


class TestRoundTrip:
    def test_sample_roundtrip(self):
        net = read_blif(SAMPLE)
        again = read_blif(to_blif_str(net))
        assert networks_equivalent(net, again)

    @given(network_st())
    @settings(max_examples=30, deadline=None)
    def test_random_roundtrip(self, net):
        again = read_blif(to_blif_str(net))
        assert again.pis == net.pis
        assert again.pos == net.pos
        assert networks_equivalent(net, again)
