"""Tests for the network DAG."""

import pytest
from hypothesis import given, settings

from repro.twolevel.cover import Cover
from repro.network.network import Network
from repro.network.verify import networks_equivalent
from tests.conftest import network_st, random_network


def simple_network() -> Network:
    net = Network("t")
    for pi in "abc":
        net.add_pi(pi)
    net.parse_node("g", "ab", ["a", "b"])
    net.parse_node("f", "g + c", ["g", "c"])
    net.add_po("f")
    return net


class TestConstruction:
    def test_duplicate_names_rejected(self):
        net = Network()
        net.add_pi("a")
        with pytest.raises(ValueError):
            net.add_pi("a")
        with pytest.raises(ValueError):
            net.add_node("a", [], Cover.zero(0))

    def test_unknown_fanin_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.add_node("n", ["ghost"], Cover.parse("a", ["a"]))

    def test_unknown_po_rejected(self):
        net = Network()
        with pytest.raises(ValueError):
            net.add_po("ghost")

    def test_add_po_idempotent(self):
        net = simple_network()
        net.add_po("f")
        assert net.pos.count("f") == 1

    def test_cycle_detected_by_topo(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("n1", "a", ["a"])
        net.parse_node("n2", "n1", ["n1"])
        # Mutating n1 to read n2 closes a combinational cycle.
        net.nodes["n1"].fanins = ["n2"]
        with pytest.raises(ValueError):
            net.topo_order()

    def test_fresh_name_avoids_collisions(self):
        net = Network()
        net.add_pi("n0")
        name = net.fresh_name("n")
        assert name not in net.nodes


class TestTopology:
    def test_topo_order_respects_dependencies(self):
        net = simple_network()
        order = net.topo_order()
        assert order.index("g") < order.index("f")
        assert all(order.index(p) < order.index("g") for p in ("a", "b"))

    def test_fanouts(self):
        net = simple_network()
        fanouts = net.fanouts()
        assert fanouts["g"] == ["f"]
        assert fanouts["a"] == ["g"]

    def test_transitive_sets(self):
        net = simple_network()
        assert net.transitive_fanin("f") == {"g", "a", "b", "c"}
        assert net.transitive_fanout("a") == {"g", "f"}

    def test_depth(self):
        assert simple_network().depth() == 2

    def test_pis_property(self):
        assert simple_network().pis == ["a", "b", "c"]


class TestEvaluation:
    def test_evaluate(self):
        net = simple_network()
        values = net.evaluate({"a": True, "b": True, "c": False})
        assert values["g"] is True
        assert values["f"] is True
        values = net.evaluate({"a": False, "b": True, "c": False})
        assert values["f"] is False

    def test_simulate_matches_evaluate(self):
        net = simple_network()
        patterns = {"a": 0b0101, "b": 0b0011, "c": 0b1000}
        packed = net.simulate(patterns, width=4)
        for k in range(4):
            assignment = {
                pi: bool(patterns[pi] >> k & 1) for pi in net.pis
            }
            values = net.evaluate(assignment)
            for name in ("g", "f"):
                assert bool(packed[name] >> k & 1) == values[name]

    @given(network_st())
    @settings(max_examples=30, deadline=None)
    def test_simulate_matches_evaluate_property(self, net):
        import random as rnd

        rng = rnd.Random(7)
        width = 16
        patterns = {pi: rng.getrandbits(width) for pi in net.pis}
        packed = net.simulate(patterns, width=width)
        for k in (0, 7, 15):
            assignment = {
                pi: bool(patterns[pi] >> k & 1) for pi in net.pis
            }
            values = net.evaluate(assignment)
            for po in net.pos:
                assert bool(packed[po] >> k & 1) == values[po]


class TestEdits:
    def test_remove_node_guards(self):
        net = simple_network()
        with pytest.raises(ValueError):
            net.remove_node("f")  # is a PO
        with pytest.raises(ValueError):
            net.remove_node("g")  # has fanouts

    def test_sweep_dangling(self):
        net = simple_network()
        net.parse_node("dead", "ab", ["a", "b"])
        assert net.sweep_dangling() == 1
        assert "dead" not in net.nodes

    def test_collapse_preserves_function(self):
        net = simple_network()
        reference = net.copy()
        net.collapse_into_fanouts("g")
        assert "g" not in net.nodes
        # g was also a PO? no - safe to compare f only.
        assert networks_equivalent(
            _project(reference, ["f"]), _project(net, ["f"])
        )

    def test_collapse_guards(self):
        net = simple_network()
        with pytest.raises(ValueError):
            net.collapse_into_fanouts("a")  # PI
        with pytest.raises(ValueError):
            net.collapse_into_fanouts("f")  # PO

    def test_substitute_function_with_complement_phase(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])
        net.parse_node("f", "g'", ["g"])
        net.add_po("f")
        reference = net.copy()
        net.substitute_function("f", "g")
        assert "g" not in net.nodes["f"].fanins
        assert networks_equivalent(
            _project(reference, ["f"]), _project(net, ["f"])
        )

    def test_replace_with_constant(self):
        net = simple_network()
        net.replace_with_constant("g", True)
        assert net.nodes["g"].constant_value() is True

    def test_copy_is_deep_for_nodes(self):
        net = simple_network()
        clone = net.copy()
        clone.nodes["g"].fanins.append("c")
        assert net.nodes["g"].fanins == ["a", "b"]

    @given(network_st())
    @settings(max_examples=25, deadline=None)
    def test_collapse_property(self, net):
        reference = net.copy()
        for name in [n.name for n in net.internal_nodes()]:
            if name in net.pos or name not in net.nodes:
                continue
            if not net.fanouts()[name]:
                continue
            net.collapse_into_fanouts(name)
            break
        assert networks_equivalent(reference, net) or True
        # The strong check: compare all shared POs semantically.
        assert networks_equivalent(reference, net)


def _project(net: Network, pos) -> Network:
    clone = net.copy()
    clone.pos = [p for p in clone.pos if p in pos]
    return clone
