"""Tests for gcx (cube) and gkx (kernel) extraction."""

from hypothesis import given, settings

from repro.network.network import Network
from repro.network.extract import extract_best_cube, extract_best_kernel, gcx, gkx
from repro.network.factor import network_literals
from repro.network.verify import networks_equivalent
from tests.conftest import network_st


def shared_cube_network() -> Network:
    net = Network("sc")
    for pi in "abcde":
        net.add_pi(pi)
    net.parse_node("f1", "abc + d", ["a", "b", "c", "d"])
    net.parse_node("f2", "abe + d'", ["a", "b", "d", "e"])
    net.parse_node("f3", "abd", ["a", "b", "d"])
    for po in ("f1", "f2", "f3"):
        net.add_po(po)
    return net


def shared_kernel_network() -> Network:
    net = Network("sk")
    for pi in "abcdef":
        net.add_pi(pi)
    net.parse_node("f1", "ac + bc", ["a", "b", "c"])
    net.parse_node("f2", "ad + bd + e", ["a", "b", "d", "e"])
    net.parse_node("f3", "af + bf", ["a", "b", "f"])
    for po in ("f1", "f2", "f3"):
        net.add_po(po)
    return net


class TestGcx:
    def test_extracts_shared_cube(self):
        net = shared_cube_network()
        name = extract_best_cube(net)
        assert name is not None
        node = net.nodes[name]
        assert node.cover.num_cubes() == 1
        assert set(node.fanins) == {"a", "b"}
        assert networks_equivalent(shared_cube_network(), net)

    def test_substitutes_all_occurrences(self):
        net = shared_cube_network()
        name = extract_best_cube(net)
        users = [
            n.name for n in net.internal_nodes() if name in n.fanins
        ]
        assert len(users) == 3

    def test_gcx_loop_terminates(self):
        net = shared_cube_network()
        created = gcx(net)
        assert created >= 1
        assert extract_best_cube(net) is None

    def test_no_candidates_on_flat_or(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("f", "a + b", ["a", "b"])
        net.add_po("f")
        assert extract_best_cube(net) is None

    @given(network_st())
    @settings(max_examples=15, deadline=None)
    def test_gcx_preserves_function(self, net):
        reference = net.copy()
        gcx(net, max_rounds=5)
        assert networks_equivalent(reference, net)


class TestGkx:
    def test_extracts_shared_kernel(self):
        net = shared_kernel_network()
        name = extract_best_kernel(net)
        assert name is not None
        node = net.nodes[name]
        assert node.cover.num_cubes() == 2
        assert set(node.fanins) == {"a", "b"}
        assert networks_equivalent(shared_kernel_network(), net)

    def test_kernel_reduces_literals(self):
        net = shared_kernel_network()
        before = network_literals(net)
        gkx(net)
        assert network_literals(net) < before
        assert networks_equivalent(shared_kernel_network(), net)

    def test_gkx_loop_terminates(self):
        net = shared_kernel_network()
        gkx(net)
        assert extract_best_kernel(net) is None

    def test_no_kernel_in_single_cubes(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("f", "ab", ["a", "b"])
        net.add_po("f")
        assert extract_best_kernel(net) is None

    @given(network_st())
    @settings(max_examples=15, deadline=None)
    def test_gkx_preserves_function(self, net):
        reference = net.copy()
        gkx(net, max_rounds=5)
        assert networks_equivalent(reference, net)
