"""Tests for algebraic factoring and literal counting."""

from hypothesis import given, settings

from repro.twolevel.cover import Cover
from repro.network.factor import (
    FactorConst,
    FactorLeaf,
    FactorNode,
    factor,
    factored_literals,
    factored_str,
    network_literals,
)
from tests.conftest import cover_st, random_network

NAMES = list("abcdefg")


def parse(text: str) -> Cover:
    return Cover.parse(text, NAMES)


def evaluate(tree, assignment: int) -> bool:
    if isinstance(tree, FactorConst):
        return tree.value
    if isinstance(tree, FactorLeaf):
        value = bool(assignment >> tree.var & 1)
        return value if tree.phase else not value
    results = (evaluate(child, assignment) for child in tree.children)
    return all(results) if tree.kind == "and" else any(results)


class TestFactor:
    def test_constants(self):
        assert isinstance(factor(Cover.zero(3)), FactorConst)
        assert factor(Cover.one(3)).value is True
        assert factored_literals(Cover.zero(3)) == 0

    def test_single_cube(self):
        tree = factor(parse("ab'c"))
        assert tree.literal_count() == 3

    def test_common_cube_extraction(self):
        # abc + abd = ab(c + d): 4 literals factored vs 6 flat.
        assert factored_literals(parse("abc + abd")) == 4

    def test_kernel_factoring(self):
        # ab + ac + ad = a(b + c + d): 4 literals.
        assert factored_literals(parse("ab + ac + ad")) == 4

    def test_paper_example_count(self):
        # (b + c + d')a + a'b'c'd: 8 literals in factored form.
        cover = parse("ab + ac + ad' + a'b'c'd")
        assert factored_literals(cover) == 8

    def test_factored_str_contains_parens(self):
        text = factored_str(parse("ab + ac"), NAMES)
        assert "(" in text or text == "a b + a c"

    def test_never_worse_than_flat(self):
        for text in ("ab + cd", "ab + ac + bc", "a + b + c"):
            cover = parse(text)
            assert factored_literals(cover) <= cover.num_literals()

    @given(cover_st(5, 6))
    @settings(max_examples=80, deadline=None)
    def test_factoring_preserves_function(self, cover):
        tree = factor(cover)
        for assignment in range(1 << 5):
            assert evaluate(tree, assignment) == cover.evaluate(assignment)

    @given(cover_st(5, 6))
    @settings(max_examples=80, deadline=None)
    def test_literal_count_bounded(self, cover):
        assert factored_literals(cover) <= max(cover.num_literals(), 0)


class TestNetworkLiterals:
    def test_network_sum(self):
        net = random_network(3, n_pis=4, n_nodes=3)
        total = network_literals(net)
        assert total == sum(
            factored_literals(n.cover) for n in net.internal_nodes()
        )

    def test_pi_contributes_nothing(self):
        net = random_network(4)
        pis_only = sum(1 for n in net.nodes.values() if n.is_pi)
        assert pis_only > 0  # sanity: the metric skips these
