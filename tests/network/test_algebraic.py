"""Tests for kernels and weak division."""

from hypothesis import given, settings

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.algebraic import (
    all_kernels,
    common_cube,
    divide_by_literal,
    is_cube_free,
    level0_kernels,
    literal_counts,
    make_cube_free,
    quick_divisor,
    weak_division,
)
from tests.conftest import cover_st

NAMES = list("abcdefg")


def parse(text: str) -> Cover:
    return Cover.parse(text, NAMES)


class TestCubeFree:
    def test_common_cube(self):
        assert common_cube(parse("abc + abd")) == Cube.parse("ab", NAMES)
        assert common_cube(parse("ab + cd")).is_full()

    def test_is_cube_free(self):
        assert is_cube_free(parse("ab + cd"))
        assert not is_cube_free(parse("abc + abd"))
        assert not is_cube_free(parse("ab"))  # single cube never free

    def test_make_cube_free(self):
        result = make_cube_free(parse("abc + abd"))
        assert result.equivalent(parse("c + d"))


class TestLiteralOps:
    def test_divide_by_literal(self):
        quotient = divide_by_literal(parse("ab + ac + bd"), 0, True)
        assert quotient.to_str(NAMES) == "b + c"

    def test_divide_by_negative_literal(self):
        quotient = divide_by_literal(parse("a'b + ac"), 0, False)
        assert quotient.to_str(NAMES) == "b"

    def test_literal_counts(self):
        counts = dict(
            ((v, p), c) for v, p, c in literal_counts(parse("ab + a'c + ad"))
        )
        assert counts[(0, True)] == 2
        assert counts[(0, False)] == 1


class TestWeakDivision:
    def test_textbook_example(self):
        quotient, remainder = weak_division(
            parse("ab + ac + ad' + a'b'c'd"), parse("b + c")
        )
        assert quotient.to_str(NAMES) == "a"
        assert remainder.to_str(NAMES) == "ad' + a'b'c'd"

    def test_failing_division(self):
        quotient, remainder = weak_division(parse("ab + b'c"), parse("b + c"))
        assert quotient.is_zero()
        assert remainder is not None

    def test_divisor_variable_blocks_quotient(self):
        # Quotient cubes may not mention divisor-support variables.
        quotient, _ = weak_division(parse("ab + cb"), parse("a + c"))
        assert quotient.to_str(NAMES) == "b"

    def test_division_by_zero_rejected(self):
        import pytest

        with pytest.raises(ZeroDivisionError):
            weak_division(parse("a"), Cover.zero(7))

    @given(cover_st(5, 6), cover_st(5, 3))
    @settings(max_examples=80, deadline=None)
    def test_reconstruction_property(self, dividend, divisor):
        if divisor.is_zero():
            return
        quotient, remainder = weak_division(dividend, divisor)
        rebuilt = divisor.intersect(quotient).union(remainder)
        assert rebuilt.truth_mask() == dividend.truth_mask()
        # Algebraic condition: disjoint supports.
        assert not (quotient.support() & divisor.support())


class TestKernels:
    def test_textbook_kernels(self):
        kernels = all_kernels(parse("ace + bce + de + g"))
        texts = {k.to_str(NAMES) for k, _ in kernels}
        assert "a + b" in texts
        assert "ac + bc + d" in texts
        assert "ace + bce + de + g" in texts

    def test_cokernels_reconstruct(self):
        cover = parse("ace + bce + de + g")
        for kernel, cokernel in all_kernels(cover):
            product = kernel.intersect_cube(cokernel)
            # Every kernel·cokernel product is contained in the cover.
            for cube in product.cubes:
                assert any(c.contains(cube) for c in cover.cubes), (
                    kernel.to_str(NAMES),
                    cokernel.to_str(NAMES),
                )

    def test_kernels_are_cube_free(self):
        for kernel, _ in all_kernels(parse("ace + bce + de + g")):
            assert common_cube(kernel).is_full()

    def test_no_kernels_for_single_cube(self):
        assert all_kernels(parse("abc")) == []

    def test_level0(self):
        level0 = level0_kernels(parse("ace + bce + de + g"))
        texts = {k.to_str(NAMES) for k, _ in level0}
        assert texts == {"a + b"}

    def test_quick_divisor_is_a_kernel(self):
        cover = parse("ace + bce + de + g")
        quick = quick_divisor(cover)
        kernel_texts = {k.to_str(NAMES) for k, _ in all_kernels(cover)}
        assert quick.to_str(NAMES) in kernel_texts

    def test_quick_divisor_none_when_no_sharing(self):
        assert quick_divisor(parse("ab + cd")) is None
