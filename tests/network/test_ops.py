"""Tests for sweep and eliminate."""

from hypothesis import given, settings

from repro.twolevel.cover import Cover
from repro.network.network import Network
from repro.network.ops import (
    eliminate,
    network_stats,
    node_value,
    propagate_constants,
    sweep,
)
from repro.network.verify import networks_equivalent
from tests.conftest import network_st


def chain_network() -> Network:
    net = Network("chain")
    for pi in "abc":
        net.add_pi(pi)
    net.parse_node("buf", "a", ["a"])
    net.parse_node("inv", "b'", ["b"])
    net.add_node("g", ["buf", "inv"], Cover.parse("ab", ["a", "b"]))
    cover = Cover.parse("a + b", ["a", "b"])
    net.add_node("f", ["g", "c"], cover)
    net.add_po("f")
    return net


class TestSweep:
    def test_inlines_buffers_and_inverters(self):
        net = chain_network()
        reference = net.copy()
        removed = sweep(net)
        assert removed >= 2
        assert "buf" not in net.nodes
        assert "inv" not in net.nodes
        assert networks_equivalent(reference, net)

    def test_removes_dangling(self):
        net = chain_network()
        net.parse_node("dead", "ab", ["a", "b"])
        sweep(net)
        assert "dead" not in net.nodes

    def test_keeps_po_buffers(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("f", "a", ["a"])
        net.add_po("f")
        sweep(net)
        assert "f" in net.nodes

    @given(network_st())
    @settings(max_examples=25, deadline=None)
    def test_sweep_preserves_function(self, net):
        reference = net.copy()
        sweep(net)
        assert networks_equivalent(reference, net)


class TestEliminate:
    def test_value_formula(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])  # 2 literals
        net.parse_node("f1", "g", ["g"])
        net.parse_node("f2", "g'", ["g"])
        net.add_po("f1")
        net.add_po("f2")
        # 2 uses, 2 literals: value = 2*2 - 2 - 2 = 0.
        assert node_value(net, "g") == 0

    def test_eliminate_zero_collapses_single_fanout(self):
        net = Network()
        for pi in "abc":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])
        net.parse_node("f", "g + c", ["g", "c"])
        net.add_po("f")
        reference = net.copy()
        count = eliminate(net, 0)
        assert count == 1
        assert "g" not in net.nodes
        assert networks_equivalent(reference, net)

    def test_negative_threshold_keeps_more(self):
        net = Network()
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("g", "ab + cd", ["a", "b", "c", "d"])
        net.parse_node("f1", "g", ["g"])
        net.parse_node("f2", "g", ["g"])
        net.parse_node("f3", "g", ["g"])
        for po in ("f1", "f2", "f3"):
            net.add_po(po)
        # value = 3*4 - 3 - 4 = 5 > 0: never eliminated at 0.
        assert eliminate(net, 0) == 0
        assert "g" in net.nodes

    def test_large_threshold_collapses_everything_collapsible(self):
        net = chain_network()
        reference = net.copy()
        eliminate(net, 1000)
        assert len(net.internal_nodes()) == 1
        assert networks_equivalent(reference, net)

    @given(network_st())
    @settings(max_examples=25, deadline=None)
    def test_eliminate_preserves_function(self, net):
        reference = net.copy()
        eliminate(net, 0)
        assert networks_equivalent(reference, net)


class TestConstants:
    def test_propagate_constants(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("zero", "0", [])
        net.parse_node("f", "a + zero", ["a", "zero"])
        net.add_po("f")
        reference = net.copy()
        propagate_constants(net)
        assert networks_equivalent(reference, net)
        assert "zero" not in net.nodes["f"].fanins


class TestStats:
    def test_network_stats_keys(self):
        stats = network_stats(chain_network())
        assert stats["pis"] == 3
        assert stats["pos"] == 1
        assert stats["nodes"] == 4
        assert stats["literals"] > 0
        assert stats["depth"] >= 2


class TestCollapse:
    def test_collapse_to_two_level(self):
        from repro.network.ops import collapse_network
        from tests.conftest import random_network

        net = random_network(21, n_pis=4, n_nodes=5)
        reference = net.copy()
        collapse_network(net)
        for node in net.internal_nodes():
            assert all(net.nodes[f].is_pi for f in node.fanins), (
                node.to_str()
            )
        assert networks_equivalent(reference, net)

    def test_collapse_guard(self):
        import pytest

        from repro.network.ops import collapse_network

        net = Network()
        for i in range(25):
            net.add_pi(f"x{i}")
        net.parse_node("f", "x0", ["x0"])
        net.add_po("f")
        with pytest.raises(ValueError):
            collapse_network(net, max_pis=20)

    def test_collapse_matches_bdd_cover(self):
        from repro.bdd import BddManager
        from repro.network.ops import collapse_network
        from repro.network.verify import network_output_bdds

        net = Network()
        for pi in "abc":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])
        net.parse_node("f", "g + c'", ["g", "c"])
        net.add_po("f")
        bdds_before = network_output_bdds(net, ["a", "b", "c"])
        collapse_network(net)
        node = net.nodes["f"]
        assert set(node.fanins) <= {"a", "b", "c"}
        manager = BddManager(3)
        pi_index = {"a": 0, "b": 1, "c": 2}
        remapped = node.cover.remap(
            [pi_index[f] for f in node.fanins], 3
        )
        after = manager.from_cover(remapped)
        assert manager.sat_count(after) == 5  # ab + c' has 5 minterms
