"""Seeded-random oracle tests for SDC/ODC computation.

The hand-built cases in ``test_dontcares.py`` pin the definitions;
these sweep deterministic random networks and check the don't-care
sets against exhaustive simulation — the strongest oracle available at
these sizes:

* every satisfiability don't-care pattern is truly unreachable;
* on every reachable pattern inside the observability don't-care set,
  the node's value provably cannot influence any primary output;
* ``full_simplify`` preserves equivalence and never grows the network.
"""

from __future__ import annotations

import itertools

import pytest

from repro.network.dontcares import DontCareComputer, full_simplify
from repro.network.factor import network_literals
from repro.network.verify import networks_equivalent

from tests.conftest import random_network

SEEDS = list(range(200, 220))


def _pi_assignments(network):
    pis = network.pis
    for bits in itertools.product([False, True], repeat=len(pis)):
        yield dict(zip(pis, bits))


def _fanin_pattern(values, fanins) -> int:
    pattern = 0
    for index, fanin in enumerate(fanins):
        if values[fanin]:
            pattern |= 1 << index
    return pattern


@pytest.mark.parametrize("seed", SEEDS)
def test_sdc_patterns_are_unreachable(seed):
    network = random_network(seed, n_pis=4, n_nodes=5)
    computer = DontCareComputer(network)
    reachable = {name: set() for name in network.nodes}
    for assignment in _pi_assignments(network):
        values = network.evaluate(assignment)
        for node in network.internal_nodes():
            reachable[node.name].add(
                _fanin_pattern(values, node.fanins)
            )
    for node in network.internal_nodes():
        if node.cover is None or not node.fanins:
            continue
        sdc = computer.satisfiability_dc(node.name)
        for pattern in range(1 << len(node.fanins)):
            if sdc.evaluate(pattern):
                assert pattern not in reachable[node.name], (
                    f"SDC of {node.name} (seed {seed}) claims pattern "
                    f"{pattern:b} unreachable, but simulation hit it"
                )


@pytest.mark.parametrize("seed", SEEDS[:10])
def test_odc_patterns_never_influence_outputs(seed):
    network = random_network(seed, n_pis=4, n_nodes=5)
    computer = DontCareComputer(network)
    for node in network.internal_nodes():
        if node.cover is None or not node.fanins:
            continue
        if node.name in network.pos:
            continue  # flipping a PO is observable by definition
        odc = computer.observability_dc(node.name)
        if odc.is_zero():
            continue
        forced = {}
        for value in (False, True):
            copy = network.copy(f"forced{int(value)}")
            copy.replace_with_constant(node.name, value)
            forced[value] = copy
        for assignment in _pi_assignments(network):
            values = network.evaluate(assignment)
            pattern = _fanin_pattern(values, node.fanins)
            if not odc.evaluate(pattern):
                continue
            out0 = forced[False].evaluate(assignment)
            out1 = forced[True].evaluate(assignment)
            for po in network.pos:
                if po == node.name:
                    continue
                assert out0[po] == out1[po], (
                    f"ODC of {node.name} (seed {seed}) claims pattern "
                    f"{pattern:b} unobservable, but {po} flips"
                )


@pytest.mark.parametrize("seed", SEEDS)
def test_full_simplify_equivalent_and_never_grows(seed):
    network = random_network(seed, n_pis=4, n_nodes=5)
    reference = network.copy("reference")
    before = network_literals(network)
    improved = full_simplify(network)
    assert improved >= 0
    assert network_literals(network) <= before
    assert networks_equivalent(reference, network)


def test_random_population_exercises_nonempty_dc_sets():
    """Anti-vacuity: somewhere in the seed population there is at
    least one non-empty SDC set (else the oracle tests above prove
    nothing)."""
    found = 0
    for seed in SEEDS:
        network = random_network(seed, n_pis=4, n_nodes=5)
        computer = DontCareComputer(network)
        for node in network.internal_nodes():
            if node.cover is None or not node.fanins:
                continue
            if not computer.satisfiability_dc(node.name).is_zero():
                found += 1
    assert found > 0
