"""Tests for the algebraic resubstitution baseline."""

from hypothesis import given, settings

from repro.network.network import Network
from repro.network.resub import resub, try_resub_pair
from repro.network.verify import networks_equivalent
from tests.conftest import network_st


def textbook() -> Network:
    net = Network("t")
    for pi in "abcd":
        net.add_pi(pi)
    net.parse_node("g", "b + c", ["b", "c"])
    net.parse_node("f", "ab + ac + d", ["a", "b", "c", "d"])
    net.add_po("f")
    net.add_po("g")
    return net


class TestPair:
    def test_substitutes_algebraic_divisor(self):
        net = textbook()
        assert try_resub_pair(net, "f", "g")
        assert "g" in net.nodes["f"].fanins
        assert networks_equivalent(textbook(), net)

    def test_literal_gain_required(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])
        net.parse_node("f", "ab", ["a", "b"])
        net.add_po("f")
        net.add_po("g")
        # f = g saves one literal (2 -> 1): should substitute.
        assert try_resub_pair(net, "f", "g")
        assert net.nodes["f"].fanins == ["g"]

    def test_rejects_cycle(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("g", "a", ["a"])
        net.parse_node("f", "g", ["g"])
        net.add_po("f")
        # f is in g's transitive fanout: substituting f into g would
        # create a cycle.
        assert not try_resub_pair(net, "g", "f")

    def test_skips_existing_fanin(self):
        net = textbook()
        assert try_resub_pair(net, "f", "g")
        # Second try: g is already a fanin.
        assert not try_resub_pair(net, "f", "g")

    def test_complement_divisor(self):
        net = _complement_case()
        changed = try_resub_pair(net, "f", "g", use_complement=True)
        assert changed  # f contains b'c' = g'
        assert "g" in net.nodes["f"].fanins
        assert networks_equivalent(_complement_case(), net)

    def test_no_complement_when_disabled(self):
        net = _complement_case()
        assert not try_resub_pair(net, "f", "g", use_complement=False)


def _complement_case() -> Network:
    net = Network()
    for pi in "abc":
        net.add_pi(pi)
    net.parse_node("g", "b + c", ["b", "c"])
    net.parse_node("f", "ab'c'", ["a", "b", "c"])
    net.add_po("f")
    net.add_po("g")
    return net


class TestWholeNetwork:
    def test_resub_counts_accepted(self):
        net = textbook()
        assert resub(net) >= 1
        assert networks_equivalent(textbook(), net)

    def test_resub_reaches_fixpoint(self):
        net = textbook()
        resub(net)
        assert resub(net) == 0

    @given(network_st())
    @settings(max_examples=20, deadline=None)
    def test_resub_preserves_function(self, net):
        reference = net.copy()
        resub(net)
        assert networks_equivalent(reference, net)

    @given(network_st())
    @settings(max_examples=15, deadline=None)
    def test_resub_never_increases_literals(self, net):
        from repro.network.factor import network_literals

        before = network_literals(net)
        resub(net)
        assert network_literals(net) <= before
