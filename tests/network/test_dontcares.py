"""Tests for SDC/ODC computation and full_simplify."""

import pytest

from repro.network.dontcares import DontCareComputer, full_simplify
from repro.network.network import Network
from repro.network.verify import networks_equivalent


def correlated() -> Network:
    """t's fanins m = ab and M = a + b satisfy m <= M."""
    net = Network("corr")
    for pi in "ab":
        net.add_pi(pi)
    net.parse_node("m", "ab", ["a", "b"])
    net.parse_node("M", "a + b", ["a", "b"])
    net.parse_node("t", "mM + m'M'", ["m", "M"])
    net.add_po("t")
    return net


class TestSdc:
    def test_unreachable_pattern_detected(self):
        net = correlated()
        sdc = DontCareComputer(net).satisfiability_dc("t")
        # fanins of t are [m, M]; m=1, M=0 (minterm 0b01) is impossible.
        assert sdc.evaluate(0b01)
        assert not sdc.evaluate(0b11)
        assert not sdc.evaluate(0b00)
        assert not sdc.evaluate(0b10)

    def test_independent_fanins_have_no_sdc(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("t", "ab", ["a", "b"])
        net.add_po("t")
        assert DontCareComputer(net).satisfiability_dc("t").is_zero()

    def test_pi_rejected(self):
        net = correlated()
        with pytest.raises(ValueError):
            DontCareComputer(net).satisfiability_dc("a")

    def test_pi_cap(self):
        net = correlated()
        with pytest.raises(ValueError):
            DontCareComputer(net, max_pis=1)


class TestOdc:
    def test_masked_node_is_fully_dont_care(self):
        net = Network()
        for pi in "abc":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])
        # out = c masks g entirely when c=1... use out = gc so g is
        # unobservable whenever c=0.
        net.parse_node("out", "gc", ["g", "c"])
        net.add_po("out")
        odc = DontCareComputer(net).observability_dc("g")
        # g's fanins are [a, b]; g is observable only when c=1, which
        # is possible for every (a, b), so the ODC set is empty here.
        assert odc.is_zero()

    def test_totally_unobservable_node(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])
        net.parse_node("out", "g + g'", ["g"])
        net.add_po("out")
        odc = DontCareComputer(net).observability_dc("g")
        # out is constant 1: g never matters.
        assert not odc.is_zero()
        assert all(odc.evaluate(m) for m in range(4))


class TestFullSimplify:
    def test_exploits_sdc(self):
        net = correlated()
        reference = net.copy()
        before = net.nodes["t"].sop_literals()
        improved = full_simplify(net)
        assert improved >= 1
        assert net.nodes["t"].sop_literals() < before
        assert networks_equivalent(reference, net)

    def test_noop_when_nothing_to_gain(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("t", "ab", ["a", "b"])
        net.add_po("t")
        assert full_simplify(net) == 0

    def test_respects_pi_cap(self):
        net = correlated()
        assert full_simplify(net, max_pis=1) == 0

    def test_agrees_with_implication_gdc_direction(self):
        # Anything full_simplify removes, the GDC substitution flow
        # must also tolerate: both views of the same don't cares.
        from repro.core.config import EXTENDED_GDC
        from repro.core.substitution import substitute_network

        net = correlated()
        reference = net.copy()
        full_simplify(net)
        substitute_network(net, EXTENDED_GDC)
        assert networks_equivalent(reference, net)
