"""Tests for network nodes."""

import pytest

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.node import Node


def make(expression: str, fanins):
    return Node("n", fanins, Cover.parse(expression, list(fanins)))


class TestBasics:
    def test_pi_has_no_cover(self):
        node = Node("x")
        assert node.is_pi
        assert node.sop_literals() == 0

    def test_width_mismatch_rejected(self):
        with pytest.raises(ValueError):
            Node("n", ["a"], Cover.zero(2))

    def test_constant_detection(self):
        zero = Node("n", [], Cover.zero(0))
        one = Node("n", [], Cover.one(0))
        assert zero.is_constant() and zero.constant_value() is False
        assert one.constant_value() is True
        assert make("a", ["a"]).constant_value() is None

    def test_buffer_and_inverter(self):
        assert make("a", ["a"]).is_buffer()
        assert make("a'", ["a"]).is_inverter()
        assert not make("a", ["a"]).is_inverter()
        assert not make("ab", ["a", "b"]).is_buffer()

    def test_counts(self):
        node = make("ab + c'", ["a", "b", "c"])
        assert node.num_cubes() == 2
        assert node.sop_literals() == 3

    def test_depends_on(self):
        node = make("ab", ["a", "b"])
        assert node.depends_on("a")
        assert not node.depends_on("z")
        unused = Node("n", ["a", "b"], Cover.parse("a", ["a", "b"]))
        assert not unused.depends_on("b")


class TestMutation:
    def test_set_function_checks_width(self):
        node = make("a", ["a"])
        with pytest.raises(ValueError):
            node.set_function(["a", "b"], Cover.zero(3))

    def test_prune_unused_fanins(self):
        node = Node("n", ["a", "b", "c"], Cover.parse("ac", ["a", "b", "c"]))
        node.prune_unused_fanins()
        assert node.fanins == ["a", "c"]
        assert node.cover.to_str(node.fanins) == "ac"

    def test_prune_noop_when_all_used(self):
        node = make("ab", ["a", "b"])
        node.prune_unused_fanins()
        assert node.fanins == ["a", "b"]

    def test_substitute_fanin_name_simple(self):
        node = make("ab", ["a", "b"])
        node.substitute_fanin_name("b", "z")
        assert node.fanins == ["a", "z"]

    def test_substitute_fanin_name_merging(self):
        # f = ab + a'c with b renamed to a: cube ab -> a, a'c stays.
        node = make("ab + a'c", ["a", "b", "c"])
        node.substitute_fanin_name("b", "a")
        assert node.cover.num_vars == len(node.fanins)
        # Semantics: substitute b:=a in ab + a'c = a + a'c.
        values = {}
        for a in (0, 1):
            for c in (0, 1):
                packed = 0
                for i, f in enumerate(node.fanins):
                    bit = {"a": a, "c": c}[f]
                    packed |= bit << i
                values[(a, c)] = node.cover.evaluate(packed)
        assert values == {
            (0, 0): False,
            (0, 1): True,
            (1, 0): True,
            (1, 1): True,
        }

    def test_substitute_merging_drops_contradictions(self):
        # f = ab' with b renamed to a: cube aa' vanishes.
        node = make("ab'", ["a", "b"])
        node.substitute_fanin_name("b", "a")
        assert node.cover.is_zero() or all(
            False for _ in node.cover.cubes
        )


class TestQueries:
    def test_literal_occurrences(self):
        node = make("ab + a'c + b", ["a", "b", "c"])
        assert node.literal_occurrences("a") == (1, 1)
        assert node.literal_occurrences("b") == (2, 0)
        assert node.literal_occurrences("z") == (0, 0)

    def test_to_str_and_copy(self):
        node = make("ab", ["a", "b"])
        assert node.to_str() == "n = ab"
        clone = node.copy()
        clone.fanins.append("z")
        assert node.fanins == ["a", "b"]
