"""Tests for node decomposition rewrites."""

from hypothesis import given, settings

from repro.network.decomp import (
    and_or_decompose,
    factored_decompose,
    tech_decompose,
)
from repro.network.network import Network
from repro.network.verify import networks_equivalent
from tests.conftest import network_st


def wide() -> Network:
    net = Network("wide")
    for pi in "abcdefgh":
        net.add_pi(pi)
    net.parse_node(
        "out", "abc + de'f + g + h'", list("abcdefgh")
    )
    net.add_po("out")
    return net


class TestAndOr:
    def test_creates_cube_nodes(self):
        net = wide()
        created = and_or_decompose(net)
        assert created == 2  # abc and de'f; g and h' feed the OR
        assert networks_equivalent(wide(), net)

    def test_output_node_becomes_or(self):
        net = wide()
        and_or_decompose(net)
        f = net.nodes["out"]
        assert all(c.num_literals() == 1 for c in f.cover.cubes)
        # Single-literal cubes keep their phases on the OR edges.
        phases = {net_name: None for net_name in f.fanins}
        for cube in f.cover.cubes:
            (var, phase), = cube.literals()
            phases[f.fanins[var]] = phase
        assert phases["g"] is True
        assert phases["h"] is False

    def test_single_cube_nodes_untouched(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("f", "ab", ["a", "b"])
        net.add_po("f")
        assert and_or_decompose(net) == 0

    @given(network_st())
    @settings(max_examples=20, deadline=None)
    def test_preserves_function(self, net):
        reference = net.copy()
        and_or_decompose(net)
        assert networks_equivalent(reference, net)


class TestFactored:
    def test_rewrites_factorable_node(self):
        net = Network()
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("f", "ab + ac + ad", list("abcd"))
        net.add_po("f")
        rewritten = factored_decompose(net, min_literals=3)
        assert rewritten == 1
        assert networks_equivalent(_copy_factored_ref(), net)

    def test_small_nodes_skipped(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("f", "ab", ["a", "b"])
        net.add_po("f")
        assert factored_decompose(net) == 0

    @given(network_st())
    @settings(max_examples=20, deadline=None)
    def test_preserves_function(self, net):
        reference = net.copy()
        factored_decompose(net)
        assert networks_equivalent(reference, net)


def _copy_factored_ref() -> Network:
    net = Network()
    for pi in "abcd":
        net.add_pi(pi)
    net.parse_node("f", "ab + ac + ad", list("abcd"))
    net.add_po("f")
    return net


class TestTechDecompose:
    def test_bounds_fanin(self):
        net = wide()
        tech_decompose(net, max_fanin=2)
        for node in net.internal_nodes():
            assert len(node.fanins) <= 2, node.to_str()
        assert networks_equivalent(wide(), net)

    def test_rejects_tiny_bound(self):
        import pytest

        with pytest.raises(ValueError):
            tech_decompose(wide(), max_fanin=1)

    @given(network_st())
    @settings(max_examples=20, deadline=None)
    def test_preserves_function(self, net):
        reference = net.copy()
        tech_decompose(net, max_fanin=3)
        assert networks_equivalent(reference, net)

    @given(network_st())
    @settings(max_examples=10, deadline=None)
    def test_fanin_bound_holds(self, net):
        tech_decompose(net, max_fanin=3)
        for node in net.internal_nodes():
            kind_cover = node.cover
            if kind_cover is None:
                continue
            # Pure gates must obey the bound; general nodes were
            # and-or decomposed first so they are pure as well.
            assert len(node.fanins) <= max(
                3, len(node.fanins) if kind_cover.num_cubes() > 1 and any(
                    c.num_literals() > 1 for c in kind_cover.cubes
                ) else 0
            )
