"""Tests for the equation (.eqn) reader/writer."""

import pytest
from hypothesis import given, settings

from repro.network.eqn import (
    parse_expression,
    read_eqn,
    to_eqn_str,
    write_eqn,
)
from repro.network.verify import networks_equivalent
from repro.twolevel.cover import Cover
from tests.conftest import cover_st, network_st

SAMPLE = """
# the paper's intro example
INORDER = a b c d;
OUTORDER = f g;
g = b + c;
f = a * b + a * c + a * !d + !a * !b * !c * d;
"""


class TestParseExpression:
    def test_and_or(self):
        cover = parse_expression("a * b + c", ["a", "b", "c"])
        assert cover.equivalent(Cover.parse("ab + c", ["a", "b", "c"]))

    def test_juxtaposition(self):
        cover = parse_expression("a b + c", ["a", "b", "c"])
        assert cover.equivalent(Cover.parse("ab + c", ["a", "b", "c"]))

    def test_prefix_and_postfix_not(self):
        left = parse_expression("!a * b'", ["a", "b"])
        assert left.equivalent(Cover.parse("a'b'", ["a", "b"]))

    def test_parentheses_and_distribution(self):
        cover = parse_expression("(a + b) * (c + d)", list("abcd"))
        assert cover.equivalent(
            Cover.parse("ac + ad + bc + bd", list("abcd"))
        )

    def test_complemented_group(self):
        cover = parse_expression("!(a + b)", ["a", "b"])
        assert cover.equivalent(Cover.parse("a'b'", ["a", "b"]))

    def test_constants(self):
        assert parse_expression("0", ["a"]).is_zero()
        assert parse_expression("1 * a", ["a"]).equivalent(
            Cover.parse("a", ["a"])
        )

    def test_unknown_signal_rejected(self):
        with pytest.raises(ValueError):
            parse_expression("z", ["a"])

    def test_unbalanced_parens_rejected(self):
        with pytest.raises(ValueError):
            parse_expression("(a + b", ["a", "b"])

    def test_garbage_rejected(self):
        with pytest.raises(ValueError):
            parse_expression("a @ b", ["a", "b"])


class TestReadEqn:
    def test_reads_sample(self):
        net = read_eqn(SAMPLE)
        assert net.pis == ["a", "b", "c", "d"]
        assert net.pos == ["f", "g"]
        values = net.evaluate(
            {"a": False, "b": False, "c": False, "d": True}
        )
        assert values["f"] is True  # the a'b'c'd cube

    def test_matches_blif_network(self):
        from repro.network.network import Network

        reference = Network()
        for pi in "abcd":
            reference.add_pi(pi)
        reference.parse_node("g", "b + c", ["b", "c"])
        reference.parse_node(
            "f", "ab + ac + ad' + a'b'c'd", ["a", "b", "c", "d"]
        )
        reference.add_po("f")
        reference.add_po("g")
        assert networks_equivalent(reference, read_eqn(SAMPLE))

    def test_rejects_non_assignment(self):
        with pytest.raises(ValueError):
            read_eqn("INORDER = a; f + a;")


class TestWriteEqn:
    def test_roundtrip_sample(self):
        net = read_eqn(SAMPLE)
        again = read_eqn(to_eqn_str(net))
        assert networks_equivalent(net, again)

    def test_writer_emits_factored_form(self):
        net = read_eqn(SAMPLE)
        text = to_eqn_str(net)
        # f factors as (b + c + !d) * a + ... : must contain parens
        # and eqn operators, not SOP with 8 products.
        assert "(" in text
        assert "!" in text
        assert "*" in text

    @given(network_st())
    @settings(max_examples=25, deadline=None)
    def test_random_roundtrip(self, net):
        again = read_eqn(to_eqn_str(net))
        assert again.pis == net.pis
        assert again.pos == net.pos
        assert networks_equivalent(net, again)


class TestExpressionProperty:
    @given(cover_st(4))
    @settings(max_examples=40, deadline=None)
    def test_sop_rendering_parses_back(self, cover):
        # Any SOP cover rendered with explicit operators parses back to
        # the same function through the eqn expression grammar.
        names = ["a", "b", "c", "d"]
        terms = []
        for cube in cover.cubes:
            literals = [
                names[v] + ("" if phase else "'")
                for v, phase in cube.literals()
            ]
            terms.append(" * ".join(literals) if literals else "1")
        if not terms:
            return
        parsed = parse_expression(" + ".join(terms), names)
        assert parsed.truth_mask() == cover.truth_mask()
