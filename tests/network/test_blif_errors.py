"""Malformed-BLIF corpus: every file raises BlifParseError with location."""

import pathlib

import pytest

from repro.network.blif import BlifParseError, read_blif

CORPUS = pathlib.Path(__file__).parent / "malformed_blif"

# (file, expected line, fragment expected in the message)
CASES = [
    ("truncated_continuation.blif", 4, "line continuation"),
    ("bad_row_width.blif", 5, "column(s)"),
    ("bad_cover_char.blif", 5, "bad cover character"),
    ("offset_row.blif", 5, "off-set"),
    ("bad_output_value.blif", 5, "row output"),
    ("names_no_target.blif", 4, "no output signal"),
    ("row_outside_names.blif", 4, "outside any .names"),
    ("duplicate_node.blif", 6, "f"),
    ("duplicate_input.blif", 2, "a"),
    ("constant_row_with_inputs.blif", 5, "constant row"),
    ("bad_constant_row.blif", 5, "bad constant row"),
    ("extra_row_tokens.blif", 5, "malformed .names row"),
    ("unsupported_construct.blif", 4, ".latch"),
    ("undefined_output.blif", 3, "never defined"),
    ("forward_reference.blif", 4, "forward reference"),
]


def test_corpus_is_fully_covered():
    on_disk = {p.name for p in CORPUS.glob("*.blif")}
    assert on_disk == {name for name, _, _ in CASES}


@pytest.mark.parametrize("name,line,fragment", CASES)
def test_malformed_file_is_located(name, line, fragment):
    path = CORPUS / name
    with open(path) as stream:
        with pytest.raises(BlifParseError) as excinfo:
            read_blif(stream)
    err = excinfo.value
    assert err.path == str(path)
    assert err.line == line
    assert str(err).startswith(f"{path}:{line}: ")
    assert fragment in str(err)


@pytest.mark.parametrize("name,line,fragment", CASES)
def test_malformed_is_a_value_error(name, line, fragment):
    with open(CORPUS / name) as stream:
        with pytest.raises(ValueError):
            read_blif(stream)


def test_explicit_path_overrides_stream_name():
    with open(CORPUS / "offset_row.blif") as stream:
        with pytest.raises(BlifParseError) as excinfo:
            read_blif(stream, path="design.blif")
    assert excinfo.value.path == "design.blif"
    assert str(excinfo.value).startswith("design.blif:5: ")


def test_string_source_reports_anonymous_location():
    with pytest.raises(BlifParseError) as excinfo:
        read_blif(".model m\n.inputs a\n.outputs f\n.latch a f\n.end\n")
    assert excinfo.value.path is None
    assert str(excinfo.value).startswith("<blif>:4: ")


def test_continuation_errors_point_at_the_starting_line():
    # The bad row spans physical lines 5-6; the error names line 5.
    text = (
        ".model m\n"
        ".inputs a b\n"
        ".outputs f\n"
        ".names a b f\n"
        "1\\\n"
        "1 2\n"
        ".end\n"
    )
    with pytest.raises(BlifParseError) as excinfo:
        read_blif(text)
    assert excinfo.value.line == 5


def test_comment_only_and_blank_lines_do_not_shift_numbering():
    text = (
        "# a comment\n"
        "\n"
        ".model m\n"
        ".inputs a\n"
        ".outputs f\n"
        ".names a f\n"
        "1 0\n"
        ".end\n"
    )
    with pytest.raises(BlifParseError) as excinfo:
        read_blif(text)
    assert excinfo.value.line == 7
