"""Tests for per-node espresso simplification."""

from hypothesis import given, settings

from repro.network.network import Network
from repro.network.simplify import simplify, simplify_node
from repro.network.verify import networks_equivalent
from tests.conftest import network_st


def build_redundant() -> Network:
    net = Network("r")
    for pi in "abc":
        net.add_pi(pi)
    # ab + ab' + a'b collapses to a + b.
    net.parse_node("f", "ab + ab' + a'b", ["a", "b"])
    net.add_po("f")
    return net


class TestSimplifyNode:
    def test_minimizes_cover(self):
        net = build_redundant()
        assert simplify_node(net, "f")
        assert net.nodes["f"].sop_literals() == 2

    def test_noop_on_minimal_node(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("f", "a", ["a"])
        net.add_po("f")
        assert not simplify_node(net, "f")

    def test_skips_pis_and_constants(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("k", "0", [])
        net.add_po("k")
        assert not simplify_node(net, "a")
        assert not simplify_node(net, "k")

    def test_prunes_dropped_fanins(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("f", "ab + ab'", ["a", "b"])
        net.add_po("f")
        simplify_node(net, "f")
        assert net.nodes["f"].fanins == ["a"]


class TestFaninDc:
    def test_fanin_dc_enables_more_minimization(self):
        # g = ab is a fanin of f alongside a and b; the combination
        # g=1, a=0 can never occur, which lets espresso drop literals.
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("g", "ab", ["a", "b"])
        net.parse_node("f", "gab + g'a'", ["g", "a", "b"])
        net.add_po("f")
        reference = net.copy()
        simplify(net, use_fanin_dc=True)
        assert networks_equivalent(reference, net)
        assert net.nodes["f"].sop_literals() <= 3


class TestWholeNetwork:
    @given(network_st())
    @settings(max_examples=25, deadline=None)
    def test_simplify_preserves_function(self, net):
        reference = net.copy()
        simplify(net)
        assert networks_equivalent(reference, net)

    @given(network_st())
    @settings(max_examples=15, deadline=None)
    def test_simplify_with_dc_preserves_function(self, net):
        reference = net.copy()
        simplify(net, use_fanin_dc=True)
        assert networks_equivalent(reference, net)

    def test_simplify_never_increases_sop_literals(self):
        net = build_redundant()
        before = net.sop_literals()
        simplify(net)
        assert net.sop_literals() <= before
