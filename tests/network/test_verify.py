"""Tests for equivalence checking."""

import pytest

from repro.bdd import BddManager
from repro.network.network import Network
from repro.network.verify import (
    network_output_bdds,
    networks_equivalent,
    simulate_equivalent,
)


def pair(f_expr: str, g_expr: str):
    nets = []
    for expr in (f_expr, g_expr):
        net = Network()
        for pi in "abc":
            net.add_pi(pi)
        net.parse_node("f", expr, ["a", "b", "c"])
        net.add_po("f")
        nets.append(net)
    return nets


class TestBddEquivalence:
    def test_equivalent_rewrites(self):
        a, b = pair("ab + ab'", "a")
        assert networks_equivalent(a, b)

    def test_detects_inequivalence(self):
        a, b = pair("ab", "a + b")
        assert not networks_equivalent(a, b)

    def test_po_name_mismatch(self):
        a, b = pair("a", "a")
        b.pos = []
        b.parse_node("h", "a", ["a"])
        b.add_po("h")
        assert not networks_equivalent(a, b)

    def test_different_pi_sets_allowed_if_unused(self):
        a, b = pair("ab", "ab")
        b.add_pi("z")
        assert networks_equivalent(a, b)

    def test_output_bdds_shared_manager(self):
        a, b = pair("ab + c", "c + ba")
        order = ["a", "b", "c"]
        manager = BddManager(3)
        fa = network_output_bdds(a, order, manager)
        fb = network_output_bdds(b, order, manager)
        assert fa["f"] == fb["f"]

    def test_missing_pi_in_order_rejected(self):
        a, _ = pair("ab", "ab")
        with pytest.raises(ValueError):
            network_output_bdds(a, ["a"])

    def test_too_small_shared_manager_rejected(self):
        a, _ = pair("ab", "ab")
        with pytest.raises(ValueError):
            network_output_bdds(a, ["a", "b", "c"], BddManager(1))


class TestSimulation:
    def test_agrees_on_equivalent(self):
        a, b = pair("ab + ab'", "a")
        assert simulate_equivalent(a, b)

    def test_catches_inequivalence(self):
        a, b = pair("ab", "a + b")
        assert not simulate_equivalent(a, b, patterns=256)

    def test_requires_same_interface(self):
        a, b = pair("a", "a")
        b.add_pi("extra")
        assert not simulate_equivalent(a, b)
