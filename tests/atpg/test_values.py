"""Tests for the ternary logic helpers."""

from repro.atpg.values import UNKNOWN, t_and, t_not, t_or, to_char


class TestTernaryTables:
    def test_and_false_dominates(self):
        assert t_and(False, UNKNOWN) is False
        assert t_and(UNKNOWN, False) is False
        assert t_and(False, True) is False

    def test_and_true_needs_both(self):
        assert t_and(True, True) is True
        assert t_and(True, UNKNOWN) is UNKNOWN

    def test_or_true_dominates(self):
        assert t_or(True, UNKNOWN) is True
        assert t_or(UNKNOWN, True) is True
        assert t_or(False, True) is True

    def test_or_false_needs_both(self):
        assert t_or(False, False) is False
        assert t_or(False, UNKNOWN) is UNKNOWN

    def test_not(self):
        assert t_not(True) is False
        assert t_not(False) is True
        assert t_not(UNKNOWN) is UNKNOWN

    def test_to_char(self):
        assert to_char(True) == "1"
        assert to_char(False) == "0"
        assert to_char(UNKNOWN) == "x"

    def test_de_morgan_over_ternary(self):
        values = (True, False, UNKNOWN)
        for a in values:
            for b in values:
                assert t_not(t_and(a, b)) == t_or(t_not(a), t_not(b))
