"""Tests for one-level recursive learning."""

import pytest

from repro.atpg.implication import Conflict, ImplicationEngine
from repro.atpg.learning import learn_implications
from repro.circuit.circuit import Circuit


def convergent_or() -> Circuit:
    """f = ab + ac: both justifications of f=1 imply a=1."""
    c = Circuit()
    for pi in "abc":
        c.add_pi(pi)
    c.add_and("g1", [("a", True), ("b", True)])
    c.add_and("g2", [("a", True), ("c", True)])
    c.add_or("f", [("g1", True), ("g2", True)])
    return c


class TestLearning:
    def test_learns_common_implication(self):
        e = ImplicationEngine(convergent_or())
        e.run([("f", True)])
        assert e.value("a") is None  # direct implications miss it
        learn_implications(e, depth=1)
        assert e.value("a") is True  # learning catches it

    def test_learns_conflict_when_all_options_fail(self):
        # f = ab + cd with blockers ab=0 and cd=0 asserted via watcher
        # gates: direct implications see nothing (every gate has two
        # unknowns), but each justification option of f=1 conflicts
        # inside its fork, so learning proves the state inconsistent.
        c = Circuit()
        for pi in "abcd":
            c.add_pi(pi)
        c.add_and("g1", [("a", True), ("b", True)])
        c.add_and("g2", [("c", True), ("d", True)])
        c.add_or("f", [("g1", True), ("g2", True)])
        c.add_and("h1", [("a", True), ("b", True)])
        c.add_and("h2", [("c", True), ("d", True)])
        e = ImplicationEngine(c)
        assert e.run([("f", True), ("h1", False), ("h2", False)]) is True
        with pytest.raises(Conflict):
            learn_implications(e, depth=1)

    def test_depth_zero_is_noop(self):
        e = ImplicationEngine(convergent_or())
        e.run([("f", True)])
        learn_implications(e, depth=0)
        assert e.value("a") is None

    def test_learning_derives_divisor_cube_value(self):
        # The extended-division voting scenario: knowing cdx=0 and x=1
        # must teach the engine that the divisor cube cd is 0.
        c = Circuit()
        for pi in "cdx":
            c.add_pi(pi)
        c.add_and("fq", [("c", True), ("d", True), ("x", True)])
        c.add_and("k", [("c", True), ("d", True)])
        e = ImplicationEngine(c)
        e.run([("fq", False), ("x", True)])
        assert e.value("k") is None
        learn_implications(e, depth=1)
        assert e.value("k") is False

    def test_two_level_learning(self):
        # f = g1 + g2, g1 = a(bc), g2 = a(bd): depth-2 learning finds
        # both a=1 and b=1.
        c = Circuit()
        for pi in "abcd":
            c.add_pi(pi)
        c.add_and("m1", [("b", True), ("c", True)])
        c.add_and("m2", [("b", True), ("d", True)])
        c.add_and("g1", [("a", True), ("m1", True)])
        c.add_and("g2", [("a", True), ("m2", True)])
        c.add_or("f", [("g1", True), ("g2", True)])
        e = ImplicationEngine(c)
        e.run([("f", True)])
        learn_implications(e, depth=2)
        assert e.value("a") is True
        assert e.value("b") is True

    def test_max_gates_bounds_work(self):
        e = ImplicationEngine(convergent_or())
        e.run([("f", True)])
        learn_implications(e, depth=1, max_gates=0)
        assert e.value("a") is None
