"""Tests for the three-valued implication engine."""

import pytest

from repro.atpg.implication import Conflict, ImplicationEngine
from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind


def and_or_circuit() -> Circuit:
    c = Circuit()
    for pi in "abcd":
        c.add_pi(pi)
    c.add_and("g", [("a", True), ("b", True)])
    c.add_or("f", [("g", True), ("c", True)])
    c.add_and("h", [("g", True), ("d", False)])
    return c


class TestForward:
    def test_and_controlled_by_zero(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("a", False)])
        assert e.value("g") is False

    def test_and_all_ones(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("a", True), ("b", True)])
        assert e.value("g") is True

    def test_or_controlled_by_one(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("c", True)])
        assert e.value("f") is True

    def test_or_all_zero(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("a", False), ("c", False)])
        assert e.value("f") is False

    def test_edge_phase_inversion(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("a", True), ("b", True), ("d", True)])
        assert e.value("h") is False  # d' literal is 0

    def test_constants_propagate(self):
        c = Circuit()
        c.add_gate(Gate("one", GateKind.CONST1))
        c.add_and("f", [("one", True)])
        e = ImplicationEngine(c)
        e.propagate()
        # Constants only fire once enqueued via assign/processing.
        assert e.run([]) is True


class TestBackward:
    def test_and_output_one_forces_inputs(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("g", True)])
        assert e.value("a") is True and e.value("b") is True

    def test_or_output_zero_forces_inputs(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("f", False)])
        assert e.value("c") is False and e.value("g") is False

    def test_last_unknown_input_forced(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("g", False), ("a", True)])
        assert e.value("b") is False

    def test_chained_implications(self):
        e = ImplicationEngine(and_or_circuit())
        # f=0 forces g=0 and c=0; with a=1 that forces b=0.
        assert e.run([("f", False), ("a", True)])
        assert e.value("b") is False

    def test_phase_aware_backward(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("h", True)])
        assert e.value("d") is False  # h needs d'=1


class TestConflicts:
    def test_direct_conflict(self):
        e = ImplicationEngine(and_or_circuit())
        e.assign("a", True)
        with pytest.raises(Conflict):
            e.assign("a", False)

    def test_run_returns_false_on_conflict(self):
        e = ImplicationEngine(and_or_circuit())
        assert not e.run([("g", True), ("a", False)])

    def test_all_noncontrolling_but_controlled_output(self):
        e = ImplicationEngine(and_or_circuit())
        assert not e.run([("a", True), ("b", True), ("g", False)])

    def test_reassign_same_value_is_fine(self):
        e = ImplicationEngine(and_or_circuit())
        assert e.run([("a", True), ("a", True)])


class TestForkAndJustification:
    def test_fork_is_independent(self):
        e = ImplicationEngine(and_or_circuit())
        e.run([("a", True)])
        fork = e.fork()
        fork.run([("b", True)])
        assert e.value("b") is None
        assert fork.value("g") is True

    def test_unjustified_gate_detection(self):
        e = ImplicationEngine(and_or_circuit())
        e.run([("f", True)])
        names = {g.name for g in e.unjustified_gates()}
        assert "f" in names

    def test_justified_gate_not_listed(self):
        e = ImplicationEngine(and_or_circuit())
        e.run([("f", True), ("c", True)])
        names = {g.name for g in e.unjustified_gates()}
        assert "f" not in names


class TestSoundnessProperty:
    """Implied values must hold in every consistent completion."""

    def _consistent_completions(self, circuit, assignments):
        import itertools

        pis = sorted(circuit.pis())
        for bits in itertools.product([False, True], repeat=len(pis)):
            assignment = dict(zip(pis, bits))
            values = circuit.evaluate(assignment)
            if all(values[s] == v for s, v in assignments):
                yield values

    def test_implications_are_sound(self):
        import random

        from tests.atpg.test_simulate import random_circuit

        rng = random.Random(99)
        checked = 0
        for seed in range(120):
            circuit = random_circuit(seed)
            signals = list(circuit.gates)
            picks = rng.sample(signals, min(2, len(signals)))
            assignments = [(s, rng.random() < 0.5) for s in picks]
            engine = ImplicationEngine(circuit)
            if not engine.run(assignments):
                # Conflict: there must be no consistent completion
                # (for output-signal assignments this is exact).
                continue
            completions = list(
                self._consistent_completions(circuit, assignments)
            )
            for values in completions:
                for signal, implied in engine.values.items():
                    assert values[signal] == implied, (
                        seed,
                        assignments,
                        signal,
                    )
                checked += 1
        assert checked > 50  # the test must actually exercise cases

    def test_conflict_implies_unsatisfiable(self):
        from tests.atpg.test_simulate import random_circuit

        import random

        rng = random.Random(5)
        for seed in range(120):
            circuit = random_circuit(seed)
            signals = list(circuit.gates)
            picks = rng.sample(signals, min(3, len(signals)))
            assignments = [(s, rng.random() < 0.5) for s in picks]
            engine = ImplicationEngine(circuit)
            if engine.run(assignments):
                continue
            # The engine reported a conflict: verify exhaustively that
            # no PI assignment satisfies all the requested values.
            assert not list(
                self._consistent_completions(circuit, assignments)
            ), (seed, assignments)
