"""Budgeted D-alg: out-of-budget verdicts must stay conservative.

The regression locked in here: a D-alg search that runs out of budget
reports ``complete=False`` and its ``None`` redundancy verdict is
treated as *not redundant* everywhere a wire removal hangs on it —
keeping a removable wire is safe, removing a needed one is not.
"""

from repro.atpg.dalg import generate_test, prove_redundant
from repro.atpg.fault import StuckAtFault
from repro.atpg.redundancy import (
    redundancy_removal,
    wire_is_redundant_exact,
)
from repro.resilience.budget import RunBudget
from tests.atpg.test_dalg import demo

#: The demo circuit's provably redundant fault (b' literal of g2).
REDUNDANT = StuckAtFault("g2", 1, True)


def _expired_budget() -> RunBudget:
    """A budget whose deadline has already passed (fake clock)."""
    return RunBudget(deadline_seconds=0.0, clock=lambda: 0.0)


class TestBudgetedSearch:
    def test_ample_budget_matches_unbudgeted(self):
        budget = RunBudget(max_backtracks=10**6)
        verdict = prove_redundant(demo(), REDUNDANT, {"out"}, budget=budget)
        assert verdict is True
        assert budget.backtracks >= 0
        assert budget.atpg_incomplete == 0

    def test_expired_deadline_aborts_incomplete(self):
        budget = _expired_budget()
        result = generate_test(demo(), REDUNDANT, {"out"}, budget=budget)
        assert result.test is None
        assert not result.complete
        assert budget.atpg_incomplete == 1

    def test_backtracks_are_charged(self):
        budget = RunBudget(max_backtracks=10**6)
        result = generate_test(demo(), REDUNDANT, {"out"}, budget=budget)
        assert budget.backtracks == result.backtracks

    def test_budget_clamps_per_call_limit(self):
        budget = RunBudget(max_backtracks=0)
        # The per-call default (20000) is clamped to the 0 the run has
        # left, so the search cannot spend what the budget doesn't have.
        result = generate_test(demo(), REDUNDANT, {"out"}, budget=budget)
        if not result.complete:
            assert (
                prove_redundant(
                    demo(), REDUNDANT, {"out"}, budget=RunBudget(
                        max_backtracks=0
                    )
                )
                is None
            )


class TestConservativeDirection:
    def test_out_of_budget_is_not_redundant(self):
        # The fault IS redundant, but the budget ran out before the
        # proof finished: the only safe answer is "not redundant".
        assert wire_is_redundant_exact(
            demo(), REDUNDANT, {"out"}, budget=_expired_budget()
        ) is False

    def test_ample_budget_proves_redundant(self):
        assert wire_is_redundant_exact(
            demo(),
            REDUNDANT,
            {"out"},
            budget=RunBudget(max_backtracks=10**6),
        ) is True

    def test_exact_removal_skips_wire_out_of_budget(self):
        # With an expired budget the exact check can never fire, so
        # exact removal degenerates to the implication-only removal —
        # fewer wires removed, never a wrong one.
        budgeted = demo()
        removed_budgeted = redundancy_removal(
            budgeted, {"out"}, exact=True, budget=_expired_budget()
        )
        baseline = demo()
        removed_plain = redundancy_removal(baseline, {"out"})
        assert removed_budgeted == removed_plain

    def test_exact_removal_with_budget_removes_more_eventually(self):
        # Sanity in the other direction: with room to search, the
        # exact mode proves (at least) everything implications prove.
        loose = demo()
        removed = redundancy_removal(loose, {"out"}, exact=True)
        plain = demo()
        assert removed >= redundancy_removal(plain, {"out"})
