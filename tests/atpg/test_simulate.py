"""Fault simulation tests and soundness cross-validation."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.fault import StuckAtFault, all_wire_faults
from repro.atpg.redundancy import wire_is_redundant
from repro.atpg.simulate import (
    fault_coverage,
    faulty_evaluate,
    find_test_exhaustive,
)
from repro.circuit.circuit import Circuit


def demo() -> Circuit:
    c = Circuit()
    for pi in "abc":
        c.add_pi(pi)
    c.add_and("g1", [("a", True), ("b", True)])
    c.add_and("g2", [("a", True), ("b", False), ("c", True)])
    c.add_or("out", [("g1", True), ("g2", True)])
    return c


def random_circuit(seed: int) -> Circuit:
    rng = random.Random(seed)
    c = Circuit(f"r{seed}")
    signals = []
    for i in range(rng.randint(2, 4)):
        name = f"x{i}"
        c.add_pi(name)
        signals.append(name)
    for j in range(rng.randint(1, 5)):
        width = rng.randint(1, min(3, len(signals)))
        inputs = [
            (s, rng.random() < 0.7)
            for s in rng.sample(signals, width)
        ]
        name = f"g{j}"
        if rng.random() < 0.5:
            c.add_and(name, inputs)
        else:
            c.add_or(name, inputs)
        signals.append(name)
    return c


class TestFaultyEvaluate:
    def test_injects_fault(self):
        c = demo()
        fault = StuckAtFault("g1", 0, True)  # a-wire stuck at 1
        assignment = {"a": False, "b": True, "c": False}
        good = c.evaluate(assignment)
        bad = faulty_evaluate(c, fault, assignment)
        assert good["out"] is False
        assert bad["out"] is True

    def test_no_effect_when_value_matches(self):
        c = demo()
        fault = StuckAtFault("g1", 0, True)
        assignment = {"a": True, "b": True, "c": False}
        assert (
            faulty_evaluate(c, fault, assignment)["out"]
            == c.evaluate(assignment)["out"]
        )


class TestFindTest:
    def test_finds_test_for_testable_fault(self):
        c = demo()
        fault = StuckAtFault("g1", 0, True)
        test = find_test_exhaustive(c, fault, {"out"})
        assert test is not None
        assert (
            c.evaluate(test)["out"]
            != faulty_evaluate(c, fault, test)["out"]
        )

    def test_untestable_fault_returns_none(self):
        c = demo()
        fault = StuckAtFault("g2", 1, True)  # redundant b' literal
        assert find_test_exhaustive(c, fault, {"out"}) is None

    def test_pi_cap(self):
        c = Circuit()
        for i in range(13):
            c.add_pi(f"x{i}")
        c.add_and("g", [(f"x{i}", True) for i in range(13)])
        with pytest.raises(ValueError):
            find_test_exhaustive(c, StuckAtFault("g", 0, True))


class TestCoverage:
    def test_full_coverage_with_all_patterns(self):
        c = demo()
        import itertools

        patterns = [
            dict(zip("abc", bits))
            for bits in itertools.product([False, True], repeat=3)
        ]
        testable = [
            f
            for f in all_wire_faults(c)
            if find_test_exhaustive(c, f, {"out"}) is not None
        ]
        assert fault_coverage(c, testable, patterns, {"out"}) == 1.0

    def test_zero_patterns_zero_coverage(self):
        c = demo()
        testable = [StuckAtFault("g1", 0, True)]
        assert fault_coverage(c, testable, [], {"out"}) == 0.0


class TestSoundnessCrossValidation:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=60, deadline=None)
    def test_redundant_implies_untestable(self, seed):
        """The one-sided guarantee: a conflict proof is never wrong."""
        circuit = random_circuit(seed)
        fanouts = circuit.fanouts()
        observables = {
            name for name, outs in fanouts.items() if not outs
        }
        for fault in all_wire_faults(circuit):
            for learn in (0, 1):
                if wire_is_redundant(
                    circuit, fault, observables, learn_depth=learn
                ):
                    assert (
                        find_test_exhaustive(
                            circuit, fault, observables
                        )
                        is None
                    ), (circuit.gates, fault, learn)
