"""Tests for stuck-at faults, mandatory assignments, and redundancy."""

import itertools

import pytest

from repro.atpg.fault import StuckAtFault, all_wire_faults, mandatory_assignments
from repro.atpg.redundancy import (
    add_redundant_wire,
    redundancy_removal,
    remove_wire,
    wire_is_redundant,
)
from repro.circuit.circuit import Circuit
from repro.circuit.gate import GateKind


def redundant_circuit() -> Circuit:
    """out = ab + ab'c — the b' literal is redundant (= ab + ac)."""
    c = Circuit()
    for pi in "abc":
        c.add_pi(pi)
    c.add_and("g1", [("a", True), ("b", True)])
    c.add_and("g2", [("a", True), ("b", False), ("c", True)])
    c.add_or("out", [("g1", True), ("g2", True)])
    return c


def truth(circuit: Circuit, output: str):
    pis = sorted(circuit.pis())
    return [
        circuit.evaluate(dict(zip(pis, bits)))[output]
        for bits in itertools.product([False, True], repeat=len(pis))
    ]


class TestMandatoryAssignments:
    def test_activation_value(self):
        c = redundant_circuit()
        fault = StuckAtFault("g1", 0, True)  # wire a s-a-1: need a=0
        assignments = dict(mandatory_assignments(c, fault, {"out"}))
        assert assignments["a"] is False

    def test_side_inputs_noncontrolling(self):
        c = redundant_circuit()
        fault = StuckAtFault("g1", 0, True)
        assignments = dict(mandatory_assignments(c, fault, {"out"}))
        assert assignments["b"] is True  # side input of g1

    def test_propagation_side_inputs(self):
        c = redundant_circuit()
        fault = StuckAtFault("g1", 0, True)
        assignments = dict(mandatory_assignments(c, fault, {"out"}))
        assert assignments["g2"] is False  # side input of the OR

    def test_inverted_edge_activation(self):
        c = redundant_circuit()
        fault = StuckAtFault("g2", 1, True)  # literal b' s-a-1: b=1
        assignments = dict(mandatory_assignments(c, fault, {"out"}))
        assert assignments["b"] is True

    def test_faults_only_on_logic_gates(self):
        c = redundant_circuit()
        with pytest.raises(ValueError):
            mandatory_assignments(c, StuckAtFault("a", 0, True), {"out"})

    def test_all_wire_faults_enumeration(self):
        c = redundant_circuit()
        faults = list(all_wire_faults(c))
        # g1: 2 wires, g2: 3 wires, out: 2 wires.
        assert len(faults) == 7
        kinds = {(f.gate, f.stuck_value) for f in faults}
        assert ("g1", True) in kinds and ("out", False) in kinds


class TestRedundancy:
    def test_detects_redundant_literal(self):
        c = redundant_circuit()
        assert wire_is_redundant(c, StuckAtFault("g2", 1, True), {"out"})

    def test_keeps_irredundant_literal(self):
        c = redundant_circuit()
        assert not wire_is_redundant(c, StuckAtFault("g1", 0, True), {"out"})

    def test_remove_wire_and_degenerate_gates(self):
        c = redundant_circuit()
        remove_wire(c, "g2", 1)
        assert len(c.gates["g2"].inputs) == 2
        remove_wire(c, "g2", 0)
        remove_wire(c, "g2", 0)
        assert c.gates["g2"].kind == GateKind.CONST1

    def test_removal_preserves_function(self):
        c = redundant_circuit()
        before = truth(c, "out")
        removed = redundancy_removal(c, {"out"})
        assert removed == 1
        assert truth(c, "out") == before

    def test_removal_fixpoint(self):
        c = redundant_circuit()
        redundancy_removal(c, {"out"})
        assert redundancy_removal(c, {"out"}) == 0

    def test_learning_finds_more(self):
        # out = g + ab with g = ab: wire redundancy needs learning to
        # see through the reconvergence (g=0 has two justifications,
        # both in conflict with a=b=1).
        c = Circuit()
        for pi in "ab":
            c.add_pi(pi)
        c.add_and("g", [("a", True), ("b", True)])
        c.add_and("h", [("a", True), ("b", True)])
        c.add_or("out", [("g", True), ("h", True)])
        fault = StuckAtFault("out", 1, False)  # h's wire into out s-a-0
        assert wire_is_redundant(c, fault, {"out"}, learn_depth=0)


class TestAddRedundantWire:
    def test_rejects_nonredundant_addition(self):
        c = redundant_circuit()
        before = truth(c, "out")
        added = add_redundant_wire(c, "g1", ("c", True), {"out"})
        assert not added
        assert truth(c, "out") == before

    def test_accepts_redundant_addition(self):
        # out = ab + a'c; adding consensus wire... use a known-safe
        # case: duplicate an existing literal on the same gate.
        c = Circuit()
        for pi in "ab":
            c.add_pi(pi)
        c.add_and("g", [("a", True), ("b", True)])
        c.add_or("out", [("g", True)])
        before = truth(c, "out")
        added = add_redundant_wire(c, "g", ("a", True), {"out"})
        assert added
        assert truth(c, "out") == before

    def test_only_logic_gates(self):
        c = redundant_circuit()
        with pytest.raises(ValueError):
            add_redundant_wire(c, "a", ("b", True), {"out"})
