"""Tests for complete miter-based test generation."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.dalg import (
    build_miter,
    generate_test,
    miter_output,
    prove_redundant,
)
from repro.atpg.fault import StuckAtFault, all_wire_faults
from repro.atpg.redundancy import wire_is_redundant
from repro.atpg.simulate import faulty_evaluate, find_test_exhaustive
from repro.circuit.circuit import Circuit
from tests.atpg.test_simulate import random_circuit


def demo() -> Circuit:
    c = Circuit()
    for pi in "abc":
        c.add_pi(pi)
    c.add_and("g1", [("a", True), ("b", True)])
    c.add_and("g2", [("a", True), ("b", False), ("c", True)])
    c.add_or("out", [("g1", True), ("g2", True)])
    return c


class TestMiter:
    def test_miter_output_semantics(self):
        c = demo()
        fault = StuckAtFault("g1", 0, True)
        miter = build_miter(c, fault, {"out"})
        import itertools

        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", bits))
            good = c.evaluate(assignment)["out"]
            bad = faulty_evaluate(c, fault, assignment)["out"]
            diff = miter.evaluate(assignment)[miter_output()]
            assert diff == (good != bad), assignment

    def test_shared_pis(self):
        miter = build_miter(demo(), StuckAtFault("g1", 0, True), {"out"})
        assert sorted(miter.pis()) == ["a", "b", "c"]


class TestGenerateTest:
    def test_finds_test(self):
        c = demo()
        fault = StuckAtFault("g1", 0, True)
        result = generate_test(c, fault, {"out"})
        assert result.complete
        assert result.test is not None
        good = c.evaluate(result.test)["out"]
        bad = faulty_evaluate(c, fault, result.test)["out"]
        assert good != bad

    def test_proves_untestable(self):
        c = demo()
        fault = StuckAtFault("g2", 1, True)  # redundant b' literal
        result = generate_test(c, fault, {"out"})
        assert result.complete
        assert result.test is None
        assert prove_redundant(c, fault, {"out"}) is True

    def test_budget_reported(self):
        c = demo()
        fault = StuckAtFault("g2", 1, True)
        result = generate_test(c, fault, {"out"}, max_backtracks=0)
        # Either proved quickly or reported as incomplete — never a
        # silent wrong answer.
        if result.test is None and not result.complete:
            assert prove_redundant(c, fault, {"out"}, 0) is None


class TestCrossValidation:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=40, deadline=None)
    def test_matches_exhaustive(self, seed):
        circuit = random_circuit(seed)
        fanouts = circuit.fanouts()
        observables = {
            name for name, outs in fanouts.items() if not outs
        }
        for fault in all_wire_faults(circuit):
            exact = find_test_exhaustive(circuit, fault, observables)
            result = generate_test(circuit, fault, observables)
            assert result.complete
            assert (result.test is None) == (exact is None), (
                seed,
                fault,
            )
            if result.test is not None:
                good = circuit.evaluate(result.test)
                bad = faulty_evaluate(circuit, fault, result.test)
                assert any(good[o] != bad[o] for o in observables)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_implications_never_contradict_atpg(self, seed):
        """One-sided check: implication 'redundant' => ATPG agrees."""
        circuit = random_circuit(seed)
        fanouts = circuit.fanouts()
        observables = {
            name for name, outs in fanouts.items() if not outs
        }
        for fault in all_wire_faults(circuit):
            if wire_is_redundant(circuit, fault, observables, 1):
                assert prove_redundant(circuit, fault, observables) is True


class TestAtpgResultSemantics:
    def test_backtracks_counted(self):
        from repro.atpg.dalg import generate_test

        c = demo()
        fault = StuckAtFault("g2", 1, True)  # untestable
        result = generate_test(c, fault, {"out"})
        assert result.backtracks >= 0
        assert result.complete

    def test_redundancy_answer_is_three_valued(self):
        c = demo()
        testable = StuckAtFault("g1", 0, True)
        untestable = StuckAtFault("g2", 1, True)
        assert prove_redundant(c, testable, {"out"}) is False
        assert prove_redundant(c, untestable, {"out"}) is True
