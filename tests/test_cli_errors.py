"""CLI error handling: malformed input exits 2 with a one-line message."""

import pytest

from repro.cli import main


class TestOptimizeErrors:
    def test_malformed_blif_reports_location(self, tmp_path, capsys):
        bad = tmp_path / "bad.blif"
        bad.write_text(
            ".model bad\n.inputs a b\n.outputs f\n.names a b f\n1 1\n.end\n"
        )
        code = main(["optimize", str(bad), "--script", "none"])
        assert code == 2
        captured = capsys.readouterr()
        assert captured.out == ""
        err_lines = captured.err.strip().splitlines()
        assert len(err_lines) == 1
        assert err_lines[0].startswith(f"error: {bad}:5: ")

    def test_missing_file(self, tmp_path, capsys):
        missing = tmp_path / "nope.blif"
        code = main(["optimize", str(missing)])
        assert code == 2
        err = capsys.readouterr().err
        assert err.startswith("error: cannot read")

    def test_unknown_bench_name(self, capsys):
        code = main(["optimize", "bench:no_such_circuit"])
        assert code == 2
        err = capsys.readouterr().err.strip()
        assert err.startswith("error: ")
        assert "no_such_circuit" in err

    def test_verify_commits_flag_runs_clean(self, capsys):
        code = main(
            [
                "optimize",
                "bench:dec3",
                "--method",
                "basic",
                "--script",
                "none",
                "--verify-commits",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert ".model" in out and ".end" in out

    def test_resilience_flags_rejected_for_sis(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "optimize",
                    "bench:dec3",
                    "--method",
                    "sis",
                    "--verify-commits",
                ]
            )
        with pytest.raises(SystemExit):
            main(
                ["optimize", "bench:dec3", "--method", "sis", "--deadline", "5"]
            )
