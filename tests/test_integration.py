"""End-to-end integration tests: public API, CLI, and full flows."""

import pytest

import repro
from repro import (
    BASIC,
    EXTENDED,
    Network,
    networks_equivalent,
    substitute_network,
)
from repro.cli import main
from repro.bench.suite import build_benchmark


class TestPublicApi:
    def test_version(self):
        assert repro.__version__

    def test_quickstart_from_docstring(self):
        net = Network("demo")
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("g", "b + c", ["b", "c"])
        net.parse_node(
            "f", "ab + ac + ad' + a'b'c'd", ["a", "b", "c", "d"]
        )
        net.add_po("f")
        net.add_po("g")
        reference = net.copy()
        stats = substitute_network(net, BASIC)
        assert stats.improvement() > 0
        assert networks_equivalent(reference, net)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None


class TestCli:
    def test_table2_quick(self, capsys):
        code = main(
            [
                "--circuits",
                "dec3",
                "--methods",
                "sis,basic",
                "table2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Script A" in out
        assert "dec3" in out

    def test_table5(self, capsys):
        code = main(
            ["--circuits", "dec3", "--methods", "basic", "table5"]
        )
        assert code == 0
        assert "script.algebraic" in capsys.readouterr().out

    def test_unknown_method_rejected(self):
        with pytest.raises(SystemExit):
            main(["--methods", "bogus", "table2"])

    def test_all_expands(self, capsys):
        code = main(
            [
                "--circuits",
                "dec3",
                "--methods",
                "sis",
                "--no-verify",
                "all",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("==") >= 8  # four table headers


class TestFullFlow:
    @pytest.mark.parametrize("name", ["cla4", "rnd2"])
    def test_script_then_substitute(self, name):
        from repro.scripts.flows import script_a

        net = build_benchmark(name)
        reference = net.copy()
        script_a(net)
        substitute_network(net, EXTENDED)
        assert networks_equivalent(reference, net)
