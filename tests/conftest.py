"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random
from typing import List

import pytest
from hypothesis import strategies as st

from repro.twolevel.cube import Cube
from repro.twolevel.cover import Cover
from repro.network.network import Network


# ----------------------------------------------------------------------
# Hypothesis strategies
# ----------------------------------------------------------------------
@st.composite
def cube_st(draw, num_vars: int = 5):
    """A random (possibly full) cube over *num_vars* variables."""
    literals = {}
    for var in range(num_vars):
        choice = draw(st.integers(0, 2))
        if choice == 0:
            literals[var] = True
        elif choice == 1:
            literals[var] = False
    return Cube.from_literals(literals.items())


@st.composite
def cover_st(draw, num_vars: int = 5, max_cubes: int = 6):
    """A random cover over *num_vars* variables."""
    cubes = draw(st.lists(cube_st(num_vars), max_size=max_cubes))
    return Cover(num_vars, cubes)


@st.composite
def cover_pair_st(draw, num_vars: int = 5, max_cubes: int = 5):
    return (
        draw(cover_st(num_vars, max_cubes)),
        draw(cover_st(num_vars, max_cubes)),
    )


@st.composite
def network_st(draw, max_pis: int = 5, max_nodes: int = 5):
    """A small random multilevel network with all nodes as POs."""
    n_pis = draw(st.integers(2, max_pis))
    n_nodes = draw(st.integers(1, max_nodes))
    seed = draw(st.integers(0, 2**31))
    return random_network(seed, n_pis, n_nodes)


def random_network(seed: int, n_pis: int = 5, n_nodes: int = 5) -> Network:
    """Deterministic random multilevel network (plain random module)."""
    rng = random.Random(seed)
    net = Network(f"rand{seed}")
    signals: List[str] = []
    for i in range(n_pis):
        name = f"x{i}"
        net.add_pi(name)
        signals.append(name)
    for j in range(n_nodes):
        width = rng.randint(1, min(4, len(signals)))
        fanins = rng.sample(signals, width)
        cubes = []
        for _ in range(rng.randint(1, 4)):
            literals = {}
            for v in range(width):
                r = rng.random()
                if r < 0.4:
                    literals[v] = True
                elif r < 0.8:
                    literals[v] = False
            cubes.append(Cube.from_literals(literals.items()))
        name = f"n{j}"
        cover = Cover(width, cubes).single_cube_containment()
        net.add_node(name, fanins, cover)
        signals.append(name)
    # Outputs: every node nothing else reads (keeps internal nodes
    # collapsible in structural tests).
    fanouts = net.fanouts()
    for node in net.internal_nodes():
        if not fanouts[node.name]:
            net.add_po(node.name)
    if not net.pos:
        net.add_po(net.internal_nodes()[-1].name)
    return net


# ----------------------------------------------------------------------
# Fixtures
# ----------------------------------------------------------------------
@pytest.fixture
def paper_network() -> Network:
    """The intro example: f = ab + ac + ad' + a'b'c'd with g = b + c."""
    net = Network("paper")
    for pi in "abcd":
        net.add_pi(pi)
    net.parse_node("g", "b + c", ["b", "c"])
    net.parse_node("f", "ab + ac + ad' + a'b'c'd", ["a", "b", "c", "d"])
    net.add_po("f")
    net.add_po("g")
    return net


@pytest.fixture
def fat_divisor_network() -> Network:
    """Extended-division scenario: the core ab+cd hides inside g."""
    net = Network("fat")
    for pi in "abcdefxy":
        net.add_pi(pi)
    net.parse_node("g", "ab + cd + ef", list("abcdef"))
    net.parse_node("f1", "abx + cdx + a'y", ["a", "b", "c", "d", "x", "y"])
    net.parse_node("f2", "aby + cdy", ["a", "b", "c", "d", "y"])
    for po in ("f1", "f2", "g"):
        net.add_po(po)
    return net


def assert_equivalent(before: Network, after: Network) -> None:
    from repro.network.verify import networks_equivalent

    assert networks_equivalent(before, after), (
        f"rewrite broke equivalence:\n{before.to_str()}\n--\n{after.to_str()}"
    )
