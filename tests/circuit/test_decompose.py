"""Tests for network-to-circuit decomposition."""

import itertools

from hypothesis import given, settings

from repro.circuit.decompose import network_to_circuit, node_region_gates
from repro.circuit.gate import GateKind
from repro.network.network import Network
from repro.network.node import Node
from repro.twolevel.cover import Cover
from tests.conftest import network_st


class TestNodeRegion:
    def test_two_level_structure(self):
        node = Node("f", ["a", "b", "c"], Cover.parse("ab + c", ["a", "b", "c"]))
        gates = node_region_gates(node)
        names = {g.name: g for g in gates}
        assert "f" in names and names["f"].kind == GateKind.OR
        assert names["f.c0"].kind == GateKind.AND
        # Single-literal cube feeds the OR directly.
        assert ("c", True) in names["f"].inputs

    def test_single_cube_becomes_and(self):
        node = Node("f", ["a", "b"], Cover.parse("ab'", ["a", "b"]))
        gates = node_region_gates(node)
        assert len(gates) == 1
        assert gates[0].kind == GateKind.AND
        assert gates[0].inputs == [("a", True), ("b", False)]

    def test_constants(self):
        zero = Node("f", [], Cover.zero(0))
        one = Node("f", [], Cover.one(0))
        assert node_region_gates(zero)[0].kind == GateKind.CONST0
        assert node_region_gates(one)[0].kind == GateKind.CONST1

    def test_prefix_namespacing(self):
        node = Node("f", ["a"], Cover.parse("a", ["a"]))
        gates = node_region_gates(node, prefix="p.")
        assert gates[-1].name == "p.f"

    def test_pi_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            node_region_gates(Node("x"))


class TestNetworkToCircuit:
    def test_small_network_matches(self):
        net = Network()
        for pi in "abc":
            net.add_pi(pi)
        net.parse_node("g", "ab' + a'b", ["a", "b"])
        net.parse_node("f", "gc + g'c'", ["g", "c"])
        net.add_po("f")
        circuit = network_to_circuit(net)
        for bits in itertools.product([False, True], repeat=3):
            assignment = dict(zip("abc", bits))
            assert (
                circuit.evaluate(assignment)["f"]
                == net.evaluate(assignment)["f"]
            )

    @given(network_st())
    @settings(max_examples=25, deadline=None)
    def test_circuit_matches_network_property(self, net):
        import random as rnd

        circuit = network_to_circuit(net)
        rng = rnd.Random(13)
        for _ in range(8):
            assignment = {pi: rng.random() < 0.5 for pi in net.pis}
            net_values = net.evaluate(assignment)
            circuit_values = circuit.evaluate(assignment)
            for po in net.pos:
                assert circuit_values[po] == net_values[po]
