"""Tests for circuit-to-network map-back and network RAR cleanup."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.atpg.redundancy import remove_wire
from repro.circuit.decompose import network_to_circuit
from repro.circuit.mapback import (
    network_redundancy_removal,
    node_cover_from_gates,
    update_network_from_circuit,
)
from repro.network.network import Network
from repro.network.verify import networks_equivalent
from tests.conftest import random_network


def redundant_net() -> Network:
    net = Network("r")
    for pi in "abc":
        net.add_pi(pi)
    # out = ab + ab'c: the b' literal is redundant (= ab + ac).
    net.parse_node("out", "ab + ab'c", ["a", "b", "c"])
    net.add_po("out")
    return net


class TestNodeCoverFromGates:
    def test_roundtrip_unmodified(self):
        net = redundant_net()
        circuit = network_to_circuit(net)
        fanins, cover = node_cover_from_gates(circuit, "out")
        node = net.nodes["out"]
        assert fanins == node.fanins
        assert cover.equivalent(node.cover.remap(
            [fanins.index(f) for f in node.fanins], len(fanins)
        ))

    def test_reflects_wire_removal(self):
        net = redundant_net()
        circuit = network_to_circuit(net)
        # Remove b' from the second cube gate (out.c1 input 1).
        remove_wire(circuit, "out.c1", 1)
        fanins, cover = node_cover_from_gates(circuit, "out")
        assert cover.num_literals() == 4  # ab + ac

    def test_constant_gates(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("k", "0", [])
        net.add_po("k")
        circuit = network_to_circuit(net)
        fanins, cover = node_cover_from_gates(circuit, "k")
        assert fanins == [] and cover.is_zero()

    def test_single_cube_node(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("t", "ab'", ["a", "b"])
        net.add_po("t")
        circuit = network_to_circuit(net)
        fanins, cover = node_cover_from_gates(circuit, "t")
        assert cover.num_cubes() == 1
        assert cover.num_literals() == 2


class TestUpdateNetwork:
    def test_update_counts_changes(self):
        net = redundant_net()
        circuit = network_to_circuit(net)
        remove_wire(circuit, "out.c1", 1)
        changed = update_network_from_circuit(net, circuit)
        assert changed == 1
        assert net.nodes["out"].sop_literals() == 4

    def test_noop_when_untouched(self):
        net = redundant_net()
        circuit = network_to_circuit(net)
        assert update_network_from_circuit(net, circuit) == 0


class TestNetworkRedundancyRemoval:
    def test_removes_known_redundancy(self):
        net = redundant_net()
        reference = net.copy()
        removed = network_redundancy_removal(net)
        assert removed >= 1
        assert net.nodes["out"].sop_literals() == 4
        assert networks_equivalent(reference, net)

    def test_exploits_cross_node_dont_cares(self):
        # t = mM + m'M' with m = ab <= M = a+b: whole-circuit
        # implications remove the unreachable-combination literals.
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("m", "ab", ["a", "b"])
        net.parse_node("M", "a + b", ["a", "b"])
        net.parse_node("t", "mM + m'M'", ["m", "M"])
        net.add_po("t")
        reference = net.copy()
        removed = network_redundancy_removal(net)
        assert removed >= 1
        assert net.nodes["t"].sop_literals() < 4
        assert networks_equivalent(reference, net)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_preserves_function(self, seed):
        net = random_network(seed, n_pis=4, n_nodes=6)
        reference = net.copy()
        network_redundancy_removal(net)
        assert networks_equivalent(reference, net)

    def test_fixpoint(self):
        net = redundant_net()
        network_redundancy_removal(net)
        assert network_redundancy_removal(net) == 0
