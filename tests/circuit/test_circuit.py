"""Tests for the gate-level circuit view."""

import itertools

import pytest

from repro.circuit.circuit import Circuit
from repro.circuit.gate import Gate, GateKind


def demo() -> Circuit:
    c = Circuit("demo")
    for pi in "abc":
        c.add_pi(pi)
    c.add_and("g1", [("a", True), ("b", False)])
    c.add_or("f", [("g1", True), ("c", True)])
    return c


class TestGate:
    def test_source_gates_take_no_inputs(self):
        with pytest.raises(ValueError):
            Gate("x", GateKind.PI, [("y", True)])

    def test_controlling_values(self):
        assert Gate("x", GateKind.AND).controlling_value() is False
        assert Gate("x", GateKind.OR).controlling_value() is True
        with pytest.raises(ValueError):
            Gate("x", GateKind.PI).controlling_value()

    def test_copy_is_independent(self):
        gate = Gate("x", GateKind.AND, [("a", True)])
        clone = gate.copy()
        clone.inputs.append(("b", False))
        assert len(gate.inputs) == 1

    def test_repr_shows_phases(self):
        gate = Gate("x", GateKind.AND, [("a", True), ("b", False)])
        assert "b'" in repr(gate)


class TestCircuit:
    def test_duplicate_names_rejected(self):
        c = demo()
        with pytest.raises(ValueError):
            c.add_pi("a")

    def test_fanouts(self):
        c = demo()
        assert c.fanouts()["g1"] == ["f"]
        assert c.fanouts()["a"] == ["g1"]

    def test_fanouts_cache_invalidation(self):
        c = demo()
        c.fanouts()
        c.gates["f"].inputs.append(("a", True))
        c.invalidate()
        assert "f" in c.fanouts()["a"]

    def test_topo_order(self):
        order = demo().topo_order()
        assert order.index("g1") < order.index("f")

    def test_topo_cycle_detection(self):
        c = Circuit()
        c.add_pi("a")
        c.add_and("x", [("y", True)])
        c.add_and("y", [("x", True)])
        with pytest.raises(ValueError):
            c.topo_order()

    def test_transitive_fanin(self):
        c = demo()
        assert c.transitive_fanin("f") == {"g1", "a", "b", "c"}

    def test_count_wires(self):
        assert demo().count_wires() == 4

    def test_copy_deep(self):
        c = demo()
        clone = c.copy()
        clone.gates["g1"].inputs.pop()
        assert len(c.gates["g1"].inputs) == 2


class TestEvaluate:
    def test_and_or_with_phases(self):
        c = demo()
        # f = (a AND NOT b) OR c
        for a, b, x in itertools.product([False, True], repeat=3):
            values = c.evaluate({"a": a, "b": b, "c": x})
            assert values["f"] == ((a and not b) or x)

    def test_constants(self):
        c = Circuit()
        c.add_gate(Gate("one", GateKind.CONST1))
        c.add_gate(Gate("zero", GateKind.CONST0))
        c.add_or("f", [("one", True), ("zero", True)])
        assert c.evaluate({})["f"] is True

    def test_empty_and_is_one(self):
        c = Circuit()
        c.add_gate(Gate("t", GateKind.AND, []))
        assert c.evaluate({})["t"] is True

    def test_empty_or_is_zero(self):
        c = Circuit()
        c.add_gate(Gate("t", GateKind.OR, []))
        assert c.evaluate({})["t"] is False
