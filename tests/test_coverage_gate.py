"""Opt-in coverage-floor gate (``coverage_gate`` marker).

These tests re-run parts of the suite under the stdlib settrace
collector (``scripts/check_coverage.py``), which is roughly an order
of magnitude slower than a plain run, so they are **skipped unless**
``RUN_COVERAGE_GATE=1`` is set::

    RUN_COVERAGE_GATE=1 python -m pytest -m coverage_gate -q

The floors themselves (including the 90% obs floor) live in
``scripts/check_coverage.py``; raise them as coverage improves.
"""

from __future__ import annotations

import os
import pathlib
import subprocess
import sys

import pytest

pytestmark = [
    pytest.mark.coverage_gate,
    pytest.mark.skipif(
        not os.environ.get("RUN_COVERAGE_GATE"),
        reason="opt-in: set RUN_COVERAGE_GATE=1",
    ),
]

REPO = pathlib.Path(__file__).resolve().parent.parent
SCRIPT = REPO / "scripts" / "check_coverage.py"


def _run_gate(*args: str) -> subprocess.CompletedProcess:
    return subprocess.run(
        [sys.executable, str(SCRIPT), *args],
        capture_output=True,
        text=True,
        cwd=REPO,
        timeout=3600,
    )


def test_obs_package_meets_90_percent_floor():
    proc = _run_gate("--tests", "tests/obs", "--only", "obs")
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "coverage gate passed" in proc.stdout


def test_full_suite_meets_all_ratcheted_floors():
    proc = _run_gate()
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "coverage gate passed" in proc.stdout
