"""Differential suite over the substitution engines and baselines.

Runs the paper engine (``method="division"``), the simulation-guided
engine (``method="simguided"``), and the three related-work baselines
— espresso-with-don't-cares, BDD-based, and coalgebraic division —
side by side on a fixed population of seeded random networks and pins
the properties all five must share:

* substitution never breaks equivalence (checked with BDDs);
* substitution never increases the factored-literal count (each accept
  requires a strict local gain);
* the per-pair division primitives agree with a truth-table oracle on
  random cover pairs.

The seeds are explicit so a failure reproduces with
``tests.conftest.random_network(seed, ...)`` directly.
"""

from __future__ import annotations

import pytest

from repro.baselines.bdd_div import bdd_substitution
from repro.baselines.coalgebraic import coalgebraic_substitution
from repro.baselines.espresso_div import espresso_substitution
from repro.core.config import BASIC, SIMGUIDED
from repro.core.substitution import substitute_network
from repro.network.factor import network_literals
from repro.network.verify import networks_equivalent

from tests.conftest import random_network

#: 24 deterministic networks (>= 20 per the coverage checklist).
SEEDS = list(range(1000, 1024))


def _division_substitution(network) -> int:
    return substitute_network(network, BASIC).accepted


def _simguided_substitution(network) -> int:
    return substitute_network(network, SIMGUIDED).accepted


BASELINES = {
    "espresso": espresso_substitution,
    "bdd": bdd_substitution,
    "coalgebraic": coalgebraic_substitution,
    "division": _division_substitution,
    "simguided": _simguided_substitution,
}


def _population(seed: int):
    return random_network(seed, n_pis=4, n_nodes=6)


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("name", sorted(BASELINES))
def test_baseline_preserves_equivalence_and_never_regresses(name, seed):
    reference = _population(seed)
    working = _population(seed)
    before = network_literals(working)
    accepted = BASELINES[name](working)
    after = network_literals(working)
    assert accepted >= 0
    assert after <= before, (
        f"{name} grew {seed}: {before} -> {after} literals"
    )
    if accepted == 0:
        # No accepts must mean no structural change in literal terms.
        assert after == before
    assert networks_equivalent(reference, working), (
        f"{name} broke equivalence on seed {seed}"
    )


@pytest.mark.parametrize("seed", SEEDS[:8])
def test_baselines_agree_on_final_equivalence_class(seed):
    """All five engines' outputs are equivalent to each other."""
    outputs = []
    for name in sorted(BASELINES):
        working = _population(seed)
        BASELINES[name](working)
        outputs.append((name, working))
    first_name, first = outputs[0]
    for name, other in outputs[1:]:
        assert networks_equivalent(first, other), (
            f"{first_name} and {name} diverged on seed {seed}"
        )


def test_differential_population_finds_accepts():
    """The seeded population is not degenerate: at least one baseline
    accepts at least one substitution somewhere in it (otherwise the
    equivalence assertions above would be vacuous)."""
    total = 0
    for seed in SEEDS:
        for runner in BASELINES.values():
            total += runner(_population(seed))
    assert total > 0
