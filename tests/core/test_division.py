"""Tests for basic Boolean division via RAR."""

import pytest
from hypothesis import given, settings

from repro.core.config import BASIC, EXTENDED_GDC, DivisionConfig
from repro.core.division import (
    apply_division,
    boolean_divide,
    divide_node_pair,
)
from repro.network.factor import network_literals
from repro.network.network import Network
from repro.network.verify import networks_equivalent
from tests.conftest import assert_equivalent


def paper() -> Network:
    net = Network("paper")
    for pi in "abcd":
        net.add_pi(pi)
    net.parse_node("g", "b + c", ["b", "c"])
    net.parse_node("f", "ab + ac + ad' + a'b'c'd", ["a", "b", "c", "d"])
    net.add_po("f")
    net.add_po("g")
    return net


class TestBasicSop:
    def test_paper_example_positive_phase(self):
        net = paper()
        result = boolean_divide(net, "f", "g", BASIC, phase=True, form="sop")
        assert result is not None
        assert result.gain >= 1
        assert result.wires_removed >= 2
        reference = paper()
        apply_division(net, result)
        assert_equivalent(reference, net)
        # ab + ac collapsed to a·g.
        assert "g" in net.nodes["f"].fanins

    def test_paper_example_complement_phase(self):
        net = paper()
        result = boolean_divide(net, "f", "g", BASIC, phase=False, form="sop")
        assert result is not None
        # a'b'c'd = a'd·g'
        reference = paper()
        apply_division(net, result)
        assert_equivalent(reference, net)

    def test_gain_accounting(self):
        net = paper()
        before = network_literals(net)
        result = boolean_divide(net, "f", "g", BASIC)
        apply_division(net, result)
        assert network_literals(net) == before - result.gain

    def test_no_region_no_division(self):
        net = Network()
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("g", "b + c", ["b", "c"])
        net.parse_node("f", "ad", ["a", "d"])
        net.add_po("f")
        net.add_po("g")
        assert boolean_divide(net, "f", "g", BASIC) is None

    def test_algebraically_invisible_division(self):
        # f = ab + b'c = (b + c)(a + b'): weak division fails, Boolean
        # division succeeds.
        net = Network()
        for pi in "abc":
            net.add_pi(pi)
        net.parse_node("g", "b + c", ["b", "c"])
        net.parse_node("f", "ab + b'c", ["a", "b", "c"])
        net.add_po("f")
        net.add_po("g")
        from repro.network.algebraic import weak_division
        from repro.twolevel.cover import Cover

        divisor = Cover.parse("b + c", ["a", "b", "c"])
        quotient, _ = weak_division(net.nodes["f"].cover, divisor)
        assert quotient.is_zero()

        result = boolean_divide(net, "f", "g", BASIC)
        assert result is not None
        reference = net.copy()
        apply_division(net, result)
        assert_equivalent(reference, net)

    def test_constant_nodes_rejected(self):
        net = Network()
        net.add_pi("a")
        net.parse_node("k", "0", [])
        net.parse_node("f", "a", ["a"])
        net.add_po("f")
        net.add_po("k")
        assert boolean_divide(net, "f", "k", BASIC) is None
        assert boolean_divide(net, "k", "f", BASIC) is None

    def test_pi_dividend_rejected(self):
        net = paper()
        assert boolean_divide(net, "a", "g", BASIC) is None

    def test_invalid_form_rejected(self):
        net = paper()
        with pytest.raises(ValueError):
            boolean_divide(net, "f", "g", BASIC, form="nonsense")

    def test_core_requires_sop_positive(self):
        net = paper()
        with pytest.raises(ValueError):
            boolean_divide(
                net, "f", "g", BASIC, phase=False, core_indices=[0]
            )

    def test_region_size_guard(self):
        config = DivisionConfig(max_region_cubes=2)
        net = paper()
        assert boolean_divide(net, "f", "g", config) is None


class TestPos:
    def test_pos_division(self):
        # f = (a+b)(c+d) as SOP; dividing in POS form by g = a+b gives
        # f = g(c+d).
        net = Network()
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("g", "a + b", ["a", "b"])
        net.parse_node("f", "ac + ad + bc + bd", ["a", "b", "c", "d"])
        net.add_po("f")
        net.add_po("g")
        result = boolean_divide(net, "f", "g", BASIC, phase=True, form="pos")
        assert result is not None
        assert result.gain >= 1
        reference = net.copy()
        apply_division(net, result)
        assert_equivalent(reference, net)
        assert "g" in net.nodes["f"].fanins

    def test_pos_is_invisible_to_sop(self):
        net = Network()
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("g", "a + b", ["a", "b"])
        net.parse_node("f", "ac + ad + bc + bd", ["a", "b", "c", "d"])
        net.add_po("f")
        net.add_po("g")
        sop = boolean_divide(net, "f", "g", BASIC, phase=True, form="sop")
        pos = boolean_divide(net, "f", "g", BASIC, phase=True, form="pos")
        sop_gain = sop.gain if sop else 0
        assert pos is not None and pos.gain >= max(sop_gain, 1)


class TestCoreDivision:
    def test_core_subset_division(self):
        net = Network()
        for pi in "abcdefx":
            net.add_pi(pi)
        net.parse_node("g", "ab + cd + ef", list("abcdef"))
        net.parse_node("t", "abx + cdx", ["a", "b", "c", "d", "x"])
        net.add_po("t")
        net.add_po("g")
        result = boolean_divide(
            net,
            "t",
            "g",
            EXTENDED_GDC,
            core_indices=[0, 1],
            substitute_as="core",
        )
        assert result is not None
        assert result.quotient.num_cubes() == 1
        assert "core" in result.new_fanins


class TestDivideNodePair:
    def test_picks_best_variant(self, paper_network):
        result = divide_node_pair(paper_network, "f", "g", BASIC)
        assert result is not None
        assert result.gain > 0

    def test_none_when_no_gain(self):
        net = Network()
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("g", "a + b", ["a", "b"])
        net.parse_node("f", "cd", ["c", "d"])
        net.add_po("f")
        net.add_po("g")
        assert divide_node_pair(net, "f", "g", BASIC) is None

    def test_variants_respect_config(self, paper_network):
        config = DivisionConfig(try_complement=False, try_pos=False)
        result = divide_node_pair(paper_network, "f", "g", config)
        # Only SOP+ attempted; still finds the ab+ac -> a·g rewrite.
        assert result is not None
        assert result.phase is True and result.form == "sop"


from hypothesis import strategies as st


class TestDivisionProperties:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=30, deadline=None)
    def test_division_always_preserves_function(self, seed):
        from repro.bench.generators import planted_network

        net = planted_network("p", seed=seed, n_pis=6, n_divisors=2, n_targets=2)
        reference = net.copy()
        names = [n.name for n in net.internal_nodes()]
        for f_name in names:
            for d_name in names:
                if f_name == d_name:
                    continue
                if f_name in net.transitive_fanin(d_name):
                    continue
                result = divide_node_pair(net, f_name, d_name, BASIC)
                if result is not None:
                    apply_division(net, result)
        assert networks_equivalent(reference, net)


class TestOracleDc:
    def test_oracle_finds_at_least_what_implications_find(self):
        from repro.core.config import ORACLE

        net = paper()
        gdc_result = boolean_divide(net, "f", "g", EXTENDED_GDC)
        oracle_result = boolean_divide(net, "f", "g", ORACLE)
        assert oracle_result is not None
        assert (
            oracle_result.wires_removed + oracle_result.cubes_removed
            >= gdc_result.wires_removed + gdc_result.cubes_removed
        )

    def test_oracle_rewrites_preserve_function(self):
        from repro.core.config import ORACLE
        from repro.core.substitution import substitute_network
        from repro.bench.generators import planted_network

        for seed in (5, 17):
            net = planted_network(
                "p", seed=seed, n_pis=6, n_divisors=2, n_targets=2
            )
            reference = net.copy()
            substitute_network(net, ORACLE)
            assert networks_equivalent(reference, net)

    def test_oracle_skipped_for_pending_core_nodes(self):
        # substitute_as names a node that does not exist yet; the
        # oracle cannot apply candidates and must stay disabled.
        from repro.core.config import ORACLE

        net = Network()
        for pi in "abcdex":
            net.add_pi(pi)
        net.parse_node("g", "ab + cd + e", list("abcde"))
        net.parse_node("t", "abx + cdx", ["a", "b", "c", "d", "x"])
        net.add_po("t")
        net.add_po("g")
        result = boolean_divide(
            net, "t", "g", ORACLE, core_indices=[0, 1],
            substitute_as="pending",
        )
        # Must not crash; core path simply runs without the oracle.
        assert result is None or "pending" in result.new_fanins


class TestFaninLiteralDivision:
    """Re-dividing a node by one of its existing fanins simplifies it
    in place using implications through the fanin's logic — the
    SDC-style rewrites of the GDC configuration."""

    def _network(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("m", "ab", ["a", "b"])
        net.parse_node("M", "a + b", ["a", "b"])
        net.parse_node("t", "mM + m'M'", ["m", "M"])
        net.add_po("t")
        return net

    def test_positive_literal_division(self):
        net = self._network()
        result = boolean_divide(net, "t", "m", EXTENDED_GDC)
        assert result is not None
        assert result.wires_removed >= 1  # M dropped from the mM cube
        reference = net.copy()
        apply_division(net, result)
        assert networks_equivalent(reference, net)

    def test_full_simplification_through_pass(self):
        from repro.core.substitution import substitute_network

        net = self._network()
        reference = net.copy()
        substitute_network(net, EXTENDED_GDC)
        assert networks_equivalent(reference, net)
        # t = mM + m'M' collapses to m + M' (m implies M).
        assert net.nodes["t"].sop_literals() == 2

    def test_local_mode_cannot_see_it(self):
        # Without whole-circuit implications the correlation between
        # m and M is invisible, so the basic config leaves t alone.
        from repro.core.config import BASIC
        from repro.core.substitution import substitute_network

        net = self._network()
        substitute_network(net, BASIC)
        assert net.nodes["t"].sop_literals() == 4

    def test_expanded_cover_still_used_when_literal_fails(self, paper_network):
        # After ab+ac -> a·g, the complement phase must still divide
        # a'b'c'd by g's expanded complement (b'c'), even though g is
        # now a fanin of f.
        from repro.core.config import BASIC
        from repro.core.substitution import substitute_network

        reference = paper_network.copy()
        stats = substitute_network(paper_network, BASIC)
        assert stats.accepted >= 2
        assert stats.literals_after == 8
        assert networks_equivalent(reference, paper_network)
