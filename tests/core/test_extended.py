"""Tests for extended division: voting, clique selection, decomposition."""

import pytest

from repro.core.config import EXTENDED, EXTENDED_GDC
from repro.core.extended import (
    build_vote_table,
    choose_core_divisor,
    decompose_divisor,
)
from repro.network.network import Network
from repro.network.verify import networks_equivalent


def fat() -> Network:
    net = Network("fat")
    for pi in "abcdefxy":
        net.add_pi(pi)
    net.parse_node("g", "ab + cd + ef", list("abcdef"))
    net.parse_node("f1", "abx + cdx + a'y", ["a", "b", "c", "d", "x", "y"])
    net.parse_node("f2", "aby + cdy", ["a", "b", "c", "d", "y"])
    for po in ("f1", "f2", "g"):
        net.add_po(po)
    return net


class TestVoteTable:
    def test_wires_vote_for_implied_zero_cubes(self):
        table = build_vote_table(fat(), "f1", ["g"], EXTENDED)
        by_wire = {
            (e.cube_index, e.var, e.phase): e.candidates
            for e in table.entries
        }
        # Wire a of cube abx: a=0 implies g-cubes ab and (via learning
        # through cdx=0, x=1) cd to 0.
        shared = table.shared
        a_var = shared.index("a")
        candidates = by_wire[(0, a_var, True)]
        assert candidates["g"] == frozenset({0, 1})

    def test_infeasible_votes_deleted(self):
        # Wire x of cube abx: candidate would have to contain abx, but
        # implied-zero cubes need not; feasibility prunes it.
        table = build_vote_table(fat(), "f1", ["g"], EXTENDED)
        shared = table.shared
        x_var = shared.index("x")
        entry = [
            e for e in table.entries if e.var == x_var and e.cube_index == 0
        ][0]
        assert not entry.candidates

    def test_already_redundant_wires_marked(self):
        net = Network()
        for pi in "ab":
            net.add_pi(pi)
        net.parse_node("g", "a + b", ["a", "b"])
        # f = ab + ab' : wire b is redundant without any divisor.
        net.parse_node("f", "ab + ab'", ["a", "b"])
        net.add_po("f")
        net.add_po("g")
        table = build_vote_table(net, "f", ["g"], EXTENDED)
        assert any(e.already_redundant for e in table.entries)

    def test_pi_dividend_rejected(self):
        with pytest.raises(ValueError):
            build_vote_table(fat(), "a", ["g"], EXTENDED)

    def test_table_rendering(self):
        table = build_vote_table(fat(), "f1", ["g"], EXTENDED)
        text = table.to_str()
        assert "vote table for f1" in text
        assert "wire" in text


class TestCoreChoice:
    def test_chooses_embedded_core(self):
        table = build_vote_table(fat(), "f1", ["g"], EXTENDED)
        choice = choose_core_divisor(table, EXTENDED)
        assert choice is not None
        assert choice.divisor_name == "g"
        assert set(choice.cube_indices) == {0, 1}  # ab, cd
        assert len(choice.supporting_wires) >= 4

    def test_no_votes_no_choice(self):
        net = Network()
        for pi in "abcd":
            net.add_pi(pi)
        net.parse_node("g", "a + b", ["a", "b"])
        net.parse_node("f", "cd", ["c", "d"])
        net.add_po("f")
        net.add_po("g")
        table = build_vote_table(net, "f", ["g"], EXTENDED)
        assert choose_core_divisor(table, EXTENDED) is None

    def test_multiple_divisors_pooled(self):
        net = fat()
        net.parse_node("h", "ab + xy", ["a", "b", "x", "y"])
        net.add_po("h")
        table = build_vote_table(net, "f2", ["g", "h"], EXTENDED)
        choice = choose_core_divisor(table, EXTENDED)
        assert choice is not None
        # The core must come from a single node.
        assert choice.divisor_name in ("g", "h")


class TestDecompose:
    def test_decompose_divisor_structure(self):
        net = fat()
        reference = fat()
        core_name = decompose_divisor(net, "g", [0, 1])
        core = net.nodes[core_name]
        assert core.cover.num_cubes() == 2
        assert net.nodes["g"].fanins[-1] == core_name or (
            core_name in net.nodes["g"].fanins
        )
        assert networks_equivalent(reference, net)

    def test_rejects_trivial_cores(self):
        net = fat()
        with pytest.raises(ValueError):
            decompose_divisor(net, "g", [])
        with pytest.raises(ValueError):
            decompose_divisor(net, "g", [0, 1, 2])

    def test_gdc_table_finds_at_least_as_much(self):
        table_local = build_vote_table(fat(), "f1", ["g"], EXTENDED)
        table_gdc = build_vote_table(fat(), "f1", ["g"], EXTENDED_GDC)
        votes_local = sum(
            len(s) for e in table_local.entries for s in e.candidates.values()
        )
        votes_gdc = sum(
            len(s) for e in table_gdc.entries for s in e.candidates.values()
        )
        assert votes_gdc >= votes_local


def pos_fat() -> Network:
    """Divisor g = (a+b)(c+d)(e+f) carrying the POS core (a+b)(c+d)."""
    from repro.twolevel.cover import Cover

    net = Network("posfat")
    for pi in "abcdefxy":
        net.add_pi(pi)
    g = Cover.parse(
        "ace + acf + ade + adf + bce + bcf + bde + bdf", list("abcdef")
    )
    net.add_node("g", list("abcdef"), g)
    t1 = Cover.parse("acx + adx + bcx + bdx", ["a", "b", "c", "d", "x"])
    net.add_node("t1", ["a", "b", "c", "d", "x"], t1)
    t2 = Cover.parse("acy + ady + bcy + bdy", ["a", "b", "c", "d", "y"])
    net.add_node("t2", ["a", "b", "c", "d", "y"], t2)
    for po in ("t1", "t2", "g"):
        net.add_po(po)
    return net


class TestPosVoting:
    def test_dual_table_votes_for_sum_terms(self):
        table = build_vote_table(pos_fat(), "t1", ["g"], EXTENDED, form="pos")
        assert table.form == "pos"
        voted = [e for e in table.entries if e.candidates]
        assert len(voted) == 4  # a', b', c', d' wires of the dual cubes
        for entry in voted:
            assert entry.candidates["g"] == frozenset({1, 2})

    def test_pos_core_choice(self):
        table = build_vote_table(pos_fat(), "t1", ["g"], EXTENDED, form="pos")
        choice = choose_core_divisor(table, EXTENDED)
        assert choice is not None
        assert choice.divisor_name == "g"
        assert len(choice.cube_indices) == 2
        assert len(choice.supporting_wires) == 4

    def test_invalid_form_rejected(self):
        import pytest

        with pytest.raises(ValueError):
            build_vote_table(pos_fat(), "t1", ["g"], EXTENDED, form="bogus")


class TestPosDecompose:
    def test_structure_and_equivalence(self):
        from repro.core.extended import decompose_divisor_pos

        net = pos_fat()
        table = build_vote_table(net, "t1", ["g"], EXTENDED, form="pos")
        choice = choose_core_divisor(table, EXTENDED)
        core = decompose_divisor_pos(net, "g", choice.cube_indices)
        # core = (a+b)(c+d): 4 cubes, 8 SOP literals.
        assert net.nodes[core].cover.num_cubes() == 4
        assert networks_equivalent(pos_fat(), net)

    def test_rejects_trivial(self):
        import pytest

        from repro.core.extended import decompose_divisor_pos

        net = pos_fat()
        with pytest.raises(ValueError):
            decompose_divisor_pos(net, "g", [])


class TestPosExtendedSubstitution:
    def test_pos_core_extraction_end_to_end(self):
        from repro.core.substitution import substitute_network

        net = pos_fat()
        stats = substitute_network(net, EXTENDED)
        assert stats.cores_extracted >= 1
        assert stats.literals_after < stats.literals_before
        assert networks_equivalent(pos_fat(), net)

    def test_basic_cannot_touch_pos_fat(self):
        from repro.core.config import BASIC
        from repro.core.substitution import substitute_network

        net = pos_fat()
        stats = substitute_network(net, BASIC)
        assert stats.literals_after == stats.literals_before
