"""Tests for SOS/POS containment and Lemmas 1 and 2."""

from hypothesis import given, settings

from repro.twolevel.cover import Cover
from repro.twolevel.complement import complement
from repro.core.sos_pos import (
    is_pos_of,
    is_sos_of,
    pos_split,
    sos_split,
    sum_terms_of,
)
from tests.conftest import cover_st

NAMES = list("abcde")


def parse(text: str) -> Cover:
    return Cover.parse(text, NAMES)


class TestSos:
    def test_paper_example_positive(self):
        # b + c is an SOS of ab + ac: each dividend cube is inside one
        # divisor cube.
        assert is_sos_of(parse("b + c"), parse("ab + ac"))

    def test_extra_divisor_cubes_allowed(self):
        assert is_sos_of(parse("b + c + de"), parse("ab + ac"))

    def test_uncovered_cube_fails(self):
        assert not is_sos_of(parse("b + c"), parse("ab + ac + ad'"))

    def test_full_divisor_cube_contains_all(self):
        assert is_sos_of(Cover.one(5), parse("ab + c'd"))

    def test_empty_dividend_trivially_true(self):
        assert is_sos_of(parse("a"), Cover.zero(5))

    def test_sos_split_partition(self):
        region, remainder = sos_split(
            parse("ab + ac + ad' + a'b'c'd"), parse("b + c")
        )
        assert region == [0, 1]
        assert remainder == [2, 3]

    @given(cover_st(4), cover_st(4))
    @settings(max_examples=80, deadline=None)
    def test_lemma1(self, f, g):
        # Lemma 1: g SOS of f  =>  f·g = f.
        if is_sos_of(g, f):
            product = f.intersect(g)
            assert product.truth_mask() == f.truth_mask()

    @given(cover_st(4), cover_st(4))
    @settings(max_examples=80, deadline=None)
    def test_sos_split_region_is_sos(self, f, g):
        region, _ = sos_split(f, g)
        region_cover = Cover(4, [f.cubes[i] for i in region])
        assert is_sos_of(g, region_cover)


class TestPos:
    def test_subsum_containment(self):
        # Sum term (a) is a subsum of (a + b): g = (a) is a POS of
        # f = (a + b) since (a+b) contains (a).
        f_terms = parse("ab")  # one sum term: a + b, encoded as cube ab
        g_terms = parse("a")
        assert is_pos_of(g_terms, f_terms)

    def test_more_literals_is_not_subsum(self):
        f_terms = parse("a")
        g_terms = parse("ab")
        assert not is_pos_of(g_terms, f_terms)

    def test_pos_split(self):
        # f = (a+b)(c+d); g = (a): first term contains (a).
        f_terms = parse("ab + cd")
        g_terms = parse("a")
        region, remainder = pos_split(f_terms, g_terms)
        assert region == [0]
        assert remainder == [1]

    def test_sum_terms_of_complement(self):
        # f = a + b  =>  f' = a'b'  => sum terms [(a + b)].
        comp = complement(parse("a + b"))
        terms = sum_terms_of(comp)
        assert terms.num_cubes() == 1
        assert terms.cubes[0] == parse("ab").cubes[0]

    @given(cover_st(4), cover_st(4))
    @settings(max_examples=80, deadline=None)
    def test_lemma2(self, fc, gc):
        # Encode POS objects via complements: f = (fc)', g = (gc)'.
        # g POS of f  <=>  every sum term of f contains a sum term of
        # g; then f + g = f.
        f_terms = sum_terms_of(fc)
        g_terms = sum_terms_of(gc)
        if is_pos_of(g_terms, f_terms):
            full = (1 << 16) - 1
            f_mask = full & ~fc.truth_mask()
            g_mask = full & ~gc.truth_mask()
            assert (f_mask | g_mask) == f_mask
