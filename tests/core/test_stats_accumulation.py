"""Accumulation semantics of :class:`SubstitutionStats`.

:func:`~repro.core.substitution.substitute_network` documents that
passing an existing *stats* object **accumulates** into it — every
counter is added, never overwritten — so multi-run flows (e.g.
``script.algebraic`` calling substitution three times) can keep one
ledger.  These tests pin that contract:

* every numeric field is monotone non-decreasing across repeated runs
  into the same stats object (an overwrite would reset a counter and
  break monotonicity whenever the second run is smaller);
* a :class:`~repro.resilience.budget.RunBudget` shared across runs is
  charged by *delta* — its cumulative ``atpg_incomplete`` ledger must
  not be re-added wholesale on every run.
"""

from __future__ import annotations

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BASIC, EXTENDED
from repro.core.substitution import SubstitutionStats, substitute_network
from repro.resilience.budget import RunBudget

from tests.conftest import random_network

#: Every int/float field of SubstitutionStats that must behave as an
#: accumulating counter (gauge-like fields are excluded:
#: ``parallel_jobs`` is a max, ``budget_report`` a replace).
_NUMERIC_FIELDS = [
    f.name
    for f in dataclasses.fields(SubstitutionStats)
    if f.type in ("int", "float") and f.name != "parallel_jobs"
]


def _snapshot(stats: SubstitutionStats) -> dict:
    return {name: getattr(stats, name) for name in _NUMERIC_FIELDS}


def test_numeric_field_inventory_is_nontrivial():
    # Guards the introspection above against a dataclass refactor that
    # would silently empty the property test.
    assert "attempts" in _NUMERIC_FIELDS
    assert "literals_after" in _NUMERIC_FIELDS
    assert "atpg_incomplete" in _NUMERIC_FIELDS
    assert len(_NUMERIC_FIELDS) >= 15


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**31))
def test_counters_monotone_across_runs(seed):
    """Two runs into one stats object never decrease any counter."""
    stats = SubstitutionStats()
    baseline = _snapshot(stats)
    for run in range(2):
        network = random_network(seed + run, n_pis=4, n_nodes=5)
        substitute_network(network, EXTENDED, stats=stats)
        current = _snapshot(stats)
        for name in _NUMERIC_FIELDS:
            assert current[name] >= baseline[name], (
                f"{name} decreased on run {run}: "
                f"{baseline[name]} -> {current[name]}"
            )
        baseline = current


def test_literals_accumulate_not_overwrite():
    """literals_before/after sum across runs (documented contract)."""
    stats = SubstitutionStats()
    net1 = random_network(11, n_pis=4, n_nodes=5)
    substitute_network(net1, BASIC, stats=stats)
    first_before = stats.literals_before
    first_after = stats.literals_after
    assert first_before > 0
    net2 = random_network(12, n_pis=4, n_nodes=5)
    substitute_network(net2, BASIC, stats=stats)
    assert stats.literals_before > first_before
    assert stats.literals_after > first_after


def test_shared_budget_charges_atpg_delta_only():
    """A budget with prior spend must not leak into a fresh run.

    The budget's ``atpg_incomplete`` ledger is cumulative across every
    run that shares it; folding the whole ledger into each run's stats
    double-counts.  Only the delta incurred *during* the run may be
    added.
    """
    budget = RunBudget(deadline_seconds=1000.0)
    budget.atpg_incomplete = 7  # spend from a hypothetical earlier run
    stats = SubstitutionStats()
    network = random_network(3, n_pis=4, n_nodes=5)
    substitute_network(network, BASIC, stats=stats, budget=budget)
    # The run itself triggered no incomplete searches (tiny network,
    # huge deadline), so the prior spend must not appear.
    assert stats.atpg_incomplete == budget.atpg_incomplete - 7


def test_shared_budget_two_runs_accumulate_deltas():
    """Across two runs on one budget the stats see each delta once."""
    budget = RunBudget(deadline_seconds=1000.0)
    stats = SubstitutionStats()
    for seed in (21, 22):
        network = random_network(seed, n_pis=4, n_nodes=5)
        substitute_network(network, BASIC, stats=stats, budget=budget)
    assert stats.atpg_incomplete == budget.atpg_incomplete
