"""Tests for the related-work division baselines."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.bdd_div import bdd_divide, bdd_substitution
from repro.baselines.coalgebraic import (
    coalgebraic_division,
    coalgebraic_substitution,
)
from repro.baselines.espresso_div import (
    espresso_divide,
    espresso_substitution,
)
from repro.network.network import Network
from repro.network.verify import networks_equivalent
from repro.twolevel.cover import Cover
from tests.conftest import cover_st

NAMES = list("abcde")


def parse(text: str) -> Cover:
    return Cover.parse(text, NAMES)


def paper() -> Network:
    net = Network("paper")
    for pi in "abcd":
        net.add_pi(pi)
    net.parse_node("g", "b + c", ["b", "c"])
    net.parse_node("f", "ab + ac + ad' + a'b'c'd", ["a", "b", "c", "d"])
    net.add_po("f")
    net.add_po("g")
    return net


class TestEspressoDivision:
    def test_intro_example_uses_both_phases(self):
        division = espresso_divide(
            parse("ab + ac + ad' + a'b'c'd"), parse("b + c")
        )
        assert not division.quotient.is_zero()
        assert not division.quotient_neg.is_zero()

    def test_result_is_equivalent(self):
        f = parse("ab + ac + ad' + a'b'c'd")
        d = parse("b + c")
        division = espresso_divide(f, d)
        # Substitute y := d and check equivalence via truth tables.
        wide = division.substituted
        n = f.num_vars
        full = (1 << (1 << n)) - 1
        mask = 0
        for m in range(1 << n):
            y = d.evaluate(m)
            assignment = m | (int(y) << n)
            if wide.evaluate(assignment):
                mask |= 1 << m
        assert mask == f.truth_mask()

    @given(cover_st(4), cover_st(4, max_cubes=3))
    @settings(max_examples=40, deadline=None)
    def test_equivalence_property(self, f, d):
        division = espresso_divide(f, d)
        n = f.num_vars
        mask = 0
        for m in range(1 << n):
            y = d.evaluate(m)
            assignment = m | (int(y) << n)
            if division.substituted.evaluate(assignment):
                mask |= 1 << m
        assert mask == f.truth_mask()

    def test_network_substitution(self):
        net = paper()
        assert espresso_substitution(net) >= 1
        assert networks_equivalent(paper(), net)
        assert "g" in net.nodes["f"].fanins


class TestBddDivision:
    def test_identity_f_equals_dq_plus_r(self):
        f = parse("ab + ac + ad' + a'b'c'd")
        d = parse("b + c")
        division = bdd_divide(f, d)
        rebuilt = d.intersect(division.quotient).union(division.remainder)
        assert rebuilt.truth_mask() == f.truth_mask()

    def test_zero_divisor_rejected(self):
        assert bdd_divide(parse("a"), Cover.zero(5)) is None

    @given(cover_st(4), cover_st(4, max_cubes=3))
    @settings(max_examples=40, deadline=None)
    def test_identity_property(self, f, d):
        if d.is_zero():
            return
        division = bdd_divide(f, d)
        rebuilt = d.intersect(division.quotient).union(division.remainder)
        assert rebuilt.truth_mask() == f.truth_mask()

    def test_network_substitution_preserves_function(self):
        net = paper()
        bdd_substitution(net)
        assert networks_equivalent(paper(), net)


class TestCoalgebraicDivision:
    def test_recognizes_idempotent_product(self):
        # ab + b'c = (b + c)(...) : weak division fails, coalgebraic
        # finds a non-empty quotient using x·x' = 0.
        from repro.network.algebraic import weak_division

        f, d = parse("ab + b'c"), parse("b + c")
        weak_q, _ = weak_division(f, d)
        assert weak_q.is_zero()
        q, r = coalgebraic_division(f, d)
        assert not q.is_zero()
        rebuilt = d.intersect(q).union(r)
        assert rebuilt.truth_mask() == f.truth_mask()

    def test_plain_algebraic_case_still_works(self):
        q, r = coalgebraic_division(parse("ab + ac + d"), parse("b + c"))
        assert not q.is_zero()
        rebuilt = parse("b + c").intersect(q).union(r)
        assert rebuilt.truth_mask() == parse("ab + ac + d").truth_mask()

    def test_zero_divisor_rejected(self):
        with pytest.raises(ZeroDivisionError):
            coalgebraic_division(parse("a"), Cover.zero(5))

    @given(cover_st(4), cover_st(4, max_cubes=3))
    @settings(max_examples=60, deadline=None)
    def test_identity_property(self, f, d):
        if d.is_zero():
            return
        q, r = coalgebraic_division(f, d)
        rebuilt = d.intersect(q).union(r)
        assert rebuilt.truth_mask() == f.truth_mask()

    def test_network_substitution(self):
        net = paper()
        coalgebraic_substitution(net)
        assert networks_equivalent(paper(), net)


class TestCrossEngine:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_all_engines_preserve_function(self, seed):
        from repro.bench.generators import planted_network

        for engine in (
            espresso_substitution,
            bdd_substitution,
            coalgebraic_substitution,
        ):
            net = planted_network(
                "p", seed=seed, n_pis=6, n_divisors=2, n_targets=2
            )
            reference = net.copy()
            engine(net)
            assert networks_equivalent(reference, net), engine.__name__
