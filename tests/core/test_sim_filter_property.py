"""Property tests: the signature filter is a *sound* pruner.

Two machine-checked halves of the argument in
:mod:`repro.sim.filter`:

1. **Per-attempt soundness** — every (phase, form) variant the filter
   refutes really does fail the exact division (``boolean_divide``
   returns ``None``), across every dividend/divisor pair of several
   benchmark networks.
2. **End-to-end parity** — a full ``substitute_network`` run with the
   filter enabled produces the *byte-identical* network (and therefore
   identical literal counts) as a run with it disabled, while provably
   skipping work.
"""

import dataclasses

import pytest

from repro.bench.suite import build_benchmark
from repro.core.config import BASIC, EXTENDED, DivisionConfig
from repro.core.division import boolean_divide, enabled_attempts
from repro.core.substitution import substitute_network
from repro.sim.filter import DivisorFilter


@pytest.mark.parametrize("name", ["rnd1", "rnd3", "cmp6", "pos2"])
def test_pruned_variants_fail_exact_division(name):
    network = build_benchmark(name)
    config = BASIC
    filt = DivisorFilter(network, config)
    internal = [n.name for n in network.internal_nodes()]
    checked_pruned = 0
    for f in internal:
        for d in internal:
            if f == d:
                continue
            viable = set(filt.viable_attempts(f, d))
            for phase, form in enabled_attempts(config):
                if (phase, form) in viable:
                    continue
                assert (
                    boolean_divide(
                        network, f, d, config, phase=phase, form=form
                    )
                    is None
                ), f"filter wrongly pruned {f}/{d} phase={phase} form={form}"
                checked_pruned += 1
    assert checked_pruned > 0, "fixture exercised no pruning"


@pytest.mark.parametrize("name", ["rnd1", "rnd3", "cmp6"])
def test_pruned_sop_variants_have_empty_region(name):
    """Mirror of the soundness claim at the sos_split level: a pruned
    SOP variant has an empty Lemma-1 region for every divisor cube."""
    from repro.core.sos_pos import sos_split
    from repro.twolevel.complement import complement

    network = build_benchmark(name)
    config = BASIC
    filt = DivisorFilter(network, config)
    internal = [n.name for n in network.internal_nodes()]
    checked = 0
    for f in internal:
        for d in internal:
            if f == d:
                continue
            viable = set(filt.viable_attempts(f, d))
            if (True, "sop") in viable:
                continue
            result = boolean_divide(
                network, f, d, config, phase=True, form="sop"
            )
            assert result is None
            checked += 1
            if checked >= 25:
                return
    if checked == 0:
        pytest.skip("fixture exercised no (True, 'sop') pruning")


@pytest.mark.parametrize(
    "name,config",
    [
        ("rnd1", BASIC),
        ("rnd3", BASIC),
        ("pos2", BASIC),
        ("rnd1", EXTENDED),
        ("rnd3", EXTENDED),
    ],
)
def test_filtered_run_is_byte_identical(name, config):
    net_off = build_benchmark(name)
    net_on = build_benchmark(name)
    stats_off = substitute_network(
        net_off, dataclasses.replace(config, enable_sim_filter=False)
    )
    stats_on = substitute_network(
        net_on, dataclasses.replace(config, enable_sim_filter=True)
    )
    assert stats_off.literals_after == stats_on.literals_after
    assert net_off.to_str() == net_on.to_str()
    # The parity is interesting only if the filter actually skipped work.
    assert stats_on.divisors_pruned + stats_on.variants_pruned > 0
    assert stats_on.divide_calls < stats_off.divide_calls


def test_filter_stats_populated():
    network = build_benchmark("rnd3")
    stats = substitute_network(network, BASIC)
    assert stats.sim_cache_hits > 0
    assert stats.sim_cache_misses > 0
    if stats.accepted:
        assert stats.resim_nodes > 0


def test_small_pattern_count_still_sound():
    config = dataclasses.replace(BASIC, sim_patterns=8)
    net_off = build_benchmark("rnd1")
    net_on = build_benchmark("rnd1")
    substitute_network(
        net_off, dataclasses.replace(config, enable_sim_filter=False)
    )
    substitute_network(net_on, config)
    assert net_off.to_str() == net_on.to_str()


def test_config_validation():
    with pytest.raises(ValueError):
        DivisionConfig(sim_patterns=0)
    with pytest.raises(ValueError):
        DivisionConfig(sim_cache_size=0)
    with pytest.raises(ValueError):
        DivisionConfig(containment_cache_size=0)
