"""Tests for the network-level substitution passes."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import BASIC, EXTENDED, EXTENDED_GDC, DivisionConfig
from repro.core.substitution import (
    SubstitutionStats,
    _candidate_divisors,
    substitute_network,
    substitute_pass,
)
from repro.network.factor import network_literals
from repro.network.network import Network
from repro.network.verify import networks_equivalent
from tests.conftest import assert_equivalent


class TestCandidates:
    def test_excludes_fanout_cone_and_self(self, paper_network):
        paper_network.parse_node("h", "f", ["f"])
        paper_network.add_po("h")
        candidates = _candidate_divisors(paper_network, "f", BASIC)
        assert "f" not in candidates
        assert "h" not in candidates  # depends on f

    def test_requires_support_overlap(self, paper_network):
        paper_network.add_pi("z1")
        paper_network.add_pi("z2")
        paper_network.parse_node("far", "z1 z2", ["z1", "z2"])
        paper_network.add_po("far")
        assert "far" not in _candidate_divisors(paper_network, "f", BASIC)

    def test_ranked_by_overlap(self, paper_network):
        candidates = _candidate_divisors(paper_network, "f", BASIC)
        assert candidates[0] == "g"

    def test_limit_respected(self, paper_network):
        config = DivisionConfig(max_divisors=0)
        assert _candidate_divisors(paper_network, "f", config) == []


class TestBasicPass:
    def test_paper_example_improves(self, paper_network):
        reference = paper_network.copy()
        stats = substitute_network(paper_network, BASIC)
        assert stats.accepted >= 2
        assert stats.literals_after < stats.literals_before
        assert_equivalent(reference, paper_network)

    def test_stats_accounting(self, paper_network):
        stats = substitute_network(paper_network, BASIC)
        assert stats.literals_after == network_literals(paper_network)
        assert stats.cpu_seconds >= 0
        assert 0 < stats.improvement() <= 100

    def test_fixpoint(self, paper_network):
        substitute_network(paper_network, BASIC)
        again = substitute_network(paper_network, BASIC)
        assert again.accepted == 0

    def test_pass_returns_delta(self, paper_network):
        stats = SubstitutionStats()
        first = substitute_pass(paper_network, BASIC, stats)
        assert first == stats.accepted

    def test_verification_hook(self, paper_network):
        config = DivisionConfig(verify_with_simulation=True)
        reference = paper_network.copy()
        stats = substitute_network(paper_network, config)
        assert stats.accepted >= 1
        assert_equivalent(reference, paper_network)


class TestExtendedPass:
    def test_extended_extracts_core(self, fat_divisor_network):
        reference = fat_divisor_network.copy()
        stats = substitute_network(fat_divisor_network, EXTENDED)
        assert stats.cores_extracted >= 1
        assert stats.literals_after < stats.literals_before
        assert_equivalent(reference, fat_divisor_network)

    def test_basic_cannot_touch_fat_divisor(self, fat_divisor_network):
        stats = substitute_network(fat_divisor_network, BASIC)
        assert stats.cores_extracted == 0
        assert stats.literals_after == stats.literals_before

    def test_quality_ladder(self, fat_divisor_network):
        results = {}
        for name, config in (
            ("basic", BASIC),
            ("ext", EXTENDED),
            ("ext_gdc", EXTENDED_GDC),
        ):
            net = fat_divisor_network.copy()
            stats = substitute_network(net, config)
            results[name] = stats.literals_after
        assert results["ext"] <= results["basic"]
        assert results["ext_gdc"] <= results["basic"]


class TestGdc:
    def test_gdc_exploits_satisfiability_dont_cares(self):
        # m = ab implies M = a + b; with both as fanins of t, the
        # combination m=1, M=0 is unreachable.  Dividing t by some
        # divisor can exploit this only when implications run through
        # the whole circuit.
        net = Network()
        for pi in "abc":
            net.add_pi(pi)
        net.parse_node("m", "ab", ["a", "b"])
        net.parse_node("M", "a + b", ["a", "b"])
        net.parse_node("d", "M + c", ["M", "c"])
        net.parse_node("t", "mM + mc", ["m", "M", "c"])
        for po in ("t", "d", "m", "M"):
            net.add_po(po)
        reference = net.copy()
        local = net.copy()
        substitute_network(local, EXTENDED)
        gdc = net.copy()
        stats = substitute_network(gdc, EXTENDED_GDC)
        assert networks_equivalent(reference, gdc)
        assert network_literals(gdc) <= network_literals(local)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=10, deadline=None)
    def test_gdc_preserves_function(self, seed):
        from repro.bench.generators import planted_network

        net = planted_network(
            "p", seed=seed, n_pis=6, n_divisors=2, n_targets=2
        )
        reference = net.copy()
        substitute_network(net, EXTENDED_GDC)
        assert networks_equivalent(reference, net)


class TestRandomized:
    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=15, deadline=None)
    def test_substitution_preserves_function(self, seed):
        from repro.bench.generators import planted_network

        net = planted_network(
            "p", seed=seed, n_pis=7, n_divisors=3, n_targets=3
        )
        reference = net.copy()
        stats = substitute_network(net, BASIC)
        assert networks_equivalent(reference, net)
        assert stats.literals_after <= stats.literals_before


class TestDeepNetworkStress:
    """Multi-level random networks stress the TFO-exclusion logic that
    keeps global-don't-care implications sound (implications must never
    flow through the fault's own output cone)."""

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_gdc_on_deep_networks(self, seed):
        from tests.conftest import random_network

        net = random_network(seed, n_pis=5, n_nodes=8)
        reference = net.copy()
        substitute_network(net, EXTENDED_GDC)
        assert networks_equivalent(reference, net)

    @given(seed=st.integers(0, 10**6))
    @settings(max_examples=25, deadline=None)
    def test_all_configs_on_deep_networks(self, seed):
        from tests.conftest import random_network

        for config in (BASIC, EXTENDED):
            net = random_network(seed, n_pis=4, n_nodes=7)
            reference = net.copy()
            substitute_network(net, config)
            assert networks_equivalent(reference, net), config.mode


class TestStatsAccumulation:
    """Regression: reusing one :class:`SubstitutionStats` ledger across
    runs must *add* every counter.  The sim-filter cache/resim counters
    used to be overwritten by the last run, silently dropping earlier
    passes from multi-run aggregations."""

    @staticmethod
    def _fresh():
        from repro.bench.generators import planted_network

        return planted_network(
            "acc", seed=31, n_pis=8, n_divisors=3, n_targets=4
        )

    def test_second_run_adds_instead_of_overwriting(self):
        solo = substitute_network(self._fresh(), BASIC)
        assert solo.resim_nodes > 0  # the counters under test are live

        ledger = SubstitutionStats()
        substitute_network(self._fresh(), BASIC, stats=ledger)
        substitute_network(self._fresh(), BASIC, stats=ledger)
        for field in (
            "attempts",
            "accepted",
            "divide_calls",
            "sim_cache_hits",
            "sim_cache_misses",
            "resim_nodes",
            "literals_before",
            "literals_after",
        ):
            assert getattr(ledger, field) == 2 * getattr(solo, field), field
        assert ledger.cpu_seconds > solo.cpu_seconds

    def test_returned_object_is_the_ledger(self):
        ledger = SubstitutionStats()
        out = substitute_network(self._fresh(), BASIC, stats=ledger)
        assert out is ledger
