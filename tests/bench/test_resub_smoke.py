"""Smoke benchmark for the simguided engine (``-m bench_smoke``).

Runs in the tier-1 suite too (it is fast); the marker lets CI pick
just the performance smokes.  Checks the ISSUE acceptance criteria in
miniature: both engines' outputs exactly equivalent to the input, the
simguided engine making zero ``boolean_divide`` calls, and the JSON
report landing on disk with the cross-engine verdict.
"""

import json

import pytest

from repro.bench.resubbench import (
    DEFAULT_CIRCUITS,
    DEFAULT_RESULT_PATH,
    compare_engines,
    run_resub_benchmark,
)
from repro.bench.suite import build_benchmark


@pytest.mark.bench_smoke
def test_engines_agree_on_rnd3():
    row = compare_engines(build_benchmark("rnd3"))
    assert row["division_equivalent"]
    assert row["simguided_equivalent"]
    # Simguided never calls boolean_divide: everything it saves shows
    # up here, everything it spends in the resub.* counters.
    assert row["simguided"]["divide_calls"] == 0
    assert row["divide_calls_saved"] == row["division"]["divide_calls"]
    assert row["simguided"]["resub_accepted"] > 0
    assert (
        row["simguided"]["literals_after"]
        <= row["simguided"]["literals_before"]
    )


@pytest.mark.bench_smoke
def test_benchmark_report_written(tmp_path):
    out = tmp_path / "BENCH_resub.json"
    history = tmp_path / "history.jsonl"
    report = run_resub_benchmark(
        ["rnd1", "rnd3"], output_path=out, history_path=history
    )
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["all_equivalent"] is True
    assert on_disk["circuits"][0]["circuit"] == "rnd1"
    assert report["all_equivalent"] is True
    # One history record per circuit, tagged with the bench name.
    records = [
        json.loads(line) for line in history.read_text().splitlines()
    ]
    assert [r["circuit"] for r in records] == ["rnd1", "rnd3"]
    assert all(r["bench"] == "resubbench" for r in records)
    assert all(
        r["metrics"]["counters"]["resub.targets"] > 0 for r in records
    )


@pytest.mark.bench_smoke
def test_default_result_path_and_circuits():
    assert DEFAULT_RESULT_PATH.name == "BENCH_resub.json"
    assert DEFAULT_RESULT_PATH.parent.name == "results"
    assert DEFAULT_RESULT_PATH.parent.parent.name == "benchmarks"
    assert "rnd8" in DEFAULT_CIRCUITS
