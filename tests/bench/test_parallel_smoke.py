"""Smoke benchmark for the speculative parallel engine (``bench_smoke``).

Runs in the tier-1 suite too (it is fast), but the marker lets CI pick
just the performance smokes: ``pytest -m bench_smoke``.  Checks output
parity on a mid-size circuit and that a JSON report lands on disk.

The ``>= 1.5x at 4 jobs`` acceptance criterion only makes sense with
cores to spare, so the speedup assertion is gated on
``os.cpu_count()`` — on a single-core machine the process pool can
only add overhead and the bench verifies correctness plus counter
reporting instead.
"""

import json
import os

import pytest

from repro.bench.parallelbench import (
    DEFAULT_RESULT_PATH,
    compare_on,
    run_parallel_benchmark,
)
from repro.bench.suite import build_benchmark
from repro.core.config import BASIC


@pytest.mark.bench_smoke
def test_parallel_parity_on_rnd8():
    comparison = compare_on(build_benchmark("rnd8"), BASIC, job_counts=(4,))
    assert comparison["output_identical"]
    row = comparison["parallel"]["jobs4"]
    assert row["accepted"] == comparison["serial"]["accepted"]
    assert row["pairs_evaluated"] > 0
    assert row["jobs"] == 4
    if (os.cpu_count() or 1) >= 4:
        assert row["speedup"] >= 1.5


@pytest.mark.bench_smoke
def test_benchmark_report_written(tmp_path):
    out = tmp_path / "BENCH_parallel.json"
    report = run_parallel_benchmark(["rnd1", "rnd3"], BASIC, (2,), out)
    assert out.exists()
    on_disk = json.loads(out.read_text())
    assert on_disk["all_output_identical"] is True
    assert on_disk["circuits"][0]["circuit"] == "rnd1"
    assert on_disk["machine"]["cpu_count"] >= 1
    assert report["job_counts"] == [2]


@pytest.mark.bench_smoke
def test_default_result_path_is_in_benchmarks_results():
    assert DEFAULT_RESULT_PATH.name == "BENCH_parallel.json"
    assert DEFAULT_RESULT_PATH.parent.name == "results"
    assert DEFAULT_RESULT_PATH.parent.parent.name == "benchmarks"
